//! Cross-crate integration tests through the facade API.

use redundant_share::erasure::{ErasureCode, ReedSolomon};
use redundant_share::placement::{BinSet, LinMirror, PlacementStrategy, RedundantShare};
use redundant_share::storage::{Redundancy, StorageCluster, VirtualDisk};
use redundant_share::workload::scenario::paper_scenario;
use redundant_share::workload::{measure_fairness, measure_movement};

#[test]
fn placement_feeds_storage_feeds_erasure() {
    // A cluster using RS(3, 2) must put shard i of block b exactly where
    // an equivalent standalone strategy puts copy i of ball b.
    let mut cluster = StorageCluster::builder()
        .block_size(24)
        .redundancy(Redundancy::ReedSolomon { data: 3, parity: 2 })
        .device(0, 10_000)
        .device(1, 12_000)
        .device(2, 14_000)
        .device(3, 16_000)
        .device(4, 18_000)
        .device(5, 20_000)
        .build()
        .unwrap();
    let bins = BinSet::new(
        (0..6u64).map(|i| redundant_share::placement::Bin::new(i, 10_000 + i * 2_000).unwrap()),
    )
    .unwrap();
    let reference = RedundantShare::new(&bins, 5).unwrap();
    for lba in 0..500u64 {
        cluster.write_block(lba, &[lba as u8; 24]).unwrap();
        let expect: Vec<u64> = reference.place(lba).iter().map(|b| b.raw()).collect();
        assert_eq!(cluster.placement(lba), expect, "lba {lba}");
    }
    // The erasure code used internally matches a standalone RS(3, 2).
    let rs = ReedSolomon::new(3, 2).unwrap();
    assert_eq!(rs.total_shards(), 5);
}

#[test]
fn paper_scenario_runs_on_the_full_stack() {
    // Walk the 8 → 10 → 12 → 10 → 8 scenario on a (scaled-down) cluster
    // and verify fairness and data integrity at every stage.
    let scale = 100; // scenario capacities / 100 to keep the test fast
    let stages = paper_scenario();
    let initial = &stages[0].bins;
    let mut builder = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 });
    for bin in initial.bins() {
        builder = builder.device(bin.id().raw(), bin.capacity() / scale);
    }
    let mut cluster = builder.build().unwrap();
    let blocks = 30_000u64;
    for lba in 0..blocks {
        cluster.write_block(lba, &[lba as u8; 16]).unwrap();
    }
    // Stage transitions: compute device-level diffs from the scenario.
    for window in stages.windows(2) {
        let (from, to) = (&window[0].bins, &window[1].bins);
        for bin in to.bins() {
            if from.get(bin.id()).is_none() {
                cluster
                    .add_device(bin.id().raw(), bin.capacity() / scale)
                    .unwrap();
            }
        }
        for bin in from.bins() {
            if to.get(bin.id()).is_none() {
                cluster.remove_device(bin.id().raw()).unwrap();
            }
        }
        // Fairness at this stage: utilisation spread stays tight.
        let util = cluster.utilization();
        let fractions: Vec<f64> = util
            .iter()
            .map(|(_, used, cap)| *used as f64 / *cap as f64)
            .collect();
        let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
        for f in &fractions {
            assert!(
                (f - avg).abs() / avg < 0.10,
                "stage utilisation spread too wide: {fractions:?}"
            );
        }
    }
    // All data still present after 4 reconfigurations.
    assert_eq!(cluster.scrub().unwrap(), 0);
    for lba in (0..blocks).step_by(101) {
        assert_eq!(cluster.read_block(lba).unwrap(), vec![lba as u8; 16]);
    }
}

#[test]
fn linmirror_and_kreplication_agree_on_k2_shares() {
    let bins = BinSet::from_capacities([900_000, 800_000, 700_000, 600_000, 500_000]).unwrap();
    let mirror = LinMirror::new(&bins).unwrap();
    let general = RedundantShare::new(&bins, 2).unwrap();
    let a = measure_fairness(&mirror, 60_000);
    let b = measure_fairness(&general, 60_000);
    for (x, y) in a.shares.iter().zip(&b.shares) {
        assert!((x - y).abs() < 0.02, "LinMirror {x} vs k-replication {y}");
    }
}

#[test]
fn virtual_disk_survives_scenario_changes() {
    let cluster = StorageCluster::builder()
        .block_size(32)
        .redundancy(Redundancy::Mirror { copies: 3 })
        .device(0, 20_000)
        .device(1, 20_000)
        .device(2, 20_000)
        .device(3, 20_000)
        .build()
        .unwrap();
    let mut disk = VirtualDisk::new(cluster);
    let message = b"the quick brown fox jumps over the lazy dog".repeat(20);
    disk.write_at(1_234, &message).unwrap();
    disk.cluster_mut().add_device(4, 20_000).unwrap();
    disk.cluster_mut().fail_device(0).unwrap();
    disk.cluster_mut().fail_device(1).unwrap(); // 3-way mirror survives 2
    assert_eq!(disk.read_at(1_234, message.len()).unwrap(), message);
    disk.cluster_mut().rebuild().unwrap();
    assert_eq!(disk.read_at(1_234, message.len()).unwrap(), message);
    assert_eq!(disk.cluster_mut().scrub().unwrap(), 0);
}

#[test]
fn movement_measured_through_facade() {
    let before = BinSet::from_capacities([100, 100, 100, 100, 100, 100]).unwrap();
    let after = before
        .with_bin(redundant_share::placement::Bin::new(77u64, 100).unwrap())
        .unwrap();
    let a = RedundantShare::new(&before, 2).unwrap();
    let b = RedundantShare::new(&after, 2).unwrap();
    let report = measure_movement(&a, &b, redundant_share::placement::BinId(77), 20_000);
    assert!(report.replaced > 0);
    assert!(report.factor() < 4.5, "factor {}", report.factor());
}
