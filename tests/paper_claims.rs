//! The paper's quantitative claims, as executable assertions.
//!
//! Each test pins one number or shape from the ICDCS 2007 text so a
//! regression in any layer surfaces as a failed claim, not just a failed
//! unit. Tolerances are statistical (hash-based placement is exact only in
//! expectation).

use redundant_share::placement::{
    capacity, BinSet, FastRedundantShare, LinMirror, PlacementStrategy, RedundantShare,
    SystematicPps, TrivialReplication,
};
use redundant_share::workload::scenario::{
    adaptivity_pair, heterogeneous_bins, homogeneous_bins, paper_scenario, ChangeKind,
};
use redundant_share::workload::{measure_fairness, measure_movement};

/// Section 2.2 / Figure 1: on bins (2, 1, 1) with k = 2 the trivial
/// strategy misses the big bin with probability 1/6 and wastes 1/12 of the
/// system capacity; Redundant Share wastes none.
#[test]
fn claim_figure1_trivial_waste() {
    let bins = BinSet::from_capacities([2_000, 1_000, 1_000]).unwrap();
    let balls = 150_000u64;

    let trivial = TrivialReplication::new(&bins, 2).unwrap();
    let big = trivial.bin_ids()[0];
    let misses = (0..balls)
        .filter(|&b| !trivial.place(b).contains(&big))
        .count();
    let miss_rate = misses as f64 / balls as f64;
    assert!(
        (miss_rate - 1.0 / 6.0).abs() < 0.01,
        "paper: 1/6 ≈ 0.1667; measured {miss_rate:.4}"
    );

    let mirror = LinMirror::new(&bins).unwrap();
    let misses = (0..balls)
        .filter(|&b| {
            let (p, s) = mirror.place_pair(b);
            p != big && s != big
        })
        .count();
    assert_eq!(
        misses, 0,
        "Redundant Share must hit the dominant bin always"
    );
}

/// Section 2.1, Lemma 2.1: k·b_0 ≤ B characterises capacity efficiency,
/// and the constructive greedy packing achieves the Lemma 2.2 maximum.
#[test]
fn claim_lemma_21_22_capacity() {
    // Feasible: every bin usable in full.
    assert!(capacity::is_capacity_efficient(&[2, 1, 1], 2));
    assert_eq!(capacity::max_balls(&[2, 1, 1], 2), 2);
    // Infeasible: the dominant bin is capped.
    assert!(!capacity::is_capacity_efficient(&[10, 2, 1], 2));
    assert_eq!(capacity::max_balls(&[10, 2, 1], 2), 3);
    // The greedy construction of the Lemma 2.1 proof achieves the bound.
    for (caps, k) in [
        (vec![10u64, 2, 1], 2usize),
        (vec![100, 100, 10, 1], 3),
        (vec![7, 6, 5, 4, 3, 2, 1], 4),
    ] {
        let m = capacity::max_balls(&caps, k);
        assert!(
            capacity::greedy_pack(&caps, k, m).is_some(),
            "{caps:?} k={k}"
        );
        assert!(
            capacity::greedy_pack(&caps, k, m + 1).is_none(),
            "{caps:?} k={k}"
        );
    }
}

/// Figure 2: LinMirror distributes heterogeneous bins fairly at every
/// stage of the 8 → 10 → 12 → 10 → 8 scenario.
#[test]
fn claim_figure2_linmirror_fairness_across_stages() {
    for stage in paper_scenario() {
        let mirror = LinMirror::new(&stage.bins).unwrap();
        let report = measure_fairness(&mirror, 60_000);
        assert!(
            report.max_relative_deviation() < 0.04,
            "stage '{}': deviation {:.4}",
            stage.label,
            report.max_relative_deviation()
        );
    }
}

/// Figure 4: the same fairness holds for k = 4 replication.
#[test]
fn claim_figure4_k4_fairness_across_stages() {
    for stage in paper_scenario() {
        let strat = RedundantShare::new(&stage.bins, 4).unwrap();
        let report = measure_fairness(&strat, 60_000);
        assert!(
            report.max_relative_deviation() < 0.04,
            "stage '{}': deviation {:.4}",
            stage.label,
            report.max_relative_deviation()
        );
    }
}

/// Figure 3: LinMirror's measured competitive factors — ≈1.5 when the
/// biggest bin changes, ≈2.5 when the smallest bin changes, both far below
/// the Lemma 3.2 bound of 4.
#[test]
fn claim_figure3_linmirror_adaptivity_factors() {
    let het = heterogeneous_bins(8);
    let factors: Vec<(ChangeKind, f64)> = ChangeKind::ALL
        .iter()
        .map(|&kind| {
            let (before, after, affected) = adaptivity_pair(&het, kind);
            let a = LinMirror::new(&before).unwrap();
            let b = LinMirror::new(&after).unwrap();
            (kind, measure_movement(&a, &b, affected, 40_000).factor())
        })
        .collect();
    for (kind, f) in &factors {
        assert!(
            *f < 4.5,
            "{}: factor {f} breaches Lemma 3.2 band",
            kind.label()
        );
        assert!(
            *f >= 1.0,
            "{}: factor {f} below trivial lower bound",
            kind.label()
        );
    }
    // Shape: changing the smallest bin costs more than changing the biggest.
    let get = |kind: ChangeKind| factors.iter().find(|(k, _)| *k == kind).unwrap().1;
    assert!(
        get(ChangeKind::AddSmallest) > get(ChangeKind::AddBiggest),
        "add smallest ({}) should beat add biggest ({})",
        get(ChangeKind::AddSmallest),
        get(ChangeKind::AddBiggest)
    );
    assert!(
        get(ChangeKind::RemoveSmallest) > get(ChangeKind::RemoveBiggest),
        "remove smallest ({}) should beat remove biggest ({})",
        get(ChangeKind::RemoveSmallest),
        get(ChangeKind::RemoveBiggest)
    );
}

/// Figure 5: for k = 4 on homogeneous bins, adding the biggest bin has a
/// near-constant factor while adding the smallest grows with n — but stays
/// well below the k² = 16 bound of Lemma 3.5.
#[test]
fn claim_figure5_k4_adaptivity_shape() {
    let ns = [8usize, 16, 32];
    let mut biggest = Vec::new();
    let mut smallest = Vec::new();
    for &n in &ns {
        let base = homogeneous_bins(n);
        for (kind, out) in [
            (ChangeKind::AddBiggest, &mut biggest),
            (ChangeKind::AddSmallest, &mut smallest),
        ] {
            let (before, after, affected) = adaptivity_pair(&base, kind);
            let a = RedundantShare::new(&before, 4).unwrap();
            let b = RedundantShare::new(&after, 4).unwrap();
            out.push(measure_movement(&a, &b, affected, 25_000).factor());
        }
    }
    for f in biggest.iter().chain(&smallest) {
        assert!(*f < 16.0, "factor {f} breaches k² bound");
    }
    // Add-as-biggest stays flat; add-as-smallest grows with n.
    let spread = biggest.iter().cloned().fold(f64::MIN, f64::max)
        - biggest.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.5, "add-biggest factors not flat: {biggest:?}");
    assert!(
        smallest.last().unwrap() > smallest.first().unwrap(),
        "add-smallest should grow with n: {smallest:?}"
    );
}

/// Section 3: all Redundant Share variants keep redundancy (k distinct
/// bins) and identify the i-th copy deterministically.
#[test]
fn claim_redundancy_and_copy_identity_all_variants() {
    let bins = BinSet::from_capacities([700, 600, 500, 400, 300, 200]).unwrap();
    let k = 3;
    let strategies: Vec<Box<dyn PlacementStrategy>> = vec![
        Box::new(RedundantShare::new(&bins, k).unwrap()),
        Box::new(FastRedundantShare::new(&bins, k).unwrap()),
        Box::new(SystematicPps::new(&bins, k).unwrap()),
        Box::new(TrivialReplication::new(&bins, k).unwrap()),
    ];
    for strat in &strategies {
        for ball in 0..5_000u64 {
            let placed = strat.place(ball);
            let mut uniq = placed.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), k);
            assert_eq!(placed, strat.place(ball), "copy identity must be stable");
        }
    }
}

/// Section 1.1 / Lemma 3.2: the *true* competitive ratio — measured
/// against an optimal (explicit-table) rebalancer on the identical change —
/// stays inside the proven bound of 4 for k = 2.
#[test]
fn claim_true_competitiveness_within_lemma_bound() {
    use redundant_share::placement::{Bin, TableBased};
    let bins = BinSet::from_capacities((0..8u64).map(|i| 400_000 + i * 50_000)).unwrap();
    let m = 40_000u64;
    for (id, cap) in [(100u64, 800_000u64), (1_000, 300_000)] {
        let grown = bins.with_bin(Bin::new(id, cap).unwrap()).unwrap();
        let mut table = TableBased::new(&bins, 2, m).unwrap();
        let optimal = table.rebalance(&grown).unwrap().moved.max(1);
        let before = RedundantShare::new(&bins, 2).unwrap();
        let after = RedundantShare::new(&grown, 2).unwrap();
        let mut moved = 0u64;
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for ball in 0..m {
            before.place_into(ball, &mut va);
            after.place_into(ball, &mut vb);
            moved += va.iter().zip(&vb).filter(|(a, b)| a != b).count() as u64;
        }
        let ratio = moved as f64 / optimal as f64;
        assert!(
            ratio < 4.0,
            "true competitive ratio {ratio:.3} breaches Lemma 3.2 (cap {cap})"
        );
        assert!(ratio >= 1.0, "cannot beat the optimum: {ratio:.3}");
    }
}

/// Section 3 (copy identity): the analytic per-copy distributions sum to
/// the fair share and match sampled placements.
#[test]
fn claim_copy_identity_distributions_are_exact() {
    let bins = BinSet::from_capacities([900, 700, 500, 300, 100]).unwrap();
    let k = 3;
    let strat = RedundantShare::new(&bins, k).unwrap();
    let mut acc = vec![0.0; bins.len()];
    for t in 0..k {
        let dist = strat.copy_distribution(t);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "copy {t} total {total}");
        for (a, d) in acc.iter_mut().zip(&dist) {
            *a += d;
        }
    }
    for (a, fair) in acc.iter().zip(strat.fair_shares()) {
        assert!((a - fair).abs() < 1e-6, "{a} vs fair {fair}");
    }
}

/// Section 3.3: the O(k) variant samples the same distribution as the
/// O(n) scan.
#[test]
fn claim_fast_variant_distribution_matches_scan() {
    let bins = BinSet::from_capacities([900, 700, 650, 500, 300, 250, 100]).unwrap();
    let k = 3;
    let scan = RedundantShare::new(&bins, k).unwrap();
    let fast = FastRedundantShare::new(&bins, k).unwrap();
    let a = measure_fairness(&scan, 120_000);
    let b = measure_fairness(&fast, 120_000);
    for (i, (x, y)) in a.shares.iter().zip(&b.shares).enumerate() {
        assert!((x - y).abs() < 0.02, "bin {i}: scan {x:.4} vs fast {y:.4}");
    }
}
