//! Large-scale stress tests — run explicitly with
//! `cargo test --release --test stress -- --ignored`.
//!
//! These push the strategies and the storage layer well past the paper's
//! experiment sizes (hundreds of bins, millions of placements) to catch
//! scaling cliffs and accumulation bugs the fast suite cannot see.

use redundant_share::placement::{BinSet, FastRedundantShare, PlacementStrategy, RedundantShare};
use redundant_share::storage::{Redundancy, StorageCluster};
use redundant_share::workload::measure_fairness;

fn big_bins(n: u64) -> BinSet {
    BinSet::from_capacities((0..n).map(|i| 1_000_000 + (i % 97) * 50_000)).unwrap()
}

#[test]
#[ignore = "stress: ~1M placements over 512 bins"]
fn fairness_at_512_bins() {
    let bins = big_bins(512);
    for k in [2usize, 4] {
        let strat = RedundantShare::new(&bins, k).unwrap();
        assert!(strat.calibration_residual() < 1e-6);
        let report = measure_fairness(&strat, 1_000_000);
        assert!(
            report.max_relative_deviation() < 0.08,
            "k={k}: deviation {}",
            report.max_relative_deviation()
        );
        assert!(report.gini() < 0.02, "k={k}: gini {}", report.gini());
    }
}

#[test]
#[ignore = "stress: O(k) variant at 1024 bins"]
fn fast_variant_at_1024_bins() {
    let bins = big_bins(1024);
    let strat = FastRedundantShare::new(&bins, 3).unwrap();
    // Construction is O(k·n²); queries must stay O(k).
    let mut out = Vec::new();
    for ball in 0..2_000_000u64 {
        strat.place_into(ball, &mut out);
        debug_assert_eq!(out.len(), 3);
    }
    // Per-bin expectation at 1M balls is ~2,900 copies; the max relative
    // deviation over 1,024 bins then concentrates below ~8 %.
    let report = measure_fairness(&strat, 1_000_000);
    assert!(
        report.max_relative_deviation() < 0.12,
        "deviation {}",
        report.max_relative_deviation()
    );
}

#[test]
#[ignore = "stress: repeated growth of a loaded cluster"]
fn cluster_grows_sixteen_times() {
    let mut cluster = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .device(0, 2_000_000)
        .device(1, 2_000_000)
        .device(2, 2_000_000)
        .build()
        .unwrap();
    let blocks = 100_000u64;
    let payload = [1u8; 16];
    for lba in 0..blocks {
        cluster.write_block(lba, &payload).unwrap();
    }
    for step in 0..16u64 {
        let report = cluster.add_device(100 + step, 2_000_000).unwrap();
        // Movement stays proportional to the newcomer's share.
        let n_after = 4.0 + step as f64;
        let xi = 1.0 / n_after;
        assert!(
            report.moved_fraction() < 4.0 * xi + 0.1,
            "step {step}: moved {}",
            report.moved_fraction()
        );
    }
    assert_eq!(cluster.scrub().unwrap(), 0);
    assert_eq!(cluster.block_count(), blocks);
}

#[test]
#[ignore = "stress: long lazy migration with interleaved writes"]
fn lazy_migration_under_write_pressure() {
    let mut cluster = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .device(0, 3_000_000)
        .device(1, 3_000_000)
        .device(2, 3_000_000)
        .device(3, 3_000_000)
        .build()
        .unwrap();
    let blocks = 200_000u64;
    for lba in 0..blocks {
        cluster.write_block(lba, &[lba as u8; 16]).unwrap();
    }
    cluster.add_device_lazy(9, 3_000_000).unwrap();
    let mut writes = 0u64;
    while cluster.pending_blocks() > 0 {
        cluster.migrate_step(1_000).unwrap();
        // Interleave writes over the whole space.
        for i in 0..200u64 {
            let lba = (writes * 7_919 + i * 104_729) % blocks;
            cluster.write_block(lba, &[(lba ^ 1) as u8; 16]).unwrap();
        }
        writes += 1;
    }
    assert_eq!(cluster.scrub().unwrap(), 0);
    // Shard conservation: exactly 2 per block, nothing leaked anywhere.
    let total: u64 = cluster
        .device_ids()
        .iter()
        .map(|id| cluster.device(*id).unwrap().used_blocks())
        .sum();
    assert_eq!(total, blocks * 2);
}
