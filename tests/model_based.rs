//! Model-based randomized testing of the storage cluster.
//!
//! A long random sequence of operations (write, overwrite, read, device
//! add, graceful remove, crash + rebuild, scrub) is executed against the
//! real cluster and a trivial in-memory model (`HashMap<lba, data>`).
//! After every step the cluster must agree with the model on all data —
//! the strongest end-to-end statement of the redundancy and migration
//! machinery. Seeds are fixed so failures reproduce.

use std::collections::HashMap;

use redundant_share::hashing::splitmix64;
use redundant_share::storage::{Redundancy, StorageCluster, VdsError};

const BLOCK: usize = 24;

struct Harness {
    cluster: StorageCluster,
    model: HashMap<u64, Vec<u8>>,
    rng: u64,
    next_device: u64,
    online: Vec<u64>,
}

impl Harness {
    fn new(redundancy: Redundancy, devices: usize, seed: u64) -> Self {
        let mut builder = StorageCluster::builder()
            .block_size(BLOCK)
            .redundancy(redundancy);
        let mut online = Vec::new();
        for i in 0..devices as u64 {
            builder = builder.device(i, 60_000);
            online.push(i);
        }
        Self {
            cluster: builder.build().expect("valid cluster"),
            model: HashMap::new(),
            rng: seed,
            next_device: devices as u64,
            online,
        }
    }

    fn next(&mut self) -> u64 {
        self.rng = splitmix64(self.rng);
        self.rng
    }

    fn payload(&mut self, lba: u64) -> Vec<u8> {
        let tag = self.next();
        (0..BLOCK)
            .map(|i| (tag as u8).wrapping_add(lba as u8).wrapping_add(i as u8))
            .collect()
    }

    fn min_devices(&self) -> usize {
        self.cluster.redundancy().total_shards()
    }

    fn step(&mut self) {
        let roll = self.next() % 100;
        match roll {
            // 50 %: write or overwrite a block.
            0..=49 => {
                let lba = self.next() % 3_000;
                let data = self.payload(lba);
                self.cluster.write_block(lba, &data).expect("write");
                self.model.insert(lba, data);
            }
            // 25 %: read a (maybe missing) block.
            50..=74 => {
                let lba = self.next() % 3_000;
                match (self.cluster.read_block(lba), self.model.get(&lba)) {
                    (Ok(got), Some(want)) => assert_eq!(&got, want, "lba {lba}"),
                    (Err(VdsError::BlockNotFound { .. }), None) => {}
                    (got, want) => {
                        panic!("divergence at lba {lba}: cluster {got:?} model {want:?}")
                    }
                }
            }
            // 6 %: add a device eagerly.
            75..=80 => {
                let id = self.next_device;
                self.next_device += 1;
                let cap = 40_000 + self.next() % 40_000;
                self.cluster.add_device(id, cap).expect("add");
                self.online.push(id);
            }
            // 4 %: add a device lazily, then advance the migration a bit.
            81..=84 => {
                let id = self.next_device;
                self.next_device += 1;
                let cap = 40_000 + self.next() % 40_000;
                self.cluster.add_device_lazy(id, cap).expect("lazy add");
                self.online.push(id);
                let step = self.next() % 50;
                self.cluster.migrate_step(step).expect("migrate step");
            }
            // 8 %: gracefully remove a random device (if enough remain).
            85..=92 => {
                if self.online.len() > self.min_devices() {
                    let at = (self.next() as usize) % self.online.len();
                    let id = self.online.swap_remove(at);
                    self.cluster.remove_device(id).expect("drain");
                }
            }
            // 7 %: crash one device and rebuild (within redundancy budget).
            93..=99 => {
                if self.online.len() > self.min_devices()
                    && self.cluster.redundancy().tolerated_failures() >= 1
                {
                    let at = (self.next() as usize) % self.online.len();
                    let id = self.online.swap_remove(at);
                    self.cluster.fail_device(id).expect("fail");
                    self.cluster.rebuild().expect("rebuild");
                }
            }
            _ => unreachable!(),
        }
    }

    fn check_full_agreement(&mut self) {
        // Advance any lazy migration partway so checks run in mixed state.
        self.cluster.migrate_step(25).expect("migrate step");
        assert_eq!(self.cluster.block_count() as usize, self.model.len());
        let lbas: Vec<u64> = self.model.keys().copied().collect();
        for lba in lbas {
            let got = self.cluster.read_block(lba).expect("readable");
            assert_eq!(&got, self.model.get(&lba).unwrap(), "lba {lba}");
        }
        assert_eq!(self.cluster.scrub().expect("scrub"), 0);
    }
}

fn run(redundancy: Redundancy, devices: usize, steps: u32, seed: u64) {
    let mut h = Harness::new(redundancy, devices, seed);
    for step in 0..steps {
        h.step();
        if step % 100 == 99 {
            h.check_full_agreement();
        }
    }
    h.check_full_agreement();
}

#[test]
fn model_mirror_2way() {
    run(Redundancy::Mirror { copies: 2 }, 5, 600, 0xA11CE);
}

#[test]
fn model_mirror_3way() {
    run(Redundancy::Mirror { copies: 3 }, 6, 600, 0xB0B);
}

#[test]
fn model_reed_solomon() {
    run(
        Redundancy::ReedSolomon { data: 3, parity: 2 },
        7,
        400,
        0xCAFE,
    );
}

#[test]
fn model_rdp() {
    run(Redundancy::Rdp { p: 3 }, 6, 400, 0xD00D);
}

#[test]
fn model_xor_parity() {
    run(Redundancy::XorParity { data: 2 }, 5, 400, 0xE66);
}

#[test]
fn model_lrc() {
    run(
        Redundancy::LocalReconstruction {
            groups: 2,
            group_size: 2,
            global_parity: 1,
        },
        8,
        400,
        0xF00F,
    );
}

#[test]
fn model_many_seeds_smoke() {
    for seed in 1..=6u64 {
        run(Redundancy::Mirror { copies: 2 }, 4, 200, seed);
    }
}
