//! A RUSH-style replica placement baseline (Honicky & Miller, IPDPS
//! 2003/2004).
//!
//! RUSH (*Replication Under Scalable Hashing*) is the prior-work family the
//! ICDCS 2007 paper compares against in Section 1.2: it maps replicated
//! objects to a growing collection of storage servers, guarantees that no
//! two replicas of an object land on the same server, and moves few objects
//! on growth — but it **requires capacity to be added in homogeneous
//! sub-clusters**, each large enough to hold a whole redundancy group, and
//! its fairness degrades when a sub-cluster's weight share conflicts with
//! those constraints. Redundant Share removes exactly these restrictions.
//!
//! This crate implements [`RushP`], a faithful-in-spirit variant of the
//! RUSH_P algorithm:
//!
//! * the system grows (only) by appending sub-clusters of `n_j` disks with
//!   per-disk weight `w_j`;
//! * for each object the replicas are assigned cluster-by-cluster from the
//!   newest to the oldest: the number of replicas entering cluster `j` is a
//!   hash-seeded binomial draw with success probability
//!   `n_j · w_j / Σ_{i ≤ j} n_i · w_i`, clamped to the cluster size and to
//!   feasibility of the remainder (the clamping *is* RUSH's documented
//!   fairness limitation);
//! * within a cluster the replicas pick distinct disks through a seeded
//!   permutation.
//!
//! The placement is deterministic, keeps replicas distinct, and exposes the
//! same [`PlacementStrategy`] interface as the Redundant Share strategies so
//! the experiment harness can compare them head-to-head.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rshare_core::{BinId, PlacementError, PlacementStrategy};
use rshare_hash::{splitmix64, stable_hash3, unit_f64};

const RUSH_DOMAIN: u64 = 0x5255_5348; // "RUSH"

/// A homogeneous sub-cluster of disks added in one expansion step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubCluster {
    /// Number of disks in the sub-cluster.
    pub disks: u32,
    /// Weight (relative capacity) of each disk in the sub-cluster.
    pub weight: f64,
}

impl SubCluster {
    /// Creates a sub-cluster description.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::EmptySystem`] for zero disks and
    /// [`PlacementError::ZeroCapacity`] for a non-positive weight.
    pub fn new(disks: u32, weight: f64) -> Result<Self, PlacementError> {
        if disks == 0 {
            return Err(PlacementError::EmptySystem);
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(PlacementError::ZeroCapacity { id: 0 });
        }
        Ok(Self { disks, weight })
    }
}

/// The RUSH_P-style placement strategy.
///
/// # Example
///
/// ```
/// use rshare_rush::{RushP, SubCluster};
/// use rshare_core::PlacementStrategy;
///
/// let rush = RushP::new(
///     [SubCluster::new(4, 1.0).unwrap(), SubCluster::new(4, 2.0).unwrap()],
///     3,
/// )
/// .unwrap();
/// let replicas = rush.place(42);
/// assert_eq!(replicas.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RushP {
    clusters: Vec<SubCluster>,
    /// Global disk ids in canonical order (cluster-major).
    ids: Vec<BinId>,
    /// First global disk index of each cluster.
    base: Vec<usize>,
    k: usize,
}

impl RushP {
    /// Builds a RUSH placement over the given sub-clusters (in the order
    /// they were added to the system) for `k` replicas per object.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::EmptySystem`] if no clusters are given.
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if the system holds fewer than `k`
    ///   disks.
    pub fn new(
        clusters: impl IntoIterator<Item = SubCluster>,
        k: usize,
    ) -> Result<Self, PlacementError> {
        let clusters: Vec<SubCluster> = clusters.into_iter().collect();
        if clusters.is_empty() {
            return Err(PlacementError::EmptySystem);
        }
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        let total: usize = clusters.iter().map(|c| c.disks as usize).sum();
        if total < k {
            return Err(PlacementError::TooFewBins { k, n: total });
        }
        let mut ids = Vec::with_capacity(total);
        let mut base = Vec::with_capacity(clusters.len());
        let mut next = 0usize;
        for c in &clusters {
            base.push(next);
            for d in 0..c.disks as usize {
                ids.push(BinId((next + d) as u64));
            }
            next += c.disks as usize;
        }
        Ok(Self {
            clusters,
            ids,
            base,
            k,
        })
    }

    /// Grows the system by one sub-cluster, returning the new strategy
    /// (RUSH's only supported reconfiguration).
    ///
    /// # Errors
    ///
    /// Propagates [`RushP::new`]'s validation.
    pub fn grown(&self, cluster: SubCluster) -> Result<Self, PlacementError> {
        let mut clusters = self.clusters.clone();
        clusters.push(cluster);
        Self::new(clusters, self.k)
    }

    /// Deterministic binomial draw: `trials` Bernoulli experiments with
    /// success probability `prob`, seeded by `(obj, cluster)`.
    fn binomial(obj: u64, cluster: usize, trials: usize, prob: f64) -> usize {
        let mut successes = 0;
        let mut state = stable_hash3(obj, cluster as u64, RUSH_DOMAIN);
        for _ in 0..trials {
            state = splitmix64(state);
            if unit_f64(state) < prob {
                successes += 1;
            }
        }
        successes
    }

    /// Picks `count` distinct disks of cluster `j` via a seeded partial
    /// Fisher–Yates shuffle.
    fn pick_disks(&self, obj: u64, j: usize, count: usize, out: &mut Vec<BinId>) {
        let n = self.clusters[j].disks as usize;
        debug_assert!(count <= n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = stable_hash3(obj, j as u64, RUSH_DOMAIN ^ 0xD15C);
        for t in 0..count {
            state = splitmix64(state);
            let pick = t + (state as usize) % (n - t);
            order.swap(t, pick);
            out.push(self.ids[self.base[j] + order[t]]);
        }
    }
}

impl PlacementStrategy for RushP {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        let mut remaining = self.k;
        // Cumulative weighted capacities W_j = Σ_{i <= j} n_i w_i and disk
        // counts, processed newest-first.
        let mut cum_weight: Vec<f64> = Vec::with_capacity(self.clusters.len());
        let mut cum_disks: Vec<usize> = Vec::with_capacity(self.clusters.len());
        let (mut w_acc, mut d_acc) = (0.0, 0usize);
        for c in &self.clusters {
            w_acc += f64::from(c.disks) * c.weight;
            d_acc += c.disks as usize;
            cum_weight.push(w_acc);
            cum_disks.push(d_acc);
        }
        for j in (1..self.clusters.len()).rev() {
            if remaining == 0 {
                break;
            }
            let c = &self.clusters[j];
            let share = f64::from(c.disks) * c.weight / cum_weight[j];
            let mut t = Self::binomial(ball, j, remaining, share);
            // RUSH's feasibility clamps: a sub-cluster cannot hold more
            // replicas than disks, and enough replicas must remain
            // placeable on the older clusters.
            t = t.min(c.disks as usize);
            let min_here = remaining.saturating_sub(cum_disks[j - 1]);
            t = t.max(min_here);
            if t > 0 {
                self.pick_disks(ball, j, t, out);
                remaining -= t;
            }
        }
        if remaining > 0 {
            self.pick_disks(ball, 0, remaining, out);
        }
    }

    fn fair_shares(&self) -> Vec<f64> {
        let total: f64 = self
            .clusters
            .iter()
            .map(|c| f64::from(c.disks) * c.weight)
            .sum();
        let mut shares = Vec::with_capacity(self.ids.len());
        for c in &self.clusters {
            for _ in 0..c.disks {
                shares.push(self.k as f64 * c.weight / total);
            }
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters(k: usize) -> RushP {
        RushP::new(
            [
                SubCluster::new(6, 1.0).unwrap(),
                SubCluster::new(6, 1.0).unwrap(),
            ],
            k,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(SubCluster::new(0, 1.0).is_err());
        assert!(SubCluster::new(3, 0.0).is_err());
        assert!(SubCluster::new(3, f64::NAN).is_err());
        assert!(RushP::new([], 2).is_err());
        assert!(RushP::new([SubCluster::new(2, 1.0).unwrap()], 0).is_err());
        assert!(RushP::new([SubCluster::new(2, 1.0).unwrap()], 3).is_err());
    }

    #[test]
    fn replicas_distinct_and_deterministic() {
        let rush = two_clusters(4);
        for obj in 0..3_000u64 {
            let placed = rush.place(obj);
            assert_eq!(placed.len(), 4);
            let mut uniq = placed.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 4, "object {obj}");
            assert_eq!(placed, rush.place(obj));
        }
    }

    #[test]
    fn homogeneous_fairness() {
        let rush = two_clusters(2);
        let objs = 60_000u64;
        let mut counts = [0u64; 12];
        for obj in 0..objs {
            for id in rush.place(obj) {
                counts[id.raw() as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / objs as f64;
            assert!((share - 2.0 / 12.0).abs() < 0.01, "disk {i}: share {share}");
        }
    }

    #[test]
    fn weighted_clusters_roughly_fair() {
        let rush = RushP::new(
            [
                SubCluster::new(4, 1.0).unwrap(),
                SubCluster::new(4, 3.0).unwrap(),
            ],
            2,
        )
        .unwrap();
        let objs = 60_000u64;
        let mut counts = [0u64; 8];
        for obj in 0..objs {
            for id in rush.place(obj) {
                counts[id.raw() as usize] += 1;
            }
        }
        let light: u64 = counts[..4].iter().sum();
        let heavy: u64 = counts[4..].iter().sum();
        let heavy_share = heavy as f64 / (light + heavy) as f64;
        // Heavy cluster holds 3/4 of the weight; the binomial clamps keep
        // RUSH close to but not exactly at the target — the very effect the
        // ICDCS paper criticises. Allow a visible band.
        assert!(
            (heavy_share - 0.75).abs() < 0.08,
            "heavy cluster share {heavy_share}"
        );
    }

    #[test]
    fn growth_moves_objects_mostly_towards_new_cluster() {
        let old = two_clusters(2);
        let new = old.grown(SubCluster::new(6, 1.0).unwrap()).unwrap();
        let objs = 20_000u64;
        let mut moved = 0u64;
        let mut moved_to_new = 0u64;
        for obj in 0..objs {
            let a = old.place(obj);
            let b = new.place(obj);
            for (x, y) in a.iter().zip(&b) {
                if x != y {
                    moved += 1;
                    if y.raw() >= 12 {
                        moved_to_new += 1;
                    }
                }
            }
        }
        // The new cluster owns 1/3 of the capacity; movement should be in
        // that ballpark, and dominated by moves onto the new disks.
        let frac = moved as f64 / (objs * 2) as f64;
        assert!(frac < 0.55, "moved fraction {frac}");
        assert!(
            moved_to_new as f64 / moved as f64 > 0.5,
            "uncontrolled churn: {moved_to_new}/{moved}"
        );
    }

    #[test]
    fn small_heavy_cluster_is_structurally_clamped() {
        // A 1-disk sub-cluster with huge weight cannot absorb its fair
        // share of replicas — RUSH clamps (its documented restriction).
        let rush = RushP::new(
            [
                SubCluster::new(6, 1.0).unwrap(),
                SubCluster::new(1, 10.0).unwrap(),
            ],
            3,
        )
        .unwrap();
        let objs = 20_000u64;
        let mut big = 0u64;
        for obj in 0..objs {
            let placed = rush.place(obj);
            assert_eq!(placed.len(), 3);
            let hits = placed.iter().filter(|id| id.raw() == 6).count();
            assert!(hits <= 1, "replica duplication on the heavy disk");
            big += hits as u64;
        }
        // It is hit by most objects (weight dominates) but never twice.
        assert!(big as f64 / objs as f64 > 0.9);
    }
}
