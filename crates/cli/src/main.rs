//! `rshare` — command-line explorer for Redundant Share placements.
//!
//! ```text
//! rshare capacity  --capacities 1000,500,300 --k 2
//! rshare place     --capacities 1000,500,300 --k 2 --balls 5
//! rshare fairness  --capacities 1000,500,300 --k 2 --balls 100000
//! rshare movement  --capacities 1000,500,300 --k 2 --add 800 --balls 50000
//! rshare movement  --capacities 1000,500,300 --k 2 --remove 1 --balls 50000
//! ```

mod args;

use args::{ArgError, Args};
use rshare_core::capacity::{is_capacity_efficient, max_balls, optimal_weights};
use rshare_core::{
    Bin, BinId, BinSet, FastRedundantShare, PlacementStrategy, RedundantShare, SystematicPps,
    TrivialReplication,
};
use rshare_vds::{Redundancy, StorageCluster};
use rshare_workload::measure_fairness;
use rshare_workload::movement::measure_movement;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(argv) {
        eprintln!("error: {e}");
        eprintln!("run `rshare help` for usage");
        std::process::exit(1);
    }
}

fn run(argv: Vec<String>) -> Result<(), ArgError> {
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return Ok(());
    }
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "capacity" => cmd_capacity(&args),
        "place" => cmd_place(&args),
        "fairness" => cmd_fairness(&args),
        "movement" => cmd_movement(&args),
        "compare" => cmd_compare(&args),
        "roles" => cmd_roles(&args),
        "durability" => cmd_durability(&args),
        "simulate" => cmd_simulate(&args),
        "metrics" => cmd_metrics(&args),
        "kernels" => cmd_kernels(&args),
        other => Err(ArgError(format!("unknown subcommand '{other}'"))),
    }
}

fn print_help() {
    println!(
        "rshare — fair, redundant, adaptive data placement (ICDCS 2007)\n\
         \n\
         USAGE: rshare <command> [--option value]...\n\
         \n\
         COMMANDS\n\
         capacity  --capacities LIST --k K\n\
         \x20         capacity-efficiency analysis (Lemmas 2.1/2.2)\n\
         place     --capacities LIST --k K [--balls N]\n\
         \x20         print the placements of the first N balls (default 5)\n\
         fairness  --capacities LIST --k K [--balls N]\n\
         \x20         empirical per-bin load versus fair share (default 100000)\n\
         movement  --capacities LIST --k K (--add CAP | --remove INDEX) [--balls N]\n\
         \x20         copies replaced by a membership change (default 50000)\n\
         roles     --capacities LIST --k K\n\
         \x20         analytic per-copy (sub-block role) distribution\n\
         compare   --capacities LIST --k K [--balls N]\n\
         \x20         fairness of every strategy in the workspace side by side\n\
         simulate  --capacities LIST [--blocks N]\n\
         \x20         run a mirrored cluster through load / grow / fail / rebuild\n\
         metrics   --capacities LIST [--blocks N] [--fail ID]\n\
         \x20         load a mirrored cluster, optionally fail a device, and print\n\
         \x20         the health summary plus the Prometheus metrics exposition\n\
         kernels   [--shard-kib N]\n\
         \x20         report the GF(256) kernel dispatch (SIMD detection, active\n\
         \x20         tier, RSHARE_GF256_KERNEL override) and per-tier encode rates\n\
         durability --capacities LIST --k K --tolerated T [--mtbf H] [--rebuild H]\n\
         \x20         Monte-Carlo 5-year data-loss probability\n\
         \n\
         LIST is comma-separated capacities in blocks, e.g. 1000,500,300;\n\
         bins are named 0..n-1 in the given order."
    );
}

fn bin_set(args: &Args) -> Result<(BinSet, usize), ArgError> {
    let caps = args.capacities()?;
    let k = usize::try_from(args.required_u64("k")?)
        .map_err(|_| ArgError("--k out of range".into()))?;
    let bins = BinSet::from_capacities(caps).map_err(|e| ArgError(e.to_string()))?;
    Ok((bins, k))
}

fn cmd_capacity(args: &Args) -> Result<(), ArgError> {
    let caps = args.capacities()?;
    let k = usize::try_from(args.required_u64("k")?)
        .map_err(|_| ArgError("--k out of range".into()))?;
    let mut sorted = caps.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    println!(
        "bins: {} | total capacity: {total} blocks | k = {k}",
        sorted.len()
    );
    println!(
        "capacity efficient (Lemma 2.1, k·b_max <= B): {}",
        is_capacity_efficient(&sorted, k)
    );
    let weights = optimal_weights(&sorted, k);
    println!("adjusted capacities (Lemma 2.2):");
    for (raw, adj) in sorted.iter().zip(&weights) {
        let note = if (*raw as f64 - adj).abs() > 1e-9 {
            "  (capped)"
        } else {
            ""
        };
        println!("  {raw:>12}  ->  {adj:>14.2}{note}");
    }
    println!("naive bound B/k    : {}", total / k as u64);
    println!("max balls (Lemma 2.2): {}", max_balls(&sorted, k));
    Ok(())
}

fn cmd_place(args: &Args) -> Result<(), ArgError> {
    let (bins, k) = bin_set(args)?;
    let balls = args.u64_or("balls", 5)?;
    let strat = RedundantShare::new(&bins, k).map_err(|e| ArgError(e.to_string()))?;
    println!("ball -> copy placements (bin ids)");
    for ball in 0..balls {
        let placed: Vec<String> = strat
            .place(ball)
            .iter()
            .map(|id| id.raw().to_string())
            .collect();
        println!("{ball:>6} -> [{}]", placed.join(", "));
    }
    Ok(())
}

fn cmd_fairness(args: &Args) -> Result<(), ArgError> {
    let (bins, k) = bin_set(args)?;
    let balls = args.u64_or("balls", 100_000)?;
    let strat = RedundantShare::new(&bins, k).map_err(|e| ArgError(e.to_string()))?;
    let report = measure_fairness(&strat, balls);
    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}",
        "bin", "capacity", "share", "target"
    );
    for (i, bin) in bins.bins().iter().enumerate() {
        println!(
            "{:>6}  {:>12}  {:>10.4}  {:>10.4}",
            bin.id().raw(),
            bin.capacity(),
            report.shares[i],
            report.targets[i]
        );
    }
    println!(
        "max relative deviation over {balls} balls: {:.4}",
        report.max_relative_deviation()
    );
    Ok(())
}

fn cmd_movement(args: &Args) -> Result<(), ArgError> {
    let (bins, k) = bin_set(args)?;
    let balls = args.u64_or("balls", 50_000)?;
    let before = RedundantShare::new(&bins, k).map_err(|e| ArgError(e.to_string()))?;
    let (after_bins, affected) = match (args.optional("add"), args.optional("remove")) {
        (Some(cap), None) => {
            let cap: u64 = cap
                .parse()
                .map_err(|_| ArgError("--add must be a capacity in blocks".into()))?;
            let id = BinId(bins.len() as u64);
            let grown = bins
                .with_bin(Bin::new(id, cap).map_err(|e| ArgError(e.to_string()))?)
                .map_err(|e| ArgError(e.to_string()))?;
            (grown, id)
        }
        (None, Some(idx)) => {
            let id = BinId(
                idx.parse::<u64>()
                    .map_err(|_| ArgError("--remove must be a bin id".into()))?,
            );
            let shrunk = bins.without_bin(id).map_err(|e| ArgError(e.to_string()))?;
            (shrunk, id)
        }
        _ => {
            return Err(ArgError(
                "movement needs exactly one of --add CAP or --remove INDEX".into(),
            ))
        }
    };
    let after = RedundantShare::new(&after_bins, k).map_err(|e| ArgError(e.to_string()))?;
    let report = measure_movement(&before, &after, affected, balls);
    println!("balls examined      : {}", report.balls);
    println!("copies examined     : {}", report.total_copies);
    println!("copies replaced     : {}", report.replaced);
    println!("copies on changed bin: {}", report.used_on_affected);
    println!("replaced / used     : {:.4}", report.factor());
    println!("replaced fraction   : {:.4}", report.replaced_fraction());
    println!("(Lemma 3.2/3.5 bound the factor by 4 for k = 2, k² in general)");
    Ok(())
}

fn cmd_roles(args: &Args) -> Result<(), ArgError> {
    let (bins, k) = bin_set(args)?;
    let strat = RedundantShare::new(&bins, k).map_err(|e| ArgError(e.to_string()))?;
    print!("{:>6}  {:>12}", "bin", "capacity");
    for t in 0..k {
        print!("  {:>8}", format!("copy{t}"));
    }
    println!("  {:>8}", "total");
    let dists: Vec<Vec<f64>> = (0..k).map(|t| strat.copy_distribution(t)).collect();
    for (i, bin) in bins.bins().iter().enumerate() {
        print!("{:>6}  {:>12}", bin.id().raw(), bin.capacity());
        let mut total = 0.0;
        for dist in &dists {
            print!("  {:>8.4}", dist[i]);
            total += dist[i];
        }
        println!("  {total:>8.4}");
    }
    println!("(each copy column sums to 1; totals are the fair shares k·c'_i)");
    Ok(())
}

fn cmd_durability(args: &Args) -> Result<(), ArgError> {
    use rshare_workload::reliability::{simulate, ReliabilityConfig};
    let (bins, k) = bin_set(args)?;
    let tolerated = usize::try_from(args.required_u64("tolerated")?)
        .map_err(|_| ArgError("--tolerated out of range".into()))?;
    let mtbf = args.u64_or("mtbf", 100_000)? as f64;
    let rebuild = args.u64_or("rebuild", 48)? as f64;
    let trials = u32::try_from(args.u64_or("trials", 100)?)
        .map_err(|_| ArgError("--trials out of range".into()))?;
    let strat = RedundantShare::new(&bins, k).map_err(|e| ArgError(e.to_string()))?;
    let config = ReliabilityConfig {
        blocks: 20_000,
        tolerated,
        device_mtbf_hours: mtbf,
        rebuild_hours: rebuild,
        mission_hours: 5.0 * 8_766.0,
    };
    let report = simulate(&strat, config, trials, 0xCAFE);
    println!("devices            : {}", bins.len());
    println!("shards per block   : {k} (tolerates {tolerated} losses)");
    println!("device MTBF        : {mtbf} h; rebuild window: {rebuild} h");
    println!("mission            : 5 years x {trials} trials");
    println!("failures per trial : {:.1}", report.mean_failures);
    println!(
        "data loss          : {}/{} trials (P = {:.4})",
        report.losses,
        report.trials,
        report.loss_probability()
    );
    if let Some(h) = report.mean_hours_to_loss {
        println!("mean time to loss  : {:.0} days", h / 24.0);
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), ArgError> {
    let (bins, k) = bin_set(args)?;
    let balls = args.u64_or("balls", 60_000)?;
    let err = |e: rshare_core::PlacementError| ArgError(e.to_string());
    let strategies: Vec<(&str, Box<dyn PlacementStrategy>)> = vec![
        (
            "redundant share (O(n))",
            Box::new(RedundantShare::new(&bins, k).map_err(err)?),
        ),
        (
            "redundant share (O(k))",
            Box::new(FastRedundantShare::new(&bins, k).map_err(err)?),
        ),
        (
            "trivial k-draws",
            Box::new(TrivialReplication::new(&bins, k).map_err(err)?),
        ),
        (
            "systematic PPS",
            Box::new(SystematicPps::new(&bins, k).map_err(err)?),
        ),
    ];
    println!(
        "{:>24}  {:>14}  {:>10}  {:>8}",
        "strategy", "max deviation", "chi^2", "gini"
    );
    for (name, strat) in &strategies {
        let report = measure_fairness(strat.as_ref(), balls);
        println!(
            "{:>24}  {:>14.4}  {:>10.1}  {:>8.4}",
            name,
            report.max_relative_deviation(),
            report.chi_square(),
            report.gini()
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), ArgError> {
    let caps = args.capacities()?;
    let blocks = args.u64_or("blocks", 10_000)?;
    let mut builder = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 });
    for (i, cap) in caps.iter().enumerate() {
        builder = builder.device(i as u64, *cap);
    }
    let mut cluster = builder.build().map_err(|e| ArgError(e.to_string()))?;
    println!(
        "loading {blocks} mirrored blocks over {} devices…",
        caps.len()
    );
    let payload = [0x42u8; 16];
    for lba in 0..blocks {
        cluster
            .write_block(lba, &payload)
            .map_err(|e| ArgError(format!("load failed at block {lba}: {e}")))?;
    }
    let util = |c: &StorageCluster| {
        for (id, used, cap) in c.utilization() {
            println!(
                "  device {id}: {used}/{cap} blocks ({:.1}%)",
                100.0 * used as f64 / cap as f64
            );
        }
    };
    util(&cluster);

    let new_id = caps.len() as u64;
    let new_cap = *caps.iter().max().expect("non-empty");
    println!(
        "
adding device {new_id} with {new_cap} blocks…"
    );
    let report = cluster
        .add_device(new_id, new_cap)
        .map_err(|e| ArgError(e.to_string()))?;
    println!(
        "  moved {} of {} shards ({:.1}%)",
        report.shards_moved,
        report.shards_total,
        100.0 * report.moved_fraction()
    );
    util(&cluster);

    println!(
        "
crashing device 0 and rebuilding…"
    );
    cluster
        .fail_device(0)
        .map_err(|e| ArgError(e.to_string()))?;
    let report = cluster.rebuild().map_err(|e| ArgError(e.to_string()))?;
    println!(
        "  reconstructed {} shards, moved {}",
        report.shards_reconstructed, report.shards_moved
    );
    let degraded = cluster.scrub().map_err(|e| ArgError(e.to_string()))?;
    println!("  scrub: {degraded} degraded blocks — all data intact");
    util(&cluster);
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<(), ArgError> {
    let caps = args.capacities()?;
    let blocks = args.u64_or("blocks", 10_000)?;
    let mut builder = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 });
    for (i, cap) in caps.iter().enumerate() {
        builder = builder.device(i as u64, *cap);
    }
    let mut cluster = builder.build().map_err(|e| ArgError(e.to_string()))?;

    // A short workload so every series has moved: write all, read all,
    // and — when asked — fail a device and read through the degradation.
    let payload = [0x42u8; 16];
    for lba in 0..blocks {
        cluster
            .write_block(lba, &payload)
            .map_err(|e| ArgError(format!("load failed at block {lba}: {e}")))?;
    }
    for lba in 0..blocks {
        cluster
            .read_block(lba)
            .map_err(|e| ArgError(e.to_string()))?;
    }
    if let Some(id) = args.optional("fail") {
        let id: u64 = id
            .parse()
            .map_err(|_| ArgError("--fail must be a device id".into()))?;
        cluster
            .fail_device(id)
            .map_err(|e| ArgError(e.to_string()))?;
        for lba in 0..blocks {
            cluster
                .read_block(lba)
                .map_err(|e| ArgError(e.to_string()))?;
        }
    }

    let snap = cluster.health_snapshot();
    println!(
        "devices: {} online, {} failed | blocks: {} | pending: {} | degraded: {}",
        snap.devices_online,
        snap.devices_failed,
        snap.blocks,
        snap.pending_blocks,
        snap.degraded_blocks
    );
    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}  {:>10}",
        "device", "used/cap", "share", "fair", "deviation"
    );
    for d in &snap.fairness.devices {
        println!(
            "{:>6}  {:>12}  {:>10.4}  {:>10.4}  {:>+9.2}%",
            d.device,
            format!("{}/{}", d.used_blocks, d.capacity_blocks),
            d.share,
            d.fair_share,
            100.0 * d.deviation
        );
    }
    println!(
        "max fairness deviation: {:.4} (paper bar: capacity-proportional shares)\n",
        snap.fairness.max_deviation
    );
    print!("{}", cluster.export_prometheus());
    Ok(())
}

fn cmd_kernels(args: &Args) -> Result<(), ArgError> {
    use rshare_erasure::gf256::{self, KernelTier};
    use rshare_erasure::{ErasureCode, ReedSolomon};
    use std::time::Instant;

    let shard_kib = args.u64_or("shard-kib", 64)?;
    if shard_kib == 0 || shard_kib > 16_384 {
        return Err(ArgError("--shard-kib must be in 1..=16384".into()));
    }
    let shard_len = (shard_kib as usize) * 1024;

    let simd_level = match gf256::simd::level() {
        Some(l) => format!("{l:?}"),
        None => "unavailable".to_string(),
    };
    let override_var = std::env::var("RSHARE_GF256_KERNEL").ok();
    println!("GF(256) bulk-kernel dispatch");
    println!("  simd support : {simd_level}");
    println!(
        "  env override : {}",
        override_var.as_deref().unwrap_or("(unset)")
    );
    println!("  active tier  : {}", gf256::kernel_tier().name());

    // Per-tier RS(4, 2) encode rate on `--shard-kib` shards. Tiers are
    // bit-identical; only the throughput differs.
    let rs = ReedSolomon::new(4, 2).map_err(|e| ArgError(e.to_string()))?;
    let mut shards: Vec<Vec<u8>> = (0..6)
        .map(|i| (0..shard_len).map(|j| (i * 89 + j * 7) as u8).collect())
        .collect();
    let prior = gf256::kernel_tier();
    println!("  rs(4,2) encode, {shard_kib} KiB shards:");
    for tier in [KernelTier::Simd, KernelTier::Swar, KernelTier::Table] {
        let installed = gf256::set_kernel_tier(tier);
        let start = Instant::now();
        let reps = 8;
        for _ in 0..reps {
            rs.encode(&mut shards)
                .map_err(|e| ArgError(e.to_string()))?;
        }
        let secs = start.elapsed().as_secs_f64();
        let mb = (reps * 4 * shard_len) as f64 / 1e6;
        let note = if installed == tier {
            String::new()
        } else {
            format!("  (unavailable; ran {})", installed.name())
        };
        println!("    {:>5}  {:>9.1} MB/s{}", tier.name(), mb / secs, note);
    }
    gf256::set_kernel_tier(prior);
    let stats = gf256::kernel_stats();
    println!(
        "  kernel stats : {} calls, {} simd bytes, {} swar bytes, {} xor bytes",
        stats.calls, stats.simd_bytes, stats.swar_bytes, stats.xor_bytes
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<(), ArgError> {
        run(tokens.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn help_runs() {
        run_tokens(&["help"]).unwrap();
        run_tokens(&[]).unwrap();
    }

    #[test]
    fn capacity_command() {
        run_tokens(&["capacity", "--capacities", "1000,500,300", "--k", "2"]).unwrap();
    }

    #[test]
    fn place_and_fairness_commands() {
        run_tokens(&[
            "place",
            "--capacities",
            "1000,500,300",
            "--k",
            "2",
            "--balls",
            "3",
        ])
        .unwrap();
        run_tokens(&[
            "fairness",
            "--capacities",
            "1000,500,300",
            "--k",
            "2",
            "--balls",
            "5000",
        ])
        .unwrap();
    }

    #[test]
    fn movement_commands() {
        run_tokens(&[
            "movement",
            "--capacities",
            "1000,500,300",
            "--k",
            "2",
            "--add",
            "800",
            "--balls",
            "5000",
        ])
        .unwrap();
        run_tokens(&[
            "movement",
            "--capacities",
            "1000,500,300",
            "--k",
            "2",
            "--remove",
            "2",
            "--balls",
            "5000",
        ])
        .unwrap();
    }

    #[test]
    fn compare_and_simulate_commands() {
        run_tokens(&[
            "compare",
            "--capacities",
            "1000,500,300",
            "--k",
            "2",
            "--balls",
            "4000",
        ])
        .unwrap();
        run_tokens(&[
            "simulate",
            "--capacities",
            "2000,2000,2000,2000",
            "--blocks",
            "1500",
        ])
        .unwrap();
    }

    #[test]
    fn durability_command() {
        run_tokens(&[
            "durability",
            "--capacities",
            "1000,1000,1000,1000",
            "--k",
            "2",
            "--tolerated",
            "1",
            "--trials",
            "5",
        ])
        .unwrap();
    }

    #[test]
    fn roles_command() {
        run_tokens(&["roles", "--capacities", "1000,500,300", "--k", "2"]).unwrap();
    }

    #[test]
    fn metrics_command() {
        run_tokens(&[
            "metrics",
            "--capacities",
            "2000,3000,3000",
            "--blocks",
            "800",
        ])
        .unwrap();
        run_tokens(&[
            "metrics",
            "--capacities",
            "2000,3000,3000",
            "--blocks",
            "800",
            "--fail",
            "1",
        ])
        .unwrap();
        assert!(run_tokens(&[
            "metrics",
            "--capacities",
            "2000,3000",
            "--blocks",
            "100",
            "--fail",
            "9"
        ])
        .is_err());
    }

    #[test]
    fn kernels_command() {
        run_tokens(&["kernels", "--shard-kib", "4"]).unwrap();
        assert!(run_tokens(&["kernels", "--shard-kib", "0"]).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_tokens(&["bogus"]).is_err());
        assert!(run_tokens(&["movement", "--capacities", "10,10", "--k", "2"]).is_err());
        assert!(run_tokens(&["place", "--capacities", "10", "--k", "3"]).is_err());
    }
}
