//! Minimal argument parsing for the `rshare` tool (no external deps).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
}

/// Error produced by argument parsing or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when no subcommand is given, an option is
    /// missing its value, or a positional argument appears after options.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut it = argv.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `rshare help`".into()))?;
        let mut options = HashMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("unexpected positional argument '{tok}'")))?;
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("option --{key} is missing a value")))?;
            options.insert(key.to_string(), value);
        }
        Ok(Self { command, options })
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Optional string option.
    #[must_use]
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required integer option.
    pub fn required_u64(&self, key: &str) -> Result<u64, ArgError> {
        self.required(key)?
            .parse()
            .map_err(|_| ArgError(format!("option --{key} must be an integer")))
    }

    /// Optional integer option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("option --{key} must be an integer"))),
        }
    }

    /// Comma-separated capacity list, e.g. `--capacities 500,400,300`.
    pub fn capacities(&self) -> Result<Vec<u64>, ArgError> {
        let raw = self.required("capacities")?;
        raw.split(',')
            .map(|part| {
                part.trim()
                    .parse::<u64>()
                    .map_err(|_| ArgError(format!("bad capacity '{part}'")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let args = parse(&["place", "--capacities", "5,4,3", "--k", "2"]).unwrap();
        assert_eq!(args.command, "place");
        assert_eq!(args.capacities().unwrap(), vec![5, 4, 3]);
        assert_eq!(args.required_u64("k").unwrap(), 2);
        assert_eq!(args.u64_or("balls", 10).unwrap(), 10);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["place", "stray"]).is_err());
        assert!(parse(&["place", "--k"]).is_err());
        let args = parse(&["place", "--capacities", "5,x"]).unwrap();
        assert!(args.capacities().is_err());
        assert!(args.required("missing").is_err());
        assert!(args.required_u64("capacities").is_err());
    }
}
