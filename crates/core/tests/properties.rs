//! Property-based tests of the placement invariants.
//!
//! These check, over randomly drawn capacity vectors and replication
//! degrees, the paper's structural guarantees: redundancy (distinct bins),
//! determinism, capacity-adjustment correctness (Lemmas 2.1/2.2),
//! calibration exactness, and monotone adaptivity properties.

use proptest::prelude::*;
use rshare_core::capacity::{is_capacity_efficient, max_balls, optimal_weights};
use rshare_core::{
    Bin, BinSet, FastRedundantShare, PlacementEngine, PlacementStrategy, RedundantShare,
    SystematicPps, TrivialReplication,
};

/// Strategy for a plausible heterogeneous capacity vector.
fn capacities() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..=2_000, 2..=12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn redundant_share_places_k_distinct_bins(
        caps in capacities(),
        seed in any::<u64>(),
    ) {
        let set = BinSet::from_capacities(caps.clone()).unwrap();
        for k in 1..=set.len().min(5) {
            let strat = RedundantShare::new(&set, k).unwrap();
            for offset in 0..20u64 {
                let ball = seed.wrapping_add(offset);
                let placed = strat.place(ball);
                prop_assert_eq!(placed.len(), k);
                let mut uniq = placed.clone();
                uniq.sort();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), k, "duplicate bin for ball {}", ball);
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_invariants(
        caps in capacities(),
        seed in any::<u64>(),
    ) {
        let set = BinSet::from_capacities(caps.clone()).unwrap();
        let n = set.len();
        let k = (seed as usize % n.min(4)) + 1;
        let strategies: Vec<Box<dyn PlacementStrategy>> = vec![
            Box::new(RedundantShare::new(&set, k).unwrap()),
            Box::new(FastRedundantShare::new(&set, k).unwrap()),
            Box::new(TrivialReplication::new(&set, k).unwrap()),
            Box::new(SystematicPps::new(&set, k).unwrap()),
        ];
        for strat in &strategies {
            for offset in 0..10u64 {
                let ball = seed.wrapping_mul(31).wrapping_add(offset);
                let a = strat.place(ball);
                let b = strat.place(ball);
                prop_assert_eq!(&a, &b, "non-deterministic placement");
                let mut uniq = a.clone();
                uniq.sort();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), k);
                // Every returned id belongs to the system.
                for id in &a {
                    prop_assert!(strat.bin_ids().contains(id));
                }
            }
        }
    }

    #[test]
    fn optimal_weights_satisfy_lemma_2_1(
        caps in capacities(),
        k in 1usize..=5,
    ) {
        let mut sorted = caps.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = k.min(sorted.len());
        let w = optimal_weights(&sorted, k);
        // Never grows, never reorders, never hits zero.
        for (orig, adj) in sorted.iter().zip(&w) {
            prop_assert!(*adj <= *orig as f64 + 1e-9);
            prop_assert!(*adj > 0.0);
        }
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-9);
        }
        // Feasibility after adjustment (Lemma 2.1).
        let total: f64 = w.iter().sum();
        prop_assert!(k as f64 * w[0] <= total + total * 1e-12 + 1e-9);
        // Already-feasible inputs are untouched.
        if is_capacity_efficient(&sorted, k) {
            let untouched: Vec<f64> = sorted.iter().map(|&c| c as f64).collect();
            prop_assert_eq!(w, untouched);
        }
    }

    #[test]
    fn max_balls_is_achievable_and_tight(
        caps in prop::collection::vec(1u64..=60, 2..=8),
        k in 2usize..=4,
    ) {
        let mut sorted = caps.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = k.min(sorted.len());
        let m = max_balls(&sorted, k);
        // Lemma 2.1's constructive packing reaches m...
        prop_assert!(rshare_core::capacity::greedy_pack(&sorted, k, m).is_some());
        // ...and the adjusted-capacity bound is no larger than the naive
        // B/k bound.
        let naive = sorted.iter().sum::<u64>() / k as u64;
        prop_assert!(m <= naive);
    }

    #[test]
    fn calibration_residual_is_negligible(
        caps in capacities(),
        k in 1usize..=5,
    ) {
        let set = BinSet::from_capacities(caps).unwrap();
        let k = k.min(set.len());
        let strat = RedundantShare::new(&set, k).unwrap();
        prop_assert!(
            strat.calibration_residual() < 1e-6,
            "residual {}",
            strat.calibration_residual()
        );
        // The analytic expectation matches the fairness target.
        for (e, f) in strat.expected_shares().iter().zip(strat.fair_shares()) {
            prop_assert!((e - f).abs() < 1e-6, "analytic {} vs fair {}", e, f);
        }
    }

    #[test]
    fn insertion_does_not_disturb_scan_prefix_decisions(
        caps in prop::collection::vec(1u64..=1_000, 3..=9),
        extra in 1u64..=1_000,
        seed in any::<u64>(),
    ) {
        // Adaptivity smoke property: adding a bin moves a bounded fraction
        // of copies. We use the generous Lemma 3.5 bound k²·ξ plus
        // statistical slack.
        let set = BinSet::from_capacities(caps.clone()).unwrap();
        let grown = set
            .with_bin(Bin::new(1_000_000u64, extra).unwrap())
            .unwrap();
        let k = 2usize;
        let before = RedundantShare::new(&set, k).unwrap();
        let after = RedundantShare::new(&grown, k).unwrap();
        let balls = 4_000u64;
        let mut moved = 0u64;
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for i in 0..balls {
            let ball = seed.wrapping_add(i);
            before.place_into(ball, &mut va);
            after.place_into(ball, &mut vb);
            moved += va.iter().zip(&vb).filter(|(x, y)| x != y).count() as u64;
        }
        let total_after: f64 = grown.total_capacity() as f64;
        let xi = extra as f64 / total_after;
        let moved_frac = moved as f64 / (balls * k as u64) as f64;
        // k² bound with slack for weight re-adjustment effects and noise.
        prop_assert!(
            moved_frac <= (k * k) as f64 * xi + 0.35,
            "moved {} of copies for ξ = {}",
            moved_frac,
            xi
        );
    }

    #[test]
    fn batch_and_parallel_match_scalar(
        caps in capacities(),
        seed in any::<u64>(),
        threads in 2usize..=4,
    ) {
        // The batch API and the multi-threaded engine are pure
        // reformulations of the scalar query loop: same placements, bit
        // for bit, in flat stride-k order.
        let set = BinSet::from_capacities(caps).unwrap();
        let k = (seed as usize % set.len().min(4)) + 1;
        let balls: Vec<u64> = (0..600u64)
            .map(|i| seed.wrapping_mul(131).wrapping_add(i))
            .collect();
        let strategies: Vec<Box<dyn PlacementStrategy>> = vec![
            Box::new(RedundantShare::new(&set, k).unwrap()),
            Box::new(FastRedundantShare::new(&set, k).unwrap()),
        ];
        for strat in &strategies {
            let mut expect = Vec::with_capacity(balls.len() * k);
            for &ball in &balls {
                expect.extend(strat.place(ball));
            }
            let mut batch = Vec::new();
            strat.place_batch_into(&balls, &mut batch);
            prop_assert_eq!(&batch, &expect);
        }
        // 600 balls over ≥2 threads crosses the engine's parallel
        // threshold, so this exercises the sharded path.
        let scan = RedundantShare::new(&set, k).unwrap();
        let mut expect = Vec::new();
        scan.place_batch_into(&balls, &mut expect);
        let engine = PlacementEngine::with_threads(scan, threads);
        prop_assert_eq!(engine.place_batch(&balls), expect);
    }

    #[test]
    fn batch_reuse_never_reallocates(
        caps in capacities(),
        seed in any::<u64>(),
    ) {
        // Regression: a recycled output buffer with sufficient capacity
        // must never be reallocated, on either the scalar-batch or the
        // parallel path.
        let set = BinSet::from_capacities(caps).unwrap();
        let k = (seed as usize % set.len().min(4)) + 1;
        let strat = RedundantShare::new(&set, k).unwrap();
        let balls: Vec<u64> = (0..700u64).map(|i| seed.wrapping_add(i)).collect();
        let mut out = Vec::with_capacity(balls.len() * k);
        let cap = out.capacity();
        strat.place_batch_into(&balls, &mut out);
        prop_assert_eq!(out.capacity(), cap, "scalar batch reallocated");
        let ptr = out.as_ptr();
        let engine = PlacementEngine::with_threads(strat, 3);
        engine.place_batch_into(&balls, &mut out);
        prop_assert_eq!(out.capacity(), cap, "parallel batch reallocated");
        prop_assert_eq!(out.as_ptr(), ptr, "parallel batch moved the buffer");
    }
}
