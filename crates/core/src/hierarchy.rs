//! Failure-domain-aware placement: Redundant Share over a hierarchy.
//!
//! A documented extension beyond the paper. Real clusters group devices
//! into failure domains (racks, chassis, sites) and require that no two
//! copies of a block share a *domain*, not merely a device — otherwise a
//! rack-level outage takes out multiple copies at once. The CRUSH system
//! (cited as reference \[12\] in the paper) is built around exactly this.
//!
//! The construction composes the paper's own machinery twice:
//!
//! 1. an **outer** Redundant Share instance places the `k` copies on `k`
//!    *distinct domains*, each domain weighted by the sum of its devices'
//!    capacities (adjusted per Lemma 2.2, so an oversized rack is capped
//!    exactly like an oversized disk);
//! 2. an **inner** fair single-copy selection (weighted rendezvous by
//!    default) picks the device within each chosen domain.
//!
//! Fairness composes: a device's expected share is
//! `P[domain chosen] · (device weight / domain weight)`, which equals the
//! device's adjusted-capacity share. Adaptivity composes too: adding a
//! device to a rack changes only that rack's weight and its inner
//! selection; the outer scan reacts exactly like a capacity change in the
//! flat system.

use rshare_hash::{Rendezvous, SingleCopySelector};

use crate::bins::{Bin, BinId, BinSet};
use crate::error::PlacementError;
use crate::redundant_share::RedundantShare;
use crate::strategy::PlacementStrategy;

/// A device annotated with its failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainBin {
    /// The device (id + capacity).
    pub bin: Bin,
    /// Stable identifier of the failure domain (rack, site, …).
    pub domain: u64,
}

impl DomainBin {
    /// Creates a device-in-domain descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`Bin::new`]'s validation.
    pub fn new(
        device: impl Into<BinId>,
        capacity: u64,
        domain: u64,
    ) -> Result<Self, PlacementError> {
        Ok(Self {
            bin: Bin::new(device, capacity)?,
            domain,
        })
    }
}

/// Redundant Share with a no-two-copies-per-failure-domain guarantee.
///
/// # Example
///
/// ```
/// use rshare_core::{DomainBin, DomainPlacement, PlacementStrategy};
///
/// // Two racks of two devices each.
/// let devices = [
///     DomainBin::new(0u64, 1_000, 10).unwrap(),
///     DomainBin::new(1u64, 1_000, 10).unwrap(),
///     DomainBin::new(2u64, 1_000, 20).unwrap(),
///     DomainBin::new(3u64, 1_000, 20).unwrap(),
/// ];
/// let strat = DomainPlacement::new(devices, 2).unwrap();
/// let copies = strat.place(7);
/// // The two copies are in different racks, always.
/// assert_ne!(strat.domain_of(copies[0]), strat.domain_of(copies[1]));
/// ```
#[derive(Debug, Clone)]
pub struct DomainPlacement<S = Rendezvous> {
    /// Outer strategy over domains (domain ids are its bin names).
    outer: RedundantShare,
    /// Devices per domain, in the outer strategy's domain order:
    /// `(device ids, device weights)`.
    members: Vec<(Vec<u64>, Vec<f64>)>,
    /// Position of each domain id in `members`.
    domain_index: std::collections::HashMap<u64, usize>,
    /// All device ids (canonical order: by domain, then capacity).
    ids: Vec<BinId>,
    /// Domain of each device id.
    device_domain: std::collections::HashMap<BinId, u64>,
    selector: S,
    k: usize,
}

impl DomainPlacement<Rendezvous> {
    /// Builds a domain-aware placement for `k` copies with the default
    /// inner selector.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if fewer than `k` distinct domains
    ///   exist (the domain-disjointness requirement is unsatisfiable).
    /// * [`PlacementError::DuplicateBin`] for duplicate device ids.
    pub fn new(
        devices: impl IntoIterator<Item = DomainBin>,
        k: usize,
    ) -> Result<Self, PlacementError> {
        Self::with_selector(devices, k, Rendezvous::new())
    }
}

impl<S: SingleCopySelector> DomainPlacement<S> {
    /// Builds a domain-aware placement with a custom inner selector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DomainPlacement::new`].
    pub fn with_selector(
        devices: impl IntoIterator<Item = DomainBin>,
        k: usize,
        selector: S,
    ) -> Result<Self, PlacementError> {
        use std::collections::BTreeMap;
        let devices: Vec<DomainBin> = devices.into_iter().collect();
        // Group by domain; capacity per domain is the member sum.
        let mut by_domain: BTreeMap<u64, Vec<Bin>> = BTreeMap::new();
        for d in &devices {
            by_domain.entry(d.domain).or_default().push(d.bin);
        }
        // Validate device-id uniqueness across the whole system.
        let mut all_ids: Vec<BinId> = devices.iter().map(|d| d.bin.id()).collect();
        all_ids.sort();
        for w in all_ids.windows(2) {
            if w[0] == w[1] {
                return Err(PlacementError::DuplicateBin { id: w[0].raw() });
            }
        }
        let domain_bins = by_domain
            .iter()
            .map(|(&domain, members)| {
                Bin::new(domain, members.iter().map(Bin::capacity).sum::<u64>())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let outer_set = BinSet::new(domain_bins)?;
        let outer = RedundantShare::new(&outer_set, k)?;
        // Members aligned with the OUTER strategy's canonical order.
        let mut members = Vec::with_capacity(outer.bin_ids().len());
        let mut domain_index = std::collections::HashMap::new();
        let mut ids = Vec::new();
        let mut device_domain = std::collections::HashMap::new();
        for (pos, domain_id) in outer.bin_ids().iter().enumerate() {
            let mut bins = by_domain
                .get(&domain_id.raw())
                .expect("domain exists")
                .clone();
            bins.sort_by(|a, b| b.capacity().cmp(&a.capacity()).then(a.id().cmp(&b.id())));
            let names: Vec<u64> = bins.iter().map(|b| b.id().raw()).collect();
            let weights: Vec<f64> = bins.iter().map(|b| b.capacity() as f64).collect();
            for b in &bins {
                ids.push(b.id());
                device_domain.insert(b.id(), domain_id.raw());
            }
            domain_index.insert(domain_id.raw(), pos);
            members.push((names, weights));
        }
        Ok(Self {
            outer,
            members,
            domain_index,
            ids,
            device_domain,
            selector,
            k,
        })
    }

    /// The failure domain of a device, if the device is known.
    #[must_use]
    pub fn domain_of(&self, device: BinId) -> Option<u64> {
        self.device_domain.get(&device).copied()
    }

    /// The number of failure domains.
    #[must_use]
    pub fn domain_count(&self) -> usize {
        self.members.len()
    }
}

/// Domain separator for the inner (within-domain) device selection.
const INNER_DOMAIN: u64 = 0x444F_4D31; // "DOM1"

impl<S: SingleCopySelector> PlacementStrategy for DomainPlacement<S> {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        let domains = self.outer.place(ball);
        for domain in domains {
            let pos = self.domain_index[&domain.raw()];
            let (names, weights) = &self.members[pos];
            let key = rshare_hash::stable_hash2(ball, INNER_DOMAIN);
            let idx = self.selector.select(key, names, weights);
            out.push(BinId(names[idx]));
        }
    }

    fn fair_shares(&self) -> Vec<f64> {
        // Outer fair share of the domain, split within the domain by raw
        // device weight.
        let outer_shares = self.outer.fair_shares();
        let mut shares = Vec::with_capacity(self.ids.len());
        for (pos, (names, weights)) in self.members.iter().enumerate() {
            let total: f64 = weights.iter().sum();
            debug_assert_eq!(names.len(), weights.len());
            for w in weights {
                shares.push(outer_shares[pos] * w / total);
            }
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementError;

    fn rack(devices: &[(u64, u64, u64)]) -> Vec<DomainBin> {
        devices
            .iter()
            .map(|&(id, cap, dom)| DomainBin::new(id, cap, dom).unwrap())
            .collect()
    }

    #[test]
    fn copies_never_share_a_domain() {
        // 3 racks with different shapes.
        let devices = rack(&[
            (0, 500, 1),
            (1, 700, 1),
            (2, 600, 2),
            (3, 600, 2),
            (4, 900, 3),
            (5, 300, 3),
        ]);
        let strat = DomainPlacement::new(devices, 3).unwrap();
        for ball in 0..5_000u64 {
            let placed = strat.place(ball);
            assert_eq!(placed.len(), 3);
            let mut domains: Vec<u64> = placed
                .iter()
                .map(|id| strat.domain_of(*id).unwrap())
                .collect();
            domains.sort_unstable();
            domains.dedup();
            assert_eq!(domains.len(), 3, "ball {ball}: copies share a domain");
        }
    }

    #[test]
    fn fairness_composes_across_levels() {
        let devices = rack(&[
            (0, 1_000, 1),
            (1, 500, 1),
            (2, 750, 2),
            (3, 750, 2),
            (4, 1_500, 3),
        ]);
        let strat = DomainPlacement::new(devices, 2).unwrap();
        let want = strat.fair_shares();
        let shares = crate::test_util::empirical_shares(&strat, 120_000);
        for (i, (got, w)) in shares.iter().zip(&want).enumerate() {
            assert!(
                (got - w).abs() / w < 0.04,
                "device {i}: got {got:.4} want {w:.4}"
            );
        }
        // Shares sum to k.
        let sum: f64 = want.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_domains_rejected() {
        let devices = rack(&[(0, 100, 1), (1, 100, 1), (2, 100, 2)]);
        assert!(matches!(
            DomainPlacement::new(devices, 3),
            Err(PlacementError::TooFewBins { k: 3, n: 2 })
        ));
    }

    #[test]
    fn duplicate_device_ids_rejected() {
        let devices = rack(&[(0, 100, 1), (0, 100, 2)]);
        assert!(matches!(
            DomainPlacement::new(devices, 2),
            Err(PlacementError::DuplicateBin { id: 0 })
        ));
    }

    #[test]
    fn adding_a_device_to_a_rack_is_contained() {
        // Growing rack 2 by one device must not move copies placed in
        // other racks to different devices *within* those racks (the
        // inner selection hashes by device name and rack membership is
        // unchanged there). Cross-rack movement is governed by the outer
        // scan's capacity-change behaviour.
        let before = DomainPlacement::new(
            rack(&[(0, 500, 1), (1, 500, 1), (2, 500, 2), (3, 500, 2)]),
            2,
        )
        .unwrap();
        let after = DomainPlacement::new(
            rack(&[
                (0, 500, 1),
                (1, 500, 1),
                (2, 500, 2),
                (3, 500, 2),
                (9, 500, 2),
            ]),
            2,
        )
        .unwrap();
        for ball in 0..5_000u64 {
            let a = before.place(ball);
            let b = after.place(ball);
            for (x, y) in a.iter().zip(&b) {
                if x != y {
                    // Any change either involves the new device or reflects
                    // a domain-level reassignment; a same-domain swap
                    // between old devices would violate containment.
                    let same_domain = before.domain_of(*x) == after.domain_of(*y);
                    if same_domain && y.raw() != 9 {
                        panic!("ball {ball}: copy moved within an unchanged rack: {x} -> {y}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_copy_over_domains() {
        // k = 1: no disjointness constraint bites; shares still compose.
        let devices = rack(&[(0, 300, 1), (1, 100, 1), (2, 400, 2)]);
        let strat = DomainPlacement::new(devices, 1).unwrap();
        assert_eq!(strat.domain_count(), 2);
        let balls = 60_000u64;
        let mut counts = [0u64; 3];
        let mut out = Vec::new();
        for ball in 0..balls {
            strat.place_into(ball, &mut out);
            assert_eq!(out.len(), 1);
            let pos = strat.bin_ids().iter().position(|b| *b == out[0]).unwrap();
            counts[pos] += 1;
        }
        for (got, want) in counts
            .iter()
            .map(|&c| c as f64 / balls as f64)
            .zip(strat.fair_shares())
        {
            assert!((got - want).abs() / want < 0.05, "got {got} want {want}");
        }
    }

    #[test]
    fn deterministic() {
        let devices = rack(&[(0, 100, 1), (1, 200, 2), (2, 300, 3)]);
        let strat = DomainPlacement::new(devices, 2).unwrap();
        for ball in 0..500u64 {
            assert_eq!(strat.place(ball), strat.place(ball));
        }
    }
}
