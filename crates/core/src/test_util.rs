//! Helpers shared by the test modules of this crate.

use std::collections::HashMap;

use crate::bins::BinId;
use crate::strategy::PlacementStrategy;

/// Empirical per-bin placement share over balls `0..balls`, aligned with
/// [`PlacementStrategy::bin_ids`]: entry `i` is the fraction of balls that
/// put a copy on bin `i` (so the entries sum to `k`).
///
/// Tallying goes through an id → index map, O(1) per copy, instead of the
/// O(n) `position()` scan the fairness tests used to inline — at the
/// 10⁵-ball sample sizes those tests need, that scan dominated their
/// runtime.
pub(crate) fn empirical_shares(strat: &dyn PlacementStrategy, balls: u64) -> Vec<f64> {
    let index: HashMap<BinId, usize> = strat
        .bin_ids()
        .iter()
        .enumerate()
        .map(|(pos, &id)| (id, pos))
        .collect();
    let mut counts = vec![0u64; index.len()];
    let mut out = Vec::new();
    for ball in 0..balls {
        strat.place_into(ball, &mut out);
        for id in &out {
            counts[index[id]] += 1;
        }
    }
    counts.iter().map(|&c| c as f64 / balls as f64).collect()
}
