//! Exact analysis of the Redundant Share scan and the `b̂` weight correction.
//!
//! # The scan model
//!
//! Both LinMirror (Algorithm 2) and k-replication (Algorithm 4) are a single
//! left-to-right pass over the bins in descending capacity order. The pass
//! carries the number `r` of copies still to be placed (initially `k`); at
//! bin `i` it places a copy with probability
//!
//! ```text
//! θ(i, r) = min(1, r · b_i / B_i)        B_i = Σ_{j ≥ i} b_j
//! ```
//!
//! (`č_i` in the paper). When `r` drops to 1, the final copy is delegated to
//! a fair single-copy strategy (`placeOneCopy`) over the remaining suffix.
//!
//! # Why a correction is needed
//!
//! If `θ(i, r) < 1` everywhere, a simple induction (Lemma 3.4) shows every
//! bin receives exactly its fair share `k · b_i / B`. But for skewed
//! capacity distributions some suffix may contain a bin too large for it —
//! `r · b_q > B_q` — where `θ` saturates at 1 and bin `q` can no longer
//! collect its demand from scan decisions alone. The paper repairs this by
//! *favouring* bin `q` inside the `placeOneCopy` call that starts exactly at
//! `q`: its weight is replaced by an adjusted value `b̂` (Algorithm 3,
//! Equations 2–5).
//!
//! # What this module computes
//!
//! [`ScanModel`] precomputes, exactly and in closed form:
//!
//! * the saturated probabilities `θ(i, r)`,
//! * the arrival distribution `A[i][r]` of the scan (probability of reaching
//!   bin `i` with `r` copies left),
//! * the probability mass `L[s]` of `placeOneCopy` calls whose suffix starts
//!   at bin `s`, and
//! * per-suffix head weights `b̂_s` chosen so that **every** bin's expected
//!   number of copies equals its fair share. For k = 2 this reproduces the
//!   paper's Equations 2–5 (see [`closed_form_boost_k2`] and the test that
//!   cross-checks both); for larger `k` it generalises them, implementing
//!   the paper's remark that `b̂` "can be calculated similar to b̂ for
//!   k = 2".
//!
//! The calibration is a one-time `O(k · n + n²)` cost at construction; the
//! per-ball placement stays `O(n)` (or `O(k)` for the precomputed variant).

/// Tolerance for treating an expected-share deviation as zero.
const EPS: f64 = 1e-12;

/// Precomputed scan probabilities and corrected suffix head weights.
#[derive(Debug, Clone)]
pub(crate) struct ScanModel {
    /// Replication degree `k`.
    pub k: usize,
    /// Adjusted capacities (Lemma 2.2), descending.
    pub weights: Vec<f64>,
    /// `suffix[i] = Σ_{j ≥ i} weights[j]`; one extra trailing 0 entry.
    pub suffix: Vec<f64>,
    /// `θ(i, r)` for `r ∈ {2, …, k}`, flattened row-major into one
    /// contiguous buffer: row `r - 2` holds the `n` values for level `r`
    /// (empty for k < 2). Contiguity keeps the placement hot loop on a
    /// single streaming read instead of chasing one `Vec` per level.
    pub theta: Vec<f64>,
    /// `sat_cut[r - 2]`: start of the maximal *saturated suffix* at scan
    /// level `r` — every `i ≥ sat_cut[r-2]` has effective θ(i, r) ≥ 1, so
    /// the scan takes those bins unconditionally, without hashing. Always
    /// `≤ n - r` (the forced-take state), hence also subsumes the
    /// structural guard. Recomputed after calibration, which can move θ
    /// values across the saturation boundary.
    pub sat_cut: Vec<usize>,
    /// `head_boost[s]`: weight to use for bin `s` when it heads a
    /// `placeOneCopy` suffix (`b̂_s`; equals `weights[s]` when no correction
    /// is needed).
    pub head_boost: Vec<f64>,
    /// Largest residual |expected − fair| share left after calibration;
    /// zero (up to float noise) whenever the correction can be exact.
    pub max_residual: f64,
}

impl ScanModel {
    /// Builds the model for adjusted weights (descending) and `k ≥ 1`.
    pub fn new(weights: Vec<f64>, k: usize) -> Self {
        let n = weights.len();
        debug_assert!(k >= 1 && n >= k);
        debug_assert!(weights.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + weights[i];
        }
        let mut theta = Vec::with_capacity(n * k.saturating_sub(1));
        for r in 2..=k {
            theta.extend((0..n).map(|i| (r as f64 * weights[i] / suffix[i]).min(1.0)));
        }
        let mut model = Self {
            k,
            weights,
            suffix,
            theta,
            sat_cut: Vec::new(),
            head_boost: Vec::new(),
            max_residual: 0.0,
        };
        model.calibrate();
        model.recompute_saturation_cutoffs();
        model
    }

    /// Index of `θ(i, r)` in the flattened buffer.
    #[inline]
    fn theta_idx(&self, i: usize, r: usize) -> usize {
        (r - 2) * self.weights.len() + i
    }

    /// `θ(i, r)`; only defined for `2 ≤ r ≤ k`.
    #[inline]
    pub fn theta(&self, i: usize, r: usize) -> f64 {
        self.theta[self.theta_idx(i, r)]
    }

    /// The contiguous `θ(·, r)` row for scan level `r`; only defined for
    /// `2 ≤ r ≤ k`. Lets hot loops stream one slice instead of indexing.
    #[inline]
    pub fn theta_row(&self, r: usize) -> &[f64] {
        let n = self.weights.len();
        &self.theta[(r - 2) * n..(r - 1) * n]
    }

    /// Start of the maximal saturated suffix at level `r`: every bin at or
    /// beyond this index is taken unconditionally by the scan.
    #[inline]
    pub fn saturation_cut(&self, r: usize) -> usize {
        self.sat_cut[r - 2]
    }

    /// Recomputes [`ScanModel::sat_cut`] from the current θ buffer. The
    /// scan at level `r` never moves past bin `n - r` (the forced-take
    /// state), so the cutoff scans leftwards from there.
    fn recompute_saturation_cutoffs(&mut self) {
        let n = self.weights.len();
        self.sat_cut = (2..=self.k)
            .map(|r| {
                let mut cut = n - r;
                while cut > 0 && self.theta[self.theta_idx(cut - 1, r)] >= 1.0 {
                    cut -= 1;
                }
                cut
            })
            .collect();
    }

    /// `θ(i, r)` with the structural forced-take guard: once only `r` bins
    /// remain the scan must take all of them, independent of the stored
    /// probability (which is 1 mathematically but may round below it).
    #[inline]
    pub fn effective_theta(&self, i: usize, r: usize) -> f64 {
        if self.weights.len() - i == r {
            1.0
        } else {
            self.theta(i, r)
        }
    }

    /// Probability that the scan arrives at bin `i` with `r` copies left,
    /// as the dense matrix `A[i][r]` (indexed `[i][r - 2]`), plus the
    /// `placeOneCopy` start-mass vector `L[s]`.
    fn arrival(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = self.weights.len();
        let levels = self.k.saturating_sub(1); // r ∈ {2..k}
        let mut a = vec![vec![0.0; levels]; n];
        let mut last_copy_mass = vec![0.0; n];
        if self.k == 1 {
            // Degenerate: the entire placement is one placeOneCopy call
            // over the full bin list.
            last_copy_mass[0] = 1.0;
            return (a, last_copy_mass);
        }
        a[0][self.k - 2] = 1.0;
        for i in 0..n {
            for r in (2..=self.k).rev() {
                let mass = a[i][r - 2];
                if mass == 0.0 {
                    continue;
                }
                let take = mass * self.effective_theta(i, r);
                let skip = mass - take;
                if r == 2 {
                    if i + 1 < n {
                        last_copy_mass[i + 1] += take;
                    }
                } else if i + 1 < n {
                    a[i + 1][r - 3] += take;
                }
                if i + 1 < n {
                    a[i + 1][r - 2] += skip;
                }
            }
        }
        (a, last_copy_mass)
    }

    /// Calibrates the model so that every bin's expected copy count equals
    /// its fair share `k · w_i / W`.
    ///
    /// Two kinds of knobs are available, mirroring the paper's corrections:
    ///
    /// 1. the head weight `b̂_s` of the `placeOneCopy` call whose suffix
    ///    starts at `s` (Algorithm 3 / Equations 2–5), and
    /// 2. the take probability `θ(s, r)` at an *unsaturated* scan state —
    ///    the effect of Algorithm 4's lines 11–13, which replace the head
    ///    weight of the suffix passed into the recursion and thereby change
    ///    exactly that state's take probability.
    ///
    /// Bins are processed left to right: the knobs at bin `s` only
    /// influence bins `≥ s`, so each bin can be driven onto its target
    /// without disturbing earlier ones. For k = 2 the result coincides with
    /// the paper's closed-form `b̂` (see [`closed_form_boost_k2`] and its
    /// cross-check test).
    #[allow(clippy::needless_range_loop)] // indices couple several arrays
    fn calibrate(&mut self) {
        let n = self.weights.len();
        self.head_boost = self.weights.clone();
        let total = self.suffix[0];
        let mut residual: f64 = 0.0;
        for s in 0..n {
            // Recompute flows with all knobs < s final (knobs at s only
            // affect bins ≥ s, so this is O(n) passes of an O(n·k) DP).
            let (arrivals, last_mass) = self.arrival();
            let target = self.k as f64 * self.weights[s] / total;
            // Current supply of bin s.
            let mut supply = 0.0;
            for r in 2..=self.k {
                supply += arrivals[s][r - 2] * self.effective_theta(s, r);
            }
            for s2 in 0..=s {
                if last_mass[s2] == 0.0 {
                    continue;
                }
                let denom = self.head_boost_eff(s2) + self.suffix[s2 + 1];
                let w = if s2 == s {
                    self.head_boost_eff(s2)
                } else {
                    self.weights[s]
                };
                supply += last_mass[s2] * w / denom;
            }
            let mut delta = target - supply;
            if delta.abs() < EPS * self.k as f64 {
                continue;
            }
            // Knob 1: the placeOneCopy head weight for the suffix at s.
            let tail = self.suffix[s + 1];
            if last_mass[s] > 0.0 && tail > 0.0 {
                let current =
                    last_mass[s] * self.head_boost_eff(s) / (self.head_boost_eff(s) + tail);
                let desired = (current + delta).clamp(0.0, last_mass[s]);
                if desired >= last_mass[s] * (1.0 - EPS) {
                    self.head_boost[s] = f64::INFINITY;
                } else {
                    self.head_boost[s] = desired * tail / (last_mass[s] - desired);
                }
                let achieved =
                    last_mass[s] * self.head_boost_eff(s) / (self.head_boost_eff(s) + tail);
                delta -= achieved - current;
            }
            // Knob 2: take probabilities at unforced scan states of bin s.
            if delta.abs() >= EPS * self.k as f64 {
                for r in 2..=self.k {
                    if n - s == r {
                        // Forced take: the probability is structurally 1.
                        continue;
                    }
                    let mass = arrivals[s][r - 2];
                    if mass <= 0.0 {
                        continue;
                    }
                    let old = self.theta(s, r);
                    let new = (old + delta / mass).clamp(0.0, 1.0);
                    let idx = self.theta_idx(s, r);
                    self.theta[idx] = new;
                    delta -= (new - old) * mass;
                    if delta.abs() < EPS * self.k as f64 {
                        break;
                    }
                }
            }
            residual = residual.max(delta.abs());
        }
        self.max_residual = residual;
    }

    /// Expected per-ball copy count for every bin under the calibrated
    /// model. Used by tests and the analysis-facing API; should equal
    /// `k · w_i / W` componentwise up to `max_residual`.
    #[allow(clippy::needless_range_loop)] // indices couple several arrays
    pub fn expected_shares(&self) -> Vec<f64> {
        let n = self.weights.len();
        let (arrivals, last_mass) = self.arrival();
        let mut shares = vec![0.0; n];
        for i in 0..n {
            for r in 2..=self.k {
                shares[i] += arrivals[i][r - 2] * self.effective_theta(i, r);
            }
        }
        for s in 0..n {
            if last_mass[s] == 0.0 {
                continue;
            }
            let denom = self.head_boost_eff(s) + self.suffix[s + 1];
            for i in s..n {
                let w = if i == s {
                    self.head_boost_eff(s)
                } else {
                    self.weights[i]
                };
                shares[i] += last_mass[s] * w / denom;
            }
        }
        shares
    }

    /// The analytic distribution of copy index `t` (0-based) over the
    /// bins: `P[copy t of a ball lands on bin i]`. Each row sums to 1;
    /// summing rows over `t` recovers [`ScanModel::expected_shares`].
    ///
    /// Copy `t < k-1` is placed by the scan at level `r = k - t`; the last
    /// copy comes from the `placeOneCopy` suffix calls.
    #[allow(clippy::needless_range_loop)] // indices couple several arrays
    pub fn copy_distribution(&self, t: usize) -> Vec<f64> {
        let n = self.weights.len();
        debug_assert!(t < self.k);
        let (arrivals, last_mass) = self.arrival();
        let mut dist = vec![0.0; n];
        if t + 1 < self.k || self.k == 1 && t == 0 {
            if self.k == 1 {
                // Single copy: one placeOneCopy call over everything.
                let denom = self.head_boost_eff(0) + self.suffix[1];
                for (i, d) in dist.iter_mut().enumerate() {
                    let w = if i == 0 {
                        self.head_boost_eff(0)
                    } else {
                        self.weights[i]
                    };
                    *d = last_mass[0] * w / denom;
                }
                return dist;
            }
            let r = self.k - t;
            for (i, d) in dist.iter_mut().enumerate() {
                *d = arrivals[i][r - 2] * self.effective_theta(i, r);
            }
        } else {
            // Last copy: the suffix calls.
            for s in 0..n {
                if last_mass[s] == 0.0 {
                    continue;
                }
                let denom = self.head_boost_eff(s) + self.suffix[s + 1];
                for i in s..n {
                    let w = if i == s {
                        self.head_boost_eff(s)
                    } else {
                        self.weights[i]
                    };
                    dist[i] += last_mass[s] * w / denom;
                }
            }
        }
        dist
    }

    /// `head_boost[s]` with infinities replaced by a large finite surrogate
    /// for share computation.
    fn head_boost_eff(&self, s: usize) -> f64 {
        let b = self.head_boost[s];
        if b.is_finite() {
            b
        } else {
            self.suffix[0] * 1e12
        }
    }
}

/// The closed-form `b̂` of Algorithm 3 / Equations 2–5 for k = 2.
///
/// Given adjusted weights (descending), finds the first index `q` where
/// `2 · b_q > B_q` and evaluates the paper's formulas:
///
/// ```text
/// s̃_q = Σ_{j ≤ q-2} č_j · (b_q / Σ_{l > j} b_l) · Π_{o < j} (1 - č_o)   (Eq. 2)
/// p_q = Π_{o < q} (1 - č_o)                                            (Eq. 3)
/// s_q = 2 c_q − s̃_q − p_q                                              (Eq. 4)
/// b̂   = s_q · T / (P − s_q)                                            (Eq. 5)
/// ```
///
/// with `T = Σ_{l > q} b_l` and `P = č_{q-1} · Π_{j < q-1} (1 - č_j)` the
/// probability that the primary lands on bin `q - 1`. Returns
/// `Some((q, b̂))`, or `None` when no saturation occurs (no correction
/// needed). Used to cross-validate the general calibration of
/// [`ScanModel`].
#[cfg_attr(not(any(test, debug_assertions)), allow(dead_code))]
pub(crate) fn closed_form_boost_k2(weights: &[f64]) -> Option<(usize, f64)> {
    let n = weights.len();
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + weights[i];
    }
    let total = suffix[0];
    let theta: Vec<f64> = (0..n)
        .map(|i| (2.0 * weights[i] / suffix[i]).min(1.0))
        .collect();
    let q = (0..n).find(|&i| 2.0 * weights[i] > suffix[i] * (1.0 + 1e-15))?;
    if q == 0 || q + 1 >= n {
        // q = 0 cannot occur after capacity adjustment; q = n-1 needs no
        // correction (single-bin suffixes are trivially exact).
        return None;
    }
    // Eq. 2: secondaries already promised to q by primaries at j ≤ q-2.
    let mut reach = 1.0; // Π_{o<j}(1-č_o)
    let mut s_tilde = 0.0;
    for j in 0..q.saturating_sub(1) {
        s_tilde += theta[j] * (weights[q] / suffix[j + 1]) * reach;
        reach *= 1.0 - theta[j];
    }
    // After the loop, `reach` = Π_{o < q-1}(1-č_o).
    let p_primary_qm1 = theta[q - 1] * reach;
    // Eq. 3: maximum primary mass for q.
    let p_q = reach * (1.0 - theta[q - 1]);
    // Eq. 4: secondaries needed from primaries at q-1.
    let s_q = 2.0 * weights[q] / total - s_tilde - p_q;
    let tail = suffix[q + 1];
    // Eq. 5.
    if s_q <= 0.0 || s_q >= p_primary_qm1 {
        return Some((q, if s_q <= 0.0 { 0.0 } else { f64::INFINITY }));
    }
    Some((q, s_q * tail / (p_primary_qm1 - s_q)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fair_targets(weights: &[f64], k: usize) -> Vec<f64> {
        let total: f64 = weights.iter().sum();
        weights.iter().map(|w| k as f64 * w / total).collect()
    }

    #[test]
    fn expected_shares_exact_without_saturation() {
        // No θ saturates: (4, 3, 2, 1) with k = 2 — 2·4 = 8 ≤ 10.
        let w = vec![4.0, 3.0, 2.0, 1.0];
        let m = ScanModel::new(w.clone(), 2);
        assert!(m.max_residual < 1e-9, "residual {}", m.max_residual);
        let shares = m.expected_shares();
        for (s, t) in shares.iter().zip(fair_targets(&w, 2)) {
            assert!((s - t).abs() < 1e-9, "share {s} target {t}");
        }
    }

    #[test]
    fn expected_shares_exact_with_saturation() {
        // (4, 4, 4, 1): suffix (4, 4, 1) saturates at its head for k = 2.
        let w = vec![4.0, 4.0, 4.0, 1.0];
        let m = ScanModel::new(w.clone(), 2);
        assert!(m.max_residual < 1e-9, "residual {}", m.max_residual);
        let shares = m.expected_shares();
        for (i, (s, t)) in shares.iter().zip(fair_targets(&w, 2)).enumerate() {
            assert!((s - t).abs() < 1e-9, "bin {i}: share {s} target {t}");
        }
    }

    #[test]
    fn calibration_matches_closed_form_k2() {
        // The worked example from the design notes: (4, 4, 4, 1) has q = 2
        // and b̂ = 7 by Equations 2–5.
        let w = vec![4.0, 4.0, 4.0, 1.0];
        let (q, boost) = closed_form_boost_k2(&w).expect("saturation expected");
        assert_eq!(q, 2);
        assert!((boost - 7.0).abs() < 1e-9, "closed-form b̂ = {boost}");
        let m = ScanModel::new(w, 2);
        assert!(
            (m.head_boost[q] - boost).abs() < 1e-9,
            "calibrated {} vs closed-form {boost}",
            m.head_boost[q]
        );
    }

    #[test]
    fn closed_form_boost_on_tail_saturation() {
        // (4, 3, 2, 1): the suffix (2, 1) saturates (2·2 > 3) at q = 2. The
        // θ value at bin 1 is exactly 1, so the proportional share already
        // meets bin 2's demand and the formula returns the identity boost
        // b̂ = b_2 — a useful consistency check of Equations 2–5.
        let (q, boost) = closed_form_boost_k2(&[4.0, 3.0, 2.0, 1.0]).unwrap();
        assert_eq!(q, 2);
        assert!((boost - 2.0).abs() < 1e-9, "b̂ = {boost}");
    }

    #[test]
    fn closed_form_none_when_only_last_bin_saturates() {
        // Equal weights: every suffix is feasible except the trivial
        // single-bin one, which needs no correction.
        assert!(closed_form_boost_k2(&[1.0, 1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn k3_shares_exact_on_skewed_weights() {
        // Adjusted weights from (100, 100, 10, 1) with k = 3.
        let w = vec![11.0, 11.0, 10.0, 1.0];
        let m = ScanModel::new(w.clone(), 3);
        assert!(m.max_residual < 1e-9, "residual {}", m.max_residual);
        let shares = m.expected_shares();
        for (i, (s, t)) in shares.iter().zip(fair_targets(&w, 3)).enumerate() {
            assert!((s - t).abs() < 1e-9, "bin {i}: share {s} target {t}");
        }
    }

    #[test]
    fn k1_is_pure_place_one_copy() {
        let m = ScanModel::new(vec![3.0, 2.0, 1.0], 1);
        let shares = m.expected_shares();
        for (s, t) in shares.iter().zip(fair_targets(&[3.0, 2.0, 1.0], 1)) {
            assert!((s - t).abs() < 1e-9);
        }
    }

    #[test]
    fn shares_sum_to_k() {
        for k in 1..=4usize {
            let w = vec![8.0, 5.0, 5.0, 4.0, 2.0, 1.0];
            let m = ScanModel::new(w, k);
            let sum: f64 = m.expected_shares().iter().sum();
            assert!((sum - k as f64).abs() < 1e-9, "k={k} sum={sum}");
        }
    }

    #[test]
    fn copy_distributions_partition_the_shares() {
        for k in 1..=4usize {
            let w = vec![8.0, 5.0, 5.0, 4.0, 2.0, 1.0];
            let m = ScanModel::new(w, k);
            let mut sum = [0.0; 6];
            for t in 0..k {
                let dist = m.copy_distribution(t);
                let total: f64 = dist.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "k={k} t={t} total={total}");
                for (acc, d) in sum.iter_mut().zip(&dist) {
                    *acc += d;
                }
            }
            for (a, b) in sum.iter().zip(m.expected_shares()) {
                assert!((a - b).abs() < 1e-9, "k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn primary_copies_favor_big_bins() {
        let m = ScanModel::new(vec![4.0, 3.0, 2.0, 1.0], 2);
        let primary = m.copy_distribution(0);
        let secondary = m.copy_distribution(1);
        // The scan takes big bins first: the biggest bin's primary share
        // exceeds its secondary share, and vice versa for the smallest.
        assert!(primary[0] > secondary[0]);
        assert!(primary[3] < secondary[3]);
    }

    #[test]
    fn random_weight_vectors_calibrate_exactly() {
        // Pseudo-random (but deterministic) capacity vectors, adjusted via
        // Lemma 2.2, must always calibrate with negligible residual.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..50 {
            let n = 3 + (next() % 10) as usize;
            let k = 2 + (next() % 3) as usize;
            if k > n {
                continue;
            }
            let mut caps: Vec<u64> = (0..n).map(|_| 1 + next() % 1000).collect();
            caps.sort_unstable_by(|a, b| b.cmp(a));
            let w = crate::capacity::optimal_weights(&caps, k);
            let m = ScanModel::new(w.clone(), k);
            assert!(
                m.max_residual < 1e-6,
                "trial {trial}: residual {} for caps {caps:?} k={k}",
                m.max_residual
            );
            let shares = m.expected_shares();
            let targets = fair_targets(&w, k);
            for (i, (s, t)) in shares.iter().zip(&targets).enumerate() {
                assert!(
                    (s - t).abs() < 1e-6,
                    "trial {trial} bin {i}: share {s} target {t} caps {caps:?} k={k}"
                );
            }
        }
    }
}
