//! Systematic probability-proportional-to-size sampling as a fairness oracle.
//!
//! Not part of the paper: this is an auxiliary strategy with *provably
//! exact* inclusion probabilities, used to cross-validate the Redundant
//! Share implementation and as an ablation point in the benchmarks.
//!
//! The bins are laid out as consecutive intervals of length `b'_i` (adjusted
//! capacities) on a segment of total length `W`. For each ball a single
//! uniform offset `u ∈ [0, W/k)` is drawn and the `k` points
//! `u, u + W/k, …, u + (k-1)·W/k` select the bins containing them. Because
//! the Lemma 2.2 adjustment guarantees `b'_i ≤ W/k`, no bin can contain two
//! points, so redundancy holds; and every bin's inclusion probability is
//! exactly `k · b'_i / W` — perfect fairness by construction.
//!
//! The price is adaptivity: a membership change shifts the interval layout
//! of *every* bin after the insertion point, moving far more copies than
//! Redundant Share does. The adaptivity benches quantify exactly that
//! trade-off, which motivates the paper's more involved construction.

use rshare_hash::{stable_hash2, unit_f64};

use crate::bins::{BinId, BinSet};
use crate::capacity::optimal_weights;
use crate::error::PlacementError;
use crate::strategy::PlacementStrategy;

const PPS_DOMAIN: u64 = 0x5050_5331; // "PPS1"

/// Systematic PPS sampling placement: exactly fair, poorly adaptive.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, PlacementStrategy, SystematicPps};
///
/// let bins = BinSet::from_capacities([300, 200, 100]).unwrap();
/// let pps = SystematicPps::new(&bins, 2).unwrap();
/// let copies = pps.place(123);
/// assert_eq!(copies.len(), 2);
/// assert_ne!(copies[0], copies[1]);
/// ```
#[derive(Debug, Clone)]
pub struct SystematicPps {
    ids: Vec<BinId>,
    /// Cumulative adjusted weights; `cum[i]` is the end of bin i's interval.
    cum: Vec<f64>,
    k: usize,
    stride: f64,
}

impl SystematicPps {
    /// Builds the oracle strategy for `k` copies over `bins`.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if `k` exceeds the number of bins.
    pub fn new(bins: &BinSet, k: usize) -> Result<Self, PlacementError> {
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        if k > bins.len() {
            return Err(PlacementError::TooFewBins { k, n: bins.len() });
        }
        let capacities: Vec<u64> = bins.bins().iter().map(|b| b.capacity()).collect();
        let weights = optimal_weights(&capacities, k);
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        let stride = acc / k as f64;
        Ok(Self {
            ids: bins.bins().iter().map(|b| b.id()).collect(),
            cum,
            k,
            stride,
        })
    }
}

impl PlacementStrategy for SystematicPps {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        let offset = unit_f64(stable_hash2(ball, PPS_DOMAIN)) * self.stride;
        let mut prev = usize::MAX;
        for j in 0..self.k {
            let point = offset + j as f64 * self.stride;
            let mut idx = self.cum.partition_point(|&c| c <= point);
            if idx >= self.cum.len() {
                idx = self.cum.len() - 1;
            }
            // Floating-point defence: a bin whose width equals the stride
            // exactly could collect two points after rounding; step past it.
            if idx == prev {
                idx += 1;
            }
            prev = idx;
            out.push(self.ids[idx]);
        }
    }

    fn fair_shares(&self) -> Vec<f64> {
        let total = *self.cum.last().expect("non-empty");
        let mut shares = Vec::with_capacity(self.cum.len());
        let mut prev = 0.0;
        for &c in &self.cum {
            shares.push(self.k as f64 * (c - prev) / total);
            prev = c;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fairness() {
        let bins = BinSet::from_capacities([500, 400, 300, 200, 100]).unwrap();
        let pps = SystematicPps::new(&bins, 2).unwrap();
        let want = pps.fair_shares();
        let shares = crate::test_util::empirical_shares(&pps, 200_000);
        for (i, (got, w)) in shares.iter().zip(&want).enumerate() {
            assert!(
                (got - w).abs() / w < 0.02,
                "bin {i}: got {got:.4} want {w:.4}"
            );
        }
    }

    #[test]
    fn distinct_copies_even_at_k_equals_n() {
        let bins = BinSet::from_capacities([10, 10, 10]).unwrap();
        let pps = SystematicPps::new(&bins, 3).unwrap();
        for ball in 0..2_000u64 {
            let placed = pps.place(ball);
            let mut uniq = placed.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "ball {ball}: {placed:?}");
        }
    }

    #[test]
    fn dominant_bin_on_every_ball() {
        let bins = BinSet::from_capacities([1_000, 100, 100]).unwrap();
        let pps = SystematicPps::new(&bins, 2).unwrap();
        let big = pps.bin_ids()[0];
        for ball in 0..5_000u64 {
            assert!(pps.place(ball).contains(&big));
        }
    }

    #[test]
    fn errors() {
        let bins = BinSet::from_capacities([10, 10]).unwrap();
        assert!(SystematicPps::new(&bins, 0).is_err());
        assert!(SystematicPps::new(&bins, 3).is_err());
    }
}
