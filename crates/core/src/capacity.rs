//! Capacity efficiency theory (Section 2.1 of the paper).
//!
//! * **Lemma 2.1** — a system of bins with capacities `b_0 ≥ … ≥ b_{n-1}`
//!   admits a perfectly fair, capacity-efficient k-replication scheme iff
//!   `k · b_0 ≤ B` where `B = Σ b_i`. ([`is_capacity_efficient`])
//! * **Lemma 2.2 / Algorithm 1** — if the condition fails, the maximum
//!   number of storable balls is `B_max = Σ b'_i / k` with *adjusted
//!   capacities* `b'` obtained by recursively capping the largest bin at
//!   `1/(k-1)` of the (recursively adjusted) rest. ([`optimal_weights`],
//!   [`max_balls`])
//! * The constructive proof of Lemma 2.1 — repeatedly placing one ball on
//!   the `k` bins with the largest remaining capacity — is implemented in
//!   [`greedy_pack`] and doubles as an optimality oracle in tests and in the
//!   capacity-efficiency table experiment.

/// Returns `true` iff the capacities admit a capacity-efficient
/// k-replication scheme (Lemma 2.1: `k · max_i b_i ≤ Σ b_i`).
///
/// The slice does not need to be sorted.
///
/// # Example
///
/// ```
/// use rshare_core::capacity::is_capacity_efficient;
///
/// // Figure 1's system: one bin with twice the capacity of the others.
/// assert!(is_capacity_efficient(&[2, 1, 1], 2));
/// // A dominant bin cannot be fully used with k = 2:
/// assert!(!is_capacity_efficient(&[10, 1, 1], 2));
/// ```
#[must_use]
pub fn is_capacity_efficient(capacities: &[u64], k: usize) -> bool {
    if capacities.is_empty() || k == 0 {
        return false;
    }
    let max = *capacities.iter().max().expect("non-empty");
    let total: u64 = capacities.iter().sum();
    (k as u64).saturating_mul(max) <= total
}

/// Computes the adjusted capacities `b'` of Lemma 2.2 via Algorithm 1.
///
/// Input capacities must be sorted in descending order (the canonical order
/// of [`crate::BinSet`]). The returned vector satisfies, for every suffix
/// considered by the recursion, the feasibility condition of Lemma 2.1, so
/// a perfectly fair placement of `⌊Σ b'_i / k⌋` balls exists. Unadjusted
/// bins keep their exact integer capacity; adjusted ones may become
/// fractional.
///
/// Runs in `O(k · n)` like the paper's Algorithm 1 (each recursion level
/// decrements `k` and drops the head bin).
///
/// # Panics
///
/// Panics if `capacities` is empty, unsorted, or `k == 0`; the public
/// strategy constructors validate these conditions beforehand.
///
/// # Example
///
/// ```
/// use rshare_core::capacity::optimal_weights;
///
/// // A bin that dominates the system gets capped to the sum of the rest
/// // for k = 2 mirroring:
/// let w = optimal_weights(&[10, 3, 2], 2);
/// assert_eq!(w, vec![5.0, 3.0, 2.0]);
/// ```
#[must_use]
pub fn optimal_weights(capacities: &[u64], k: usize) -> Vec<f64> {
    assert!(!capacities.is_empty(), "no capacities given");
    assert!(k >= 1, "replication degree must be at least 1");
    assert!(
        capacities.windows(2).all(|w| w[0] >= w[1]),
        "capacities must be sorted in descending order"
    );
    let mut weights: Vec<f64> = capacities.iter().map(|&c| c as f64).collect();
    adjust(&mut weights, k);
    weights
}

/// The recursion of Algorithm 1: cap the head at `Σ tail / (k-1)` after
/// adjusting the tail for `k-1` copies.
fn adjust(weights: &mut [f64], k: usize) {
    if k <= 1 || weights.len() <= 1 {
        return;
    }
    let tail_sum: f64 = weights[1..].iter().sum();
    if weights[0] * (k as f64 - 1.0) > tail_sum {
        adjust(&mut weights[1..], k - 1);
        let adjusted_tail: f64 = weights[1..].iter().sum();
        weights[0] = adjusted_tail / (k as f64 - 1.0);
    }
}

/// The maximum number of balls storable with k-replication (Lemma 2.2):
/// `B_max = ⌊Σ b'_i / k⌋`.
///
/// Input must be sorted in descending order.
///
/// # Example
///
/// ```
/// use rshare_core::capacity::max_balls;
///
/// // (2,1,1) with k = 2 stores exactly 2 balls (4 copies).
/// assert_eq!(max_balls(&[2, 1, 1], 2), 2);
/// // A dominant bin wastes capacity: b' = (3,2,1), ⌊6/2⌋ = 3.
/// assert_eq!(max_balls(&[10, 2, 1], 2), 3);
/// ```
#[must_use]
pub fn max_balls(capacities: &[u64], k: usize) -> u64 {
    let weights = optimal_weights(capacities, k);
    let total: f64 = weights.iter().sum();
    // Guard against float drift just below an integer boundary.
    ((total / k as f64) + 1e-9).floor() as u64
}

/// The per-ball copy assignment produced by [`greedy_pack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packing {
    /// `assignments[ball][copy]` is the index (into the input capacity
    /// slice) of the bin holding that copy.
    pub assignments: Vec<Vec<usize>>,
    /// Copies placed per bin.
    pub load: Vec<u64>,
}

/// The constructive packing from the proof of Lemma 2.1: for each of `m`
/// balls, place one copy on each of the `k` bins with the largest remaining
/// capacity.
///
/// Returns `None` if the packing gets stuck before `m` balls are placed,
/// which by Lemma 2.1 cannot happen while `m ≤ max_balls(capacities, k)`;
/// tests exercise exactly that boundary.
///
/// # Example
///
/// ```
/// use rshare_core::capacity::greedy_pack;
///
/// let packing = greedy_pack(&[2, 1, 1], 2, 2).unwrap();
/// assert_eq!(packing.load, vec![2, 1, 1]);
/// ```
#[must_use]
pub fn greedy_pack(capacities: &[u64], k: usize, m: u64) -> Option<Packing> {
    if k == 0 || capacities.len() < k {
        return None;
    }
    let mut remaining: Vec<u64> = capacities.to_vec();
    let mut load = vec![0u64; capacities.len()];
    let mut assignments = Vec::with_capacity(usize::try_from(m).unwrap_or(usize::MAX));
    for _ in 0..m {
        // Indices of the k bins with the largest remaining capacity
        // (ties broken by index for determinism).
        let mut order: Vec<usize> = (0..remaining.len()).collect();
        order.sort_by(|&a, &b| remaining[b].cmp(&remaining[a]).then(a.cmp(&b)));
        let chosen: Vec<usize> = order.into_iter().take(k).collect();
        if chosen.iter().any(|&i| remaining[i] == 0) {
            return None;
        }
        for &i in &chosen {
            remaining[i] -= 1;
            load[i] += 1;
        }
        assignments.push(chosen);
    }
    Some(Packing { assignments, load })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_2_1_condition() {
        assert!(is_capacity_efficient(&[1, 1], 2));
        assert!(is_capacity_efficient(&[2, 1, 1], 2));
        assert!(!is_capacity_efficient(&[3, 1, 1], 2));
        assert!(is_capacity_efficient(&[5, 5, 5], 3));
        assert!(!is_capacity_efficient(&[6, 5, 4], 3));
        assert!(!is_capacity_efficient(&[], 2));
        assert!(!is_capacity_efficient(&[1, 1], 0));
        // k = 1 never wastes capacity.
        assert!(is_capacity_efficient(&[100, 1], 1));
    }

    #[test]
    fn weights_unchanged_when_feasible() {
        let w = optimal_weights(&[2, 1, 1], 2);
        assert_eq!(w, vec![2.0, 1.0, 1.0]);
        let w = optimal_weights(&[500, 400, 300, 200], 2);
        assert_eq!(w, vec![500.0, 400.0, 300.0, 200.0]);
        // 3·500 > 1400, so k = 3 caps the head at (400+300+200)/2 = 450.
        let w = optimal_weights(&[500, 400, 300, 200], 3);
        assert_eq!(w, vec![450.0, 400.0, 300.0, 200.0]);
    }

    #[test]
    fn head_capped_for_mirroring() {
        // 10 > 3 + 2, so the head is capped at the tail sum.
        assert_eq!(optimal_weights(&[10, 3, 2], 2), vec![5.0, 3.0, 2.0]);
    }

    #[test]
    fn recursive_cap_cascades() {
        // (100, 100, 10, 1), k = 3: head condition 2·100 > 111 triggers;
        // tail (100, 10, 1) adjusted for k = 2 caps 100 to 11; then the
        // head caps to (11 + 10 + 1) / 2 = 11.
        let w = optimal_weights(&[100, 100, 10, 1], 3);
        assert_eq!(w, vec![11.0, 11.0, 10.0, 1.0]);
        // The adjusted system satisfies Lemma 2.1 for k = 3.
        let total: f64 = w.iter().sum();
        assert!(3.0 * w[0] <= total + 1e-9);
    }

    #[test]
    fn adjusted_weights_stay_sorted_and_bounded() {
        let cases: [(&[u64], usize); 5] = [
            (&[1_000, 1, 1, 1], 2),
            (&[50, 49, 48, 1], 3),
            (&[9, 9, 9], 3),
            (&[7, 1], 2),
            (&[12, 6, 3, 2, 1], 4),
        ];
        for (caps, k) in cases {
            let w = optimal_weights(caps, k);
            for (i, (&orig, &adj)) in caps.iter().zip(&w).enumerate() {
                assert!(adj <= orig as f64 + 1e-9, "bin {i} grew: {adj} > {orig}");
                assert!(adj > 0.0);
            }
            for pair in w.windows(2) {
                assert!(pair[0] >= pair[1] - 1e-9, "unsorted after adjust: {w:?}");
            }
            let total: f64 = w.iter().sum();
            assert!(
                k as f64 * w[0] <= total + 1e-6,
                "Lemma 2.1 violated after adjustment: {w:?} k={k}"
            );
        }
    }

    #[test]
    fn max_balls_examples() {
        assert_eq!(max_balls(&[2, 1, 1], 2), 2);
        assert_eq!(max_balls(&[10, 2, 1], 2), 3);
        assert_eq!(max_balls(&[1, 1, 1], 3), 1);
        // n = k with unequal bins: all capped to the minimum.
        assert_eq!(max_balls(&[5, 3], 2), 3);
        assert_eq!(max_balls(&[9, 7, 2], 3), 2);
    }

    #[test]
    fn greedy_pack_reaches_max_balls() {
        let cases: [(&[u64], usize); 6] = [
            (&[2, 1, 1], 2),
            (&[10, 2, 1], 2),
            (&[100, 100, 10, 1], 3),
            (&[5, 4, 3, 2, 1], 2),
            (&[7, 7, 7, 7], 4),
            (&[13, 11, 5, 3, 2], 3),
        ];
        for (caps, k) in cases {
            let m = max_balls(caps, k);
            let packing = greedy_pack(caps, k, m)
                .unwrap_or_else(|| panic!("greedy pack failed for {caps:?} k={k} m={m}"));
            // Validity: every ball on k distinct bins, loads within capacity.
            for a in &packing.assignments {
                let mut sorted = a.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), k, "duplicate bin in redundancy group");
            }
            for (i, (&l, &c)) in packing.load.iter().zip(caps).enumerate() {
                assert!(l <= c, "bin {i} overfull: {l} > {c}");
            }
            let placed: u64 = packing.load.iter().sum();
            assert_eq!(placed, m * k as u64);
        }
    }

    #[test]
    fn greedy_pack_cannot_exceed_max_balls() {
        let caps: &[u64] = &[10, 2, 1];
        let k = 2;
        let m = max_balls(caps, k);
        assert!(greedy_pack(caps, k, m + 1).is_none());
    }

    #[test]
    fn greedy_pack_degenerate() {
        assert!(greedy_pack(&[1, 1], 3, 1).is_none());
        assert!(greedy_pack(&[1, 1], 0, 1).is_none());
        let p = greedy_pack(&[4, 4], 2, 0).unwrap();
        assert!(p.assignments.is_empty());
    }
}
