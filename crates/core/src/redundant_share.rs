//! Redundant Share: k-fold replication in linear time (Algorithm 4).
//!
//! The strategy scans the bins in descending capacity order carrying the
//! number `r` of copies still to place. At bin `i` it places a copy with
//! probability `č_i = min(1, r · b'_i / B_i)` driven by a hash of
//! `(ball, bin name)`; the final copy is delegated to a fair single-copy
//! strategy over the remaining suffix, with the head weight replaced by the
//! calibrated `b̂` correction where necessary (see [`crate::analysis`]).
//!
//! Properties (Section 3 of the paper):
//!
//! * **Perfect fairness** in expectation over the adjusted capacities
//!   (Lemmas 3.1/3.4) — bin `i` receives an expected `k · b'_i / Σ b'_j`
//!   share of all copies.
//! * **Redundancy** — the `k` copies always land on pairwise distinct bins,
//!   structurally: the scan index only moves right.
//! * **Adaptivity** — the scan hash depends only on `(ball, bin name)`, so
//!   membership changes leave unrelated decisions untouched; insertion or
//!   removal of a bin is `k²`-competitive (Lemma 3.5), and measured factors
//!   are far lower (Figures 3 and 5).
//! * **Copy identity** — position `i` of the result is copy `i`.

use rshare_hash::{stable_hash3, unit_f64, Rendezvous, SingleCopySelector};

use crate::analysis::ScanModel;
use crate::bins::{BinId, BinSet};
use crate::capacity::optimal_weights;
use crate::error::PlacementError;
use crate::strategy::PlacementStrategy;

/// Domain separator for the primary-scan decisions.
const SCAN_DOMAIN: u64 = 0x5244_5348_4152_4531; // "RDSHARE1"

/// The Redundant Share placement strategy for arbitrary `k ≥ 1`.
///
/// Construction adjusts the raw capacities per Lemma 2.2 (so fairness
/// targets are meaningful even for infeasible capacity vectors), saturates
/// and calibrates the scan probabilities, and precomputes suffix sums. A
/// placement query runs in `O(n)` time and performs no allocation when
/// [`RedundantShare::place_into`] is used with a recycled vector.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, PlacementStrategy, RedundantShare};
///
/// let bins = BinSet::from_capacities([500, 400, 300, 200, 100]).unwrap();
/// let strat = RedundantShare::new(&bins, 3).unwrap();
/// let copies = strat.place(0xfeed);
/// assert_eq!(copies.len(), 3);
/// // All copies on distinct bins:
/// let mut unique = copies.clone();
/// unique.sort();
/// unique.dedup();
/// assert_eq!(unique.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RedundantShare<S = Rendezvous> {
    model: ScanModel,
    ids: Vec<BinId>,
    names: Vec<u64>,
    selector: S,
}

impl RedundantShare<Rendezvous> {
    /// Builds the strategy with the default (weighted rendezvous) selector
    /// for the last copy.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if `k` exceeds the number of bins.
    pub fn new(bins: &BinSet, k: usize) -> Result<Self, PlacementError> {
        Self::with_selector(bins, k, Rendezvous::new())
    }
}

impl<S: SingleCopySelector> RedundantShare<S> {
    /// Builds the strategy with a custom `placeOneCopy` selector.
    ///
    /// Any fair single-copy strategy works (the paper names consistent
    /// hashing and Share); the overall fairness is exactly as good as the
    /// selector's.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RedundantShare::new`].
    pub fn with_selector(bins: &BinSet, k: usize, selector: S) -> Result<Self, PlacementError> {
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        if k > bins.len() {
            return Err(PlacementError::TooFewBins { k, n: bins.len() });
        }
        let capacities: Vec<u64> = bins.bins().iter().map(|b| b.capacity()).collect();
        let weights = optimal_weights(&capacities, k);
        let model = ScanModel::new(weights, k);
        let ids: Vec<BinId> = bins.bins().iter().map(|b| b.id()).collect();
        let names: Vec<u64> = ids.iter().map(|id| id.raw()).collect();
        Ok(Self {
            model,
            ids,
            names,
            selector,
        })
    }

    /// The adjusted (Lemma 2.2) capacities the strategy distributes over,
    /// in canonical order.
    #[must_use]
    pub fn adjusted_weights(&self) -> &[f64] {
        &self.model.weights
    }

    /// Largest deviation between any bin's expected share and its fair
    /// share that the calibration could not remove; zero (up to floating
    /// point noise) for capacity vectors adjusted per Lemma 2.2.
    #[must_use]
    pub fn calibration_residual(&self) -> f64 {
        self.model.max_residual
    }

    /// Approximate memory footprint of the placement state in bytes — the
    /// paper's *compactness* criterion. Grows as `O(k · n)`, independent of
    /// the number of stored balls.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        self.model.weights.len() * f
            + self.model.suffix.len() * f
            + self.model.theta.len() * f
            + self.model.sat_cut.len() * std::mem::size_of::<usize>()
            + self.model.head_boost.len() * f
            + self.ids.len() * std::mem::size_of::<BinId>()
            + self.names.len() * std::mem::size_of::<u64>()
            + self.selector.memory_bytes()
    }

    /// The exact expected number of copies of one ball each bin receives,
    /// computed analytically from the calibrated scan model (not sampled).
    ///
    /// Differs from [`PlacementStrategy::fair_shares`] by at most
    /// [`RedundantShare::calibration_residual`]; the unit tests of this
    /// crate pin the two together.
    #[must_use]
    pub fn expected_shares(&self) -> Vec<f64> {
        self.model.expected_shares()
    }

    /// The analytic distribution of copy index `t` over the bins:
    /// `P[copy t of a ball lands on bin i]`, aligned with
    /// [`PlacementStrategy::bin_ids`]. Rows sum to 1 and summing over all
    /// `t` recovers [`RedundantShare::expected_shares`].
    ///
    /// With erasure-coded redundancy groups, copy `t` *is* sub-block `t`
    /// (a data shard, a row parity, …), so this answers "which devices
    /// serve data shards and which serve parity" analytically.
    ///
    /// # Panics
    ///
    /// Panics if `t >= k`.
    #[must_use]
    pub fn copy_distribution(&self, t: usize) -> Vec<f64> {
        assert!(t < self.model.k, "copy index out of range");
        self.model.copy_distribution(t)
    }

    /// The calibrated head weight for the suffix starting at `s`
    /// (`b̂_s` in the paper). Exposed for cross-validation in tests.
    #[doc(hidden)]
    #[must_use]
    pub fn head_boost_for_test(&self, s: usize) -> f64 {
        self.model.head_boost[s]
    }

    /// The Algorithm 4 scan, emitting the `k` chosen bins in copy order.
    ///
    /// Shared by the `Vec`-filling [`PlacementStrategy::place_into`] and
    /// the stack-array [`PlacementStrategy::place_into_inline`]; the emit
    /// destination is the only difference between the two, so they are
    /// bit-identical by construction.
    fn scan_place(&self, ball: u64, mut emit: impl FnMut(BinId)) {
        let k = self.model.k;
        if k == 1 {
            emit(self.ids[self.place_last(ball, 0)]);
            return;
        }
        let mut r = k;
        let mut i = 0usize;
        let mut theta_row = self.model.theta_row(r);
        // Every bin at or beyond the cutoff has effective θ ≥ 1 — the
        // maximal saturated suffix, which also covers the forced-take
        // state where only r bins remain. Taking it without hashing keeps
        // the per-bin cost of saturated regions to a comparison.
        let mut sat_cut = self.model.saturation_cut(r);
        loop {
            let take = if i >= sat_cut {
                true
            } else {
                // Isolated saturated bins can sit left of the cutoff
                // (saturation is not contiguous in general), so the θ ≥ 1
                // fast path stays.
                let theta = theta_row[i];
                theta >= 1.0 || unit_f64(stable_hash3(ball, self.names[i], SCAN_DOMAIN)) < theta
            };
            if take {
                emit(self.ids[i]);
                r -= 1;
                if r == 1 {
                    emit(self.ids[self.place_last(ball, i + 1)]);
                    return;
                }
                theta_row = self.model.theta_row(r);
                sat_cut = self.model.saturation_cut(r);
            }
            i += 1;
        }
    }

    /// Places the last copy over the suffix starting at `start`.
    fn place_last(&self, ball: u64, start: usize) -> usize {
        let boost = self.model.head_boost[start];
        if !boost.is_finite() {
            // The calibrated head weight diverged: the head takes the
            // entire call mass.
            return start;
        }
        let idx = self.selector.select_with_head(
            ball,
            &self.names[start..],
            &self.model.weights[start..],
            boost,
        );
        start + idx
    }
}

impl<S: SingleCopySelector> PlacementStrategy for RedundantShare<S> {
    fn replication(&self) -> usize {
        self.model.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        self.scan_place(ball, |id| out.push(id));
    }

    fn place_into_inline(&self, ball: u64, out: &mut [BinId; crate::MAX_INLINE_K]) -> usize {
        let k = self.model.k;
        assert!(
            k <= crate::MAX_INLINE_K,
            "replication {k} exceeds inline capacity"
        );
        let mut n = 0usize;
        self.scan_place(ball, |id| {
            out[n] = id;
            n += 1;
        });
        n
    }

    fn fair_shares(&self) -> Vec<f64> {
        let total = self.model.suffix[0];
        self.model
            .weights
            .iter()
            .map(|w| self.model.k as f64 * w / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins(caps: &[u64]) -> BinSet {
        BinSet::from_capacities(caps.iter().copied()).unwrap()
    }

    use crate::test_util::empirical_shares;

    #[test]
    fn construction_errors() {
        let set = bins(&[10, 10]);
        assert!(matches!(
            RedundantShare::new(&set, 0),
            Err(PlacementError::ZeroReplication)
        ));
        assert!(matches!(
            RedundantShare::new(&set, 3),
            Err(PlacementError::TooFewBins { k: 3, n: 2 })
        ));
    }

    #[test]
    fn copies_are_distinct_and_ordered_by_capacity_rank() {
        let set = bins(&[500, 400, 300, 200, 100, 50]);
        for k in 1..=6 {
            let strat = RedundantShare::new(&set, k).unwrap();
            let mut out = Vec::new();
            for ball in 0..2_000u64 {
                strat.place_into(ball, &mut out);
                assert_eq!(out.len(), k);
                let mut uniq: Vec<_> = out.clone();
                uniq.sort();
                uniq.dedup();
                assert_eq!(uniq.len(), k, "duplicate bins for ball {ball} k={k}");
            }
        }
    }

    #[test]
    fn deterministic_placement() {
        let set = bins(&[9, 7, 5, 3]);
        let strat = RedundantShare::new(&set, 2).unwrap();
        for ball in 0..500u64 {
            assert_eq!(strat.place(ball), strat.place(ball));
        }
    }

    #[test]
    fn fairness_k2_heterogeneous() {
        let set = bins(&[500, 400, 300, 200, 100]);
        let strat = RedundantShare::new(&set, 2).unwrap();
        assert!(strat.calibration_residual() < 1e-9);
        let n = 200_000u64;
        let got = empirical_shares(&strat, n);
        for (i, (g, want)) in got.iter().zip(strat.fair_shares()).enumerate() {
            assert!(
                (g - want).abs() / want < 0.02,
                "bin {i}: got {g:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn fairness_k2_with_saturated_suffix() {
        // (4, 4, 4, 1) exercises the b̂ correction path.
        let set = bins(&[400, 400, 400, 100]);
        let strat = RedundantShare::new(&set, 2).unwrap();
        assert!(strat.calibration_residual() < 1e-9);
        let n = 300_000u64;
        let got = empirical_shares(&strat, n);
        for (i, (g, want)) in got.iter().zip(strat.fair_shares()).enumerate() {
            assert!(
                (g - want).abs() / want < 0.03,
                "bin {i}: got {g:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn fairness_k4() {
        let set = bins(&[800, 700, 600, 500, 400, 300, 200, 100]);
        let strat = RedundantShare::new(&set, 4).unwrap();
        assert!(strat.calibration_residual() < 1e-6);
        let n = 150_000u64;
        let got = empirical_shares(&strat, n);
        for (i, (g, want)) in got.iter().zip(strat.fair_shares()).enumerate() {
            assert!(
                (g - want).abs() / want < 0.03,
                "bin {i}: got {g:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn infeasible_capacities_use_adjusted_targets() {
        // A dominant bin: raw shares are unreachable, adjusted ones are the
        // right target (Lemma 2.2).
        let set = bins(&[1_000, 100, 100]);
        let strat = RedundantShare::new(&set, 2).unwrap();
        let w = strat.adjusted_weights();
        assert_eq!(w, &[200.0, 100.0, 100.0]);
        let n = 100_000u64;
        let got = empirical_shares(&strat, n);
        let want = strat.fair_shares();
        // The big bin must appear in *every* redundancy group: share = 1.
        assert!((want[0] - 1.0).abs() < 1e-12);
        assert!((got[0] - 1.0).abs() < 1e-3, "got {}", got[0]);
        for i in 1..3 {
            assert!((got[i] - want[i]).abs() / want[i] < 0.03);
        }
    }

    #[test]
    fn k_equals_n_takes_every_bin() {
        let set = bins(&[30, 20, 10]);
        let strat = RedundantShare::new(&set, 3).unwrap();
        for ball in 0..200u64 {
            let placed = strat.place(ball);
            assert_eq!(placed.len(), 3);
        }
    }

    #[test]
    fn homogeneous_fairness_k3() {
        let set = bins(&[100; 10]);
        let strat = RedundantShare::new(&set, 3).unwrap();
        let n = 150_000u64;
        let got = empirical_shares(&strat, n);
        for (i, g) in got.iter().enumerate() {
            assert!((g - 0.3).abs() < 0.01, "bin {i}: {g}");
        }
    }

    #[test]
    fn analytic_expected_shares_match_fair_shares() {
        for caps in [
            vec![500u64, 400, 300, 200, 100],
            vec![400, 400, 400, 100],
            vec![737, 386, 356, 331, 146, 127],
        ] {
            for k in 2..=4usize {
                let set = bins(&caps);
                let strat = RedundantShare::new(&set, k).unwrap();
                let expected = strat.expected_shares();
                let fair = strat.fair_shares();
                for (i, (e, f)) in expected.iter().zip(&fair).enumerate() {
                    assert!(
                        (e - f).abs() < 1e-6,
                        "caps {caps:?} k={k} bin {i}: analytic {e} fair {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn inline_placement_is_bit_identical() {
        let set = bins(&[737, 386, 356, 331, 146, 127, 90, 60]);
        for k in 1..=8usize {
            let strat = RedundantShare::new(&set, k).unwrap();
            let mut arr = [BinId(u64::MAX); crate::MAX_INLINE_K];
            let mut v = Vec::new();
            for ball in 0..3_000u64 {
                strat.place_into(ball, &mut v);
                let n = strat.place_into_inline(ball, &mut arr);
                assert_eq!(n, k);
                assert_eq!(&arr[..n], v.as_slice(), "ball {ball} k={k}");
            }
        }
    }

    #[test]
    fn insertion_is_low_movement() {
        // Lemma 3.2-style check: adding the biggest bin should move about
        // 2·ξ of the copies for k = 2, far below a full reshuffle.
        let old = bins(&[100, 100, 100, 100]);
        let mut grown_bins: Vec<crate::bins::Bin> = old.bins().to_vec();
        grown_bins.push(crate::bins::Bin::new(100u64, 150).unwrap());
        let new = BinSet::new(grown_bins).unwrap();
        let a = RedundantShare::new(&old, 2).unwrap();
        let b = RedundantShare::new(&new, 2).unwrap();
        let balls = 40_000u64;
        let mut moved = 0u64;
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for ball in 0..balls {
            a.place_into(ball, &mut va);
            b.place_into(ball, &mut vb);
            for (x, y) in va.iter().zip(&vb) {
                if x != y {
                    moved += 1;
                }
            }
        }
        let total_copies = balls * 2;
        let new_share = 150.0 / 550.0;
        let moved_frac = moved as f64 / total_copies as f64;
        // Optimal is `new_share`; Lemma 3.2 allows ~4x; we check it stays
        // well under a full reshuffle and above the trivial lower bound.
        assert!(moved_frac >= new_share * 0.8, "moved {moved_frac}");
        assert!(moved_frac <= new_share * 4.0, "moved {moved_frac}");
    }
}
