//! # Redundant Share — fair, redundant, adaptive data placement
//!
//! A reproduction of **Brinkmann, Effert, Meyer auf der Heide, Scheideler:
//! "Dynamic and Redundant Data Placement" (ICDCS 2007)** — the first data
//! placement strategies that, for an arbitrary set of heterogeneous storage
//! devices, are simultaneously:
//!
//! * **fair** — a device holding x% of the (usable) capacity stores x% of
//!   the data,
//! * **redundant** — no two of a block's k copies share a device,
//! * **capacity efficient** — the achievable maximum of data is stored
//!   (Lemmas 2.1/2.2 characterise that maximum),
//! * **time efficient** — `O(n)` per placement, or `O(k)` with
//!   precomputation,
//! * **compact** — placements are computed, never stored, and
//! * **adaptive** — device additions/removals move close to the minimum
//!   number of copies (Lemmas 3.2–3.5).
//!
//! ## Quick start
//!
//! ```
//! use rshare_core::{BinSet, PlacementStrategy, RedundantShare};
//!
//! // Five devices with heterogeneous capacities (in blocks).
//! let bins = BinSet::from_capacities([500_000, 600_000, 700_000, 800_000, 900_000])
//!     .unwrap();
//! // Place 3 copies of every block.
//! let strat = RedundantShare::new(&bins, 3).unwrap();
//! let copies = strat.place(0xB10C);
//! assert_eq!(copies.len(), 3);
//! ```
//!
//! ## Strategy inventory
//!
//! | Type | Paper reference | Notes |
//! |---|---|---|
//! | [`LinMirror`] | Algorithms 2 and 3 | k = 2, perfectly fair (Lemma 3.1) |
//! | [`RedundantShare`] | Algorithm 4 | any k, `O(n)` per query |
//! | [`FastRedundantShare`] | Section 3.3 | any k, `O(k)` per query |
//! | [`TrivialReplication`] | Definition 2.3 | the flawed baseline (Lemma 2.4) |
//! | [`TableBased`] | Section 1 (rejected design) | explicit table; optimal-movement adversary |
//! | [`DomainPlacement`] | extension (CRUSH-style) | no two copies per failure domain |
//! | [`SystematicPps`] | — | exact-fairness oracle for validation |
//!
//! The capacity theory of Section 2 lives in [`capacity`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod bins;
pub mod capacity;
mod engine;
mod error;
mod fast;
mod hierarchy;
mod linmirror;
mod pps;
mod redundant_share;
mod strategy;
mod table_based;
#[cfg(test)]
mod test_util;
mod trivial;

pub use bins::{Bin, BinId, BinSet};
pub use engine::PlacementEngine;
pub use error::PlacementError;
pub use fast::{FastRedundantShare, RebuildStats};
pub use hierarchy::{DomainBin, DomainPlacement};
pub use linmirror::LinMirror;
pub use pps::SystematicPps;
pub use redundant_share::RedundantShare;
pub use strategy::{PlacementStrategy, MAX_INLINE_K};
pub use table_based::{RebalanceReport, TableBased};
pub use trivial::TrivialReplication;
