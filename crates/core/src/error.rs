//! Error types for placement construction and queries.

/// Errors arising when building bin sets or placement strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The bin set contains no bins.
    EmptySystem,
    /// A bin was declared with zero capacity.
    ZeroCapacity {
        /// The offending bin's stable identifier.
        id: u64,
    },
    /// Two bins share the same stable identifier.
    DuplicateBin {
        /// The duplicated identifier.
        id: u64,
    },
    /// The requested bin does not exist.
    UnknownBin {
        /// The identifier that was looked up.
        id: u64,
    },
    /// The replication degree is zero.
    ZeroReplication,
    /// More copies were requested than there are bins to hold them
    /// (`k > n` makes the redundancy property unsatisfiable).
    TooFewBins {
        /// Requested replication degree.
        k: usize,
        /// Available number of bins.
        n: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptySystem => write!(f, "the storage system contains no bins"),
            Self::ZeroCapacity { id } => write!(f, "bin {id} has zero capacity"),
            Self::DuplicateBin { id } => write!(f, "bin identifier {id} occurs twice"),
            Self::UnknownBin { id } => write!(f, "no bin with identifier {id}"),
            Self::ZeroReplication => write!(f, "replication degree k must be at least 1"),
            Self::TooFewBins { k, n } => write!(
                f,
                "cannot place {k} copies on distinct bins: only {n} bins available"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PlacementError::EmptySystem.to_string().contains("no bins"));
        assert!(PlacementError::ZeroCapacity { id: 4 }
            .to_string()
            .contains("bin 4"));
        assert!(PlacementError::DuplicateBin { id: 9 }
            .to_string()
            .contains('9'));
        assert!(PlacementError::UnknownBin { id: 2 }
            .to_string()
            .contains('2'));
        assert!(PlacementError::TooFewBins { k: 3, n: 2 }
            .to_string()
            .contains("3 copies"));
        assert!(PlacementError::ZeroReplication.to_string().contains("k"));
    }
}
