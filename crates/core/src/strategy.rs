//! The common interface of k-replica placement strategies.

use crate::bins::BinId;

/// Replication degrees up to this bound can be placed through
/// [`PlacementStrategy::place_into_inline`] into a caller-provided stack
/// array, so a read-path query performs no heap allocation at all. Covers
/// every redundancy scheme in practical use (mirrors, RAID, RS up to 8
/// total shards); wider groups fall back to the `Vec`-based path.
pub const MAX_INLINE_K: usize = 8;

/// A strategy that maps every ball to `k` pairwise-distinct bins.
///
/// Implementations must be **deterministic** (the same ball always maps to
/// the same bins — placements are recomputed, never stored) and must
/// **identify the i-th copy**: `place` returns copies in a stable order, so
/// position `i` of the result is "copy `i`" of the redundancy group. The
/// paper stresses this property because erasure codes assign different
/// meanings to different sub-blocks.
///
/// # Object safety
///
/// The trait is object safe; heterogeneous collections of strategies (as
/// used by the experiment harness) can store `Box<dyn PlacementStrategy>`.
pub trait PlacementStrategy {
    /// The replication degree `k` (number of copies per ball).
    fn replication(&self) -> usize;

    /// The bins known to the strategy, in its canonical (descending
    /// capacity) order.
    fn bin_ids(&self) -> &[BinId];

    /// Places `ball`, appending exactly `k` distinct bin ids to `out` in
    /// copy order. `out` is cleared first.
    fn place_into(&self, ball: u64, out: &mut Vec<BinId>);

    /// Places `ball`, returning the `k` distinct bins in copy order.
    fn place(&self, ball: u64) -> Vec<BinId> {
        let mut out = Vec::with_capacity(self.replication());
        self.place_into(ball, &mut out);
        out
    }

    /// Places `ball` into a caller-provided stack array, returning the
    /// number of copies written (always `k`). Only callable when
    /// `k ≤ MAX_INLINE_K`; the result occupies `out[..k]` in copy order and
    /// must be bit-identical to [`PlacementStrategy::place_into`].
    ///
    /// The default implementation routes through a temporary `Vec`;
    /// strategies whose scan is already allocation-free override it to
    /// write straight into the array, making a placement query perform no
    /// heap allocation at all — the hot path of a cache-missing block read.
    ///
    /// # Panics
    ///
    /// Panics if `self.replication() > MAX_INLINE_K`.
    fn place_into_inline(&self, ball: u64, out: &mut [BinId; MAX_INLINE_K]) -> usize {
        let k = self.replication();
        assert!(k <= MAX_INLINE_K, "replication {k} exceeds inline capacity");
        let mut buf = Vec::with_capacity(k);
        self.place_into(ball, &mut buf);
        out[..k].copy_from_slice(&buf);
        k
    }

    /// Places every ball of `balls`, writing the groups back to back into
    /// `out` with stride `k`: the copies of `balls[j]` occupy
    /// `out[j * k..(j + 1) * k]` in copy order. `out` is cleared first; a
    /// caller that recycles a vector of capacity `balls.len() * k` incurs
    /// no allocation beyond the strategy's own per-call scratch.
    ///
    /// The default runs the scalar [`PlacementStrategy::place_into`] in a
    /// loop and is what batched callers (engine shards, the read fan-out)
    /// build on; strategies with cheaper amortised batch paths may
    /// override it, but must produce identical output.
    fn place_batch_into(&self, balls: &[u64], out: &mut Vec<BinId>) {
        let k = self.replication();
        out.clear();
        out.reserve(balls.len() * k);
        let mut group = Vec::with_capacity(k);
        for &ball in balls {
            self.place_into(ball, &mut group);
            debug_assert_eq!(group.len(), k);
            out.extend_from_slice(&group);
        }
    }

    /// The expected number of copies of a single ball each bin receives
    /// (aligned with [`PlacementStrategy::bin_ids`]). For a fair strategy
    /// this is `k · b'_i / Σ b'_j` with the Lemma 2.2 adjusted capacities;
    /// the experiment harness compares empirical loads against it.
    fn fair_shares(&self) -> Vec<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl PlacementStrategy for Fixed {
        fn replication(&self) -> usize {
            2
        }
        fn bin_ids(&self) -> &[BinId] {
            const IDS: [BinId; 2] = [BinId(0), BinId(1)];
            &IDS
        }
        fn place_into(&self, _ball: u64, out: &mut Vec<BinId>) {
            out.clear();
            out.extend([BinId(0), BinId(1)]);
        }
        fn fair_shares(&self) -> Vec<f64> {
            vec![1.0, 1.0]
        }
    }

    #[test]
    fn default_place_delegates() {
        let s = Fixed;
        assert_eq!(s.place(7), vec![BinId(0), BinId(1)]);
    }

    #[test]
    fn object_safe() {
        let b: Box<dyn PlacementStrategy> = Box::new(Fixed);
        assert_eq!(b.replication(), 2);
    }

    #[test]
    fn default_inline_matches_vec_path() {
        let s = Fixed;
        let mut arr = [BinId(u64::MAX); MAX_INLINE_K];
        let n = s.place_into_inline(9, &mut arr);
        assert_eq!(n, 2);
        assert_eq!(&arr[..n], s.place(9).as_slice());
    }
}
