//! Table-based placement: the approach the paper's introduction rejects.
//!
//! "One approach to keep track of this assignment as the system evolves is
//! to use rule-based or table-based placement strategies. However,
//! table-based methods are not scalable…" (Section 1). This module
//! implements exactly that rejected design — an explicit assignment table —
//! for two reasons:
//!
//! 1. **Compactness comparison.** The table costs `Θ(m · k)` memory for
//!    `m` balls, versus the hash-based strategies' `O(n)`/`O(k · n²)`;
//!    the `table_compactness` experiment quantifies the gap the paper
//!    motivates with.
//! 2. **Optimal-adversary baseline.** A table can rebalance with the
//!    *minimum* possible number of copy movements after a capacity change
//!    — the denominator in the paper's competitiveness definition
//!    ("c-competitive … at most c times the number of copies an optimal
//!    strategy would need"). Measuring Redundant Share's movement against
//!    [`TableBased::rebalance`] yields true competitive ratios rather
//!    than proxies.

use crate::bins::{BinId, BinSet};
use crate::capacity::optimal_weights;
use crate::error::PlacementError;
use crate::strategy::PlacementStrategy;

/// Summary of a table rebalance after a configuration change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Copies moved (reassigned to a different bin).
    pub moved: u64,
    /// The structural lower bound on movement for this change: copies that
    /// were on removed bins plus the total positive quota deficit of the
    /// other bins.
    pub lower_bound: u64,
}

/// Explicit-table placement over `m` balls with `k` copies each.
///
/// Placements are stored, not computed: lookups are `O(k)`, but memory is
/// `Θ(m · k)` and every reconfiguration mutates the table. Fairness and
/// capacity efficiency are by construction (quotas follow the Lemma 2.2
/// adjusted capacities).
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, PlacementStrategy, TableBased};
///
/// let bins = BinSet::from_capacities([200, 100, 100]).unwrap();
/// let table = TableBased::new(&bins, 2, 150).unwrap();
/// let copies = table.place(42);
/// assert_eq!(copies.len(), 2);
/// assert_ne!(copies[0], copies[1]);
/// ```
#[derive(Debug, Clone)]
pub struct TableBased {
    ids: Vec<BinId>,
    k: usize,
    /// `table[ball][copy]` = index into `ids`.
    table: Vec<Vec<u32>>,
    /// Copies currently assigned to each bin.
    load: Vec<u64>,
    /// Fair per-ball share targets (adjusted capacities).
    fair: Vec<f64>,
}

impl TableBased {
    /// Builds a fair table for balls `0..m`.
    ///
    /// Quotas follow the adjusted capacities of Lemma 2.2; the initial
    /// assignment is produced ball-by-ball by always using the `k` bins
    /// with the largest remaining quota (the constructive proof of
    /// Lemma 2.1), so it is capacity efficient.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if `k` exceeds the number of bins
    ///   or the capacities cannot hold `m` balls.
    pub fn new(bins: &BinSet, k: usize, m: u64) -> Result<Self, PlacementError> {
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        let n = bins.len();
        if k > n {
            return Err(PlacementError::TooFewBins { k, n });
        }
        let capacities: Vec<u64> = bins.bins().iter().map(|b| b.capacity()).collect();
        if m > crate::capacity::max_balls(&capacities, k) {
            // The system cannot hold m balls with k distinct copies each
            // (Lemma 2.2's bound).
            return Err(PlacementError::TooFewBins { k, n });
        }
        let weights = optimal_weights(&capacities, k);
        let total: f64 = weights.iter().sum();
        let quotas = integer_quotas(&weights, m * k as u64);
        let mut remaining = quotas;
        let mut table = Vec::with_capacity(usize::try_from(m).unwrap_or(0));
        let mut load = vec![0u64; n];
        for _ in 0..m {
            // Pick the k bins with the largest remaining quota.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| remaining[b].cmp(&remaining[a]).then(a.cmp(&b)));
            let chosen = &order[..k];
            if remaining[chosen[k - 1]] == 0 {
                return Err(PlacementError::TooFewBins { k, n });
            }
            for &c in chosen {
                remaining[c] -= 1;
                load[c] += 1;
            }
            table.push(chosen.iter().map(|&c| c as u32).collect());
        }
        Ok(Self {
            ids: bins.bins().iter().map(|b| b.id()).collect(),
            k,
            table,
            load,
            fair: weights.iter().map(|w| k as f64 * w / total).collect(),
        })
    }

    /// Number of balls the table covers.
    #[must_use]
    pub fn balls(&self) -> u64 {
        self.table.len() as u64
    }

    /// Approximate memory footprint of the placement state in bytes — the
    /// compactness metric the paper's criteria list names.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * self.k * std::mem::size_of::<u32>()
            + self.ids.len() * (std::mem::size_of::<BinId>() + 8 + 8)
    }

    /// Per-bin copy counts.
    #[must_use]
    pub fn loads(&self) -> &[u64] {
        &self.load
    }

    /// Rebalances the table onto a new bin configuration with (near-)
    /// minimal copy movement.
    ///
    /// Copies on removed bins are reassigned; over-quota bins shed their
    /// surplus to under-quota bins; all reassignments respect the
    /// redundancy constraint (no two copies of a ball on one bin). The
    /// achieved movement is reported next to the structural lower bound.
    ///
    /// # Errors
    ///
    /// [`PlacementError::TooFewBins`] if the new configuration cannot hold
    /// the table's balls.
    pub fn rebalance(&mut self, bins: &BinSet) -> Result<RebalanceReport, PlacementError> {
        let n = bins.len();
        if self.k > n {
            return Err(PlacementError::TooFewBins { k: self.k, n });
        }
        let m = self.table.len() as u64;
        let capacities: Vec<u64> = bins.bins().iter().map(|b| b.capacity()).collect();
        let weights = optimal_weights(&capacities, self.k);
        let total: f64 = weights.iter().sum();
        let quotas = integer_quotas(&weights, m * self.k as u64);
        // Map old bin indices to new ones by id.
        let new_ids: Vec<BinId> = bins.bins().iter().map(|b| b.id()).collect();
        let old_to_new: Vec<Option<u32>> = self
            .ids
            .iter()
            .map(|id| new_ids.iter().position(|x| x == id).map(|p| p as u32))
            .collect();
        // Re-express the table in new indices; collect copies that must
        // move (their bin is gone).
        let mut load = vec![0u64; n];
        let mut must_move: Vec<(usize, usize)> = Vec::new(); // (ball, copy slot)
        for (ball, row) in self.table.iter_mut().enumerate() {
            for (slot, cell) in row.iter_mut().enumerate() {
                match old_to_new[*cell as usize] {
                    Some(new_idx) => {
                        *cell = new_idx;
                        load[new_idx as usize] += 1;
                    }
                    None => {
                        *cell = u32::MAX; // sentinel: unassigned
                        must_move.push((ball, slot));
                    }
                }
            }
        }
        let lower_bound = must_move.len() as u64
            + quotas
                .iter()
                .zip(&load)
                .map(|(&q, &l)| q.saturating_sub(l))
                .sum::<u64>()
                .saturating_sub(must_move.len() as u64);
        // Surplus copies also have to move: collect (ball, slot) pairs from
        // over-quota bins, preferring balls that unblock under-quota bins.
        let mut moved = 0u64;
        let mut surplus: Vec<u64> = load
            .iter()
            .zip(&quotas)
            .map(|(&l, &q)| l.saturating_sub(q))
            .collect();
        for row in self.table.iter_mut() {
            for slot in 0..self.k {
                let cell = row[slot];
                if cell == u32::MAX {
                    continue;
                }
                let b = cell as usize;
                if surplus[b] > 0 && load[b] > quotas[b] {
                    // Try to shed this copy to an under-quota bin that the
                    // ball does not already use.
                    if let Some(target) = pick_target(&load, &quotas, row, n) {
                        surplus[b] -= 1;
                        load[b] -= 1;
                        row[slot] = target as u32;
                        load[target] += 1;
                        moved += 1;
                    }
                }
            }
        }
        // Now place the unassigned copies.
        for (ball, slot) in must_move {
            let row = &mut self.table[ball];
            let target = pick_target(&load, &quotas, row, n)
                .or_else(|| pick_least_loaded(&load, &quotas, row, n))
                .ok_or(PlacementError::TooFewBins { k: self.k, n })?;
            row[slot] = target as u32;
            load[target] += 1;
            moved += 1;
        }
        self.ids = new_ids;
        self.load = load;
        self.fair = weights.iter().map(|w| self.k as f64 * w / total).collect();
        Ok(RebalanceReport { moved, lower_bound })
    }
}

/// Largest-remainder integer quotas summing exactly to `total_copies`.
fn integer_quotas(weights: &[f64], total_copies: u64) -> Vec<u64> {
    let total_w: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights
        .iter()
        .map(|w| w / total_w * total_copies as f64)
        .collect();
    let mut quotas: Vec<u64> = exact.iter().map(|e| e.floor() as u64).collect();
    let mut assigned: u64 = quotas.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut i = 0;
    while assigned < total_copies {
        quotas[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    quotas
}

/// An under-quota bin the ball's row does not already use.
fn pick_target(load: &[u64], quotas: &[u64], row: &[u32], n: usize) -> Option<usize> {
    (0..n)
        .filter(|&b| load[b] < quotas[b] && !row.contains(&(b as u32)))
        .max_by_key(|&b| quotas[b] - load[b])
}

/// Fallback: the relatively least-loaded usable bin (tolerates a quota
/// overshoot of one copy when redundancy constraints block the ideal
/// target).
fn pick_least_loaded(load: &[u64], quotas: &[u64], row: &[u32], n: usize) -> Option<usize> {
    (0..n)
        .filter(|&b| !row.contains(&(b as u32)))
        .min_by(|&a, &b| {
            let ra = load[a] as f64 / quotas[a].max(1) as f64;
            let rb = load[b] as f64 / quotas[b].max(1) as f64;
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        })
}

impl PlacementStrategy for TableBased {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    /// # Panics
    ///
    /// Panics if `ball` is outside the table's domain `0..m`; a table can
    /// only answer for balls it has assignments for — exactly the
    /// scalability limitation the hash-based strategies remove.
    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        assert!(
            ball < self.table.len() as u64,
            "ball within table domain 0..{}",
            self.table.len()
        );
        let row = &self.table[ball as usize];
        out.extend(row.iter().map(|&c| self.ids[c as usize]));
    }

    fn fair_shares(&self) -> Vec<f64> {
        self.fair.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::Bin;

    fn check_valid(table: &TableBased) {
        for ball in 0..table.balls() {
            let placed = table.place(ball);
            let mut uniq = placed.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), table.replication(), "ball {ball}");
        }
    }

    #[test]
    fn construction_is_fair_and_valid() {
        let bins = BinSet::from_capacities([400, 300, 200, 100]).unwrap();
        let m = 400u64;
        let table = TableBased::new(&bins, 2, m).unwrap();
        check_valid(&table);
        // Loads hit the integer quotas exactly.
        let loads = table.loads();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, m * 2);
        for (l, f) in loads.iter().zip(table.fair_shares()) {
            let got = *l as f64 / m as f64;
            assert!((got - f).abs() < 0.02, "load {got} vs fair {f}");
        }
    }

    #[test]
    fn capacity_bound_enforced() {
        let bins = BinSet::from_capacities([2, 1, 1]).unwrap();
        assert!(TableBased::new(&bins, 2, 2).is_ok());
        assert!(TableBased::new(&bins, 2, 3).is_err());
    }

    #[test]
    fn rebalance_add_bin_is_minimal() {
        let bins = BinSet::from_capacities([1_000, 1_000, 1_000, 1_000]).unwrap();
        let m = 1_000u64;
        let mut table = TableBased::new(&bins, 2, m).unwrap();
        let grown = bins.with_bin(Bin::new(9u64, 1_000).unwrap()).unwrap();
        let report = table.rebalance(&grown).unwrap();
        check_valid(&table);
        // Optimal movement = the new bin's quota: 2m/5 = 400 copies.
        assert_eq!(report.lower_bound, 400);
        assert!(
            report.moved <= report.lower_bound + 5,
            "moved {} vs lower bound {}",
            report.moved,
            report.lower_bound
        );
        // Fairness restored.
        for (l, f) in table.loads().iter().zip(table.fair_shares()) {
            let got = *l as f64 / m as f64;
            assert!((got - f).abs() < 0.02, "load {got} vs fair {f}");
        }
    }

    #[test]
    fn rebalance_remove_bin_moves_only_its_copies() {
        let bins = BinSet::from_capacities([1_000, 1_000, 1_000, 1_000, 1_000]).unwrap();
        let m = 1_000u64;
        let mut table = TableBased::new(&bins, 2, m).unwrap();
        let lost_copies = table.loads()[4];
        let shrunk = bins.without_bin(BinId(4)).unwrap();
        let report = table.rebalance(&shrunk).unwrap();
        check_valid(&table);
        assert_eq!(
            report.moved, lost_copies,
            "removal moves exactly the lost copies"
        );
    }

    #[test]
    fn rebalance_heterogeneous_change() {
        let bins = BinSet::from_capacities([5_000, 4_000, 3_000, 2_000]).unwrap();
        let m = 600u64;
        let mut table = TableBased::new(&bins, 3, m).unwrap();
        let grown = bins.with_bin(Bin::new(7u64, 6_000).unwrap()).unwrap();
        let report = table.rebalance(&grown).unwrap();
        check_valid(&table);
        assert!(report.moved >= report.lower_bound);
        assert!(
            report.moved <= report.lower_bound + m / 50 + 5,
            "moved {} vs lower bound {}",
            report.moved,
            report.lower_bound
        );
    }

    #[test]
    fn memory_grows_with_balls() {
        let bins = BinSet::from_capacities([1_000, 1_000]).unwrap();
        let small = TableBased::new(&bins, 2, 100).unwrap();
        let large = TableBased::new(&bins, 2, 900).unwrap();
        assert!(large.memory_bytes() > 8 * small.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "ball within table domain")]
    fn out_of_domain_ball_panics() {
        let bins = BinSet::from_capacities([10, 10]).unwrap();
        let table = TableBased::new(&bins, 2, 5).unwrap();
        let _ = table.place(u64::MAX);
    }
}
