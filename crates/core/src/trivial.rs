//! The trivial replication baseline (Definition 2.3).
//!
//! "Trivial" replication produces `k` copies by performing `k` draws of a
//! fair single-copy strategy, excluding previously chosen bins and
//! renormalising the *original* weights among the survivors. This is the
//! natural approach used, e.g., by peer-to-peer systems layering replication
//! over consistent hashing — and Section 2.2 of the paper proves it loses
//! fairness and capacity efficiency on heterogeneous systems: the biggest
//! bin receives strictly less than its fair share whenever it is at least
//! `(1 + ε)` times the next bin (Lemma 2.4). Figure 1's three-bin example
//! misses the big bin with probability 1/6, wasting 1/12 of the system's
//! capacity.
//!
//! The baseline exists to reproduce those negative results
//! (`fig1_trivial_waste`, `table_capacity_efficiency`).

use rshare_hash::{stable_hash2, Rendezvous, SingleCopySelector};

use crate::bins::{BinId, BinSet};
use crate::error::PlacementError;
use crate::strategy::PlacementStrategy;

/// Domain separator distinguishing the k draws of one ball.
const TRIVIAL_DOMAIN: u64 = 0x5452_4956_4941_4C00; // "TRIVIAL"

/// k-fold replication by k independent fair draws without replacement.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, PlacementStrategy, TrivialReplication};
///
/// let bins = BinSet::from_capacities([200, 100, 100]).unwrap();
/// let trivial = TrivialReplication::new(&bins, 2).unwrap();
/// let copies = trivial.place(7);
/// assert_eq!(copies.len(), 2);
/// assert_ne!(copies[0], copies[1]);
/// ```
#[derive(Debug, Clone)]
pub struct TrivialReplication<S = Rendezvous> {
    ids: Vec<BinId>,
    names: Vec<u64>,
    weights: Vec<f64>,
    k: usize,
    selector: S,
}

impl TrivialReplication<Rendezvous> {
    /// Builds the baseline with the default (weighted rendezvous) selector.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if `k` exceeds the number of bins.
    pub fn new(bins: &BinSet, k: usize) -> Result<Self, PlacementError> {
        Self::with_selector(bins, k, Rendezvous::new())
    }
}

impl<S: SingleCopySelector> TrivialReplication<S> {
    /// Builds the baseline with a custom single-copy selector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrivialReplication::new`].
    pub fn with_selector(bins: &BinSet, k: usize, selector: S) -> Result<Self, PlacementError> {
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        if k > bins.len() {
            return Err(PlacementError::TooFewBins { k, n: bins.len() });
        }
        Ok(Self {
            ids: bins.bins().iter().map(|b| b.id()).collect(),
            names: bins.bins().iter().map(|b| b.id().raw()).collect(),
            weights: bins.bins().iter().map(|b| b.capacity() as f64).collect(),
            k,
            selector,
        })
    }
}

impl<S: SingleCopySelector> PlacementStrategy for TrivialReplication<S> {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        // Definition 2.3: draw i runs the fair k = 1 strategy over exactly
        // the bins not chosen by draws 1..i, with their constant weights.
        let mut names: Vec<u64> = self.names.clone();
        let mut weights: Vec<f64> = self.weights.clone();
        let mut ids: Vec<BinId> = self.ids.clone();
        for draw in 0..self.k {
            let key = stable_hash2(ball, TRIVIAL_DOMAIN ^ draw as u64);
            let idx = self.selector.select(key, &names, &weights);
            out.push(ids[idx]);
            names.swap_remove(idx);
            weights.swap_remove(idx);
            ids.swap_remove(idx);
        }
    }

    /// The *intended* fair shares `k · b_i / B` over the raw capacities.
    ///
    /// Note these are the targets the trivial strategy aims for but — per
    /// Lemma 2.4 — systematically misses on heterogeneous systems; the
    /// capacity-efficiency experiments quantify the gap.
    fn fair_shares(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| self.k as f64 * w / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_copies() {
        let bins = BinSet::from_capacities([50, 40, 30, 20, 10]).unwrap();
        let t = TrivialReplication::new(&bins, 3).unwrap();
        for ball in 0..2_000u64 {
            let placed = t.place(ball);
            let mut uniq = placed.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
    }

    #[test]
    fn figure_1_misses_the_big_bin_one_sixth_of_the_time() {
        // Bins (2, 1, 1), k = 2. P[big bin not chosen] = 1/2 · 1/3 = 1/6.
        let bins = BinSet::from_capacities([2, 1, 1]).unwrap();
        let t = TrivialReplication::new(&bins, 2).unwrap();
        let big = t.bin_ids()[0];
        let balls = 120_000u64;
        let misses = (0..balls).filter(|&b| !t.place(b).contains(&big)).count();
        let rate = misses as f64 / balls as f64;
        assert!(
            (rate - 1.0 / 6.0).abs() < 0.01,
            "miss rate {rate}, expected 1/6 ≈ 0.1667"
        );
    }

    #[test]
    fn uniform_bins_are_fair() {
        // On homogeneous bins the trivial approach is fine — the paper's
        // criticism applies to heterogeneous capacities only.
        let bins = BinSet::from_capacities([10; 6]).unwrap();
        let t = TrivialReplication::new(&bins, 2).unwrap();
        for share in crate::test_util::empirical_shares(&t, 60_000) {
            assert!((share - 2.0 / 6.0).abs() < 0.01, "share {share}");
        }
    }

    #[test]
    fn big_bin_undersupplied_lemma_2_4() {
        // Heterogeneous: the biggest bin's expected load falls short of the
        // optimal load (Lemma 2.4).
        let bins = BinSet::from_capacities([2, 1, 1]).unwrap();
        let t = TrivialReplication::new(&bins, 2).unwrap();
        let big = t.bin_ids()[0];
        let balls = 120_000u64;
        let hits = (0..balls).filter(|&b| t.place(b).contains(&big)).count();
        let share = hits as f64 / balls as f64;
        let optimal = 1.0; // fair share of the big bin is a full copy per ball
        assert!(
            share < optimal - 0.15,
            "trivial should waste the big bin: share {share}"
        );
    }

    #[test]
    fn construction_errors() {
        let bins = BinSet::from_capacities([1, 1]).unwrap();
        assert!(matches!(
            TrivialReplication::new(&bins, 0),
            Err(PlacementError::ZeroReplication)
        ));
        assert!(matches!(
            TrivialReplication::new(&bins, 5),
            Err(PlacementError::TooFewBins { .. })
        ));
    }
}
