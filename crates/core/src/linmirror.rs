//! LinMirror: 2-fold mirroring in linear time (Algorithms 2 and 3).
//!
//! LinMirror is the k = 2 member of the Redundant Share family and the one
//! the paper analyses most precisely: it is *perfectly fair* (Lemma 3.1) and
//! 4-competitive for bin insertion and deletion (Lemma 3.2, Corollary 3.3),
//! with measured competitive factors of about 1.5 when the biggest bin
//! changes and about 2.5 when the smallest bin changes (Figure 3).
//!
//! The implementation shares its engine with [`crate::RedundantShare`]; the
//! `b̂` head-weight correction of Algorithm 3 is obtained from the general
//! calibration, which for k = 2 reproduces the paper's closed-form
//! Equations 2–5 exactly (asserted in debug builds and by unit tests of
//! [`crate::analysis`]).

use rshare_hash::{Rendezvous, SingleCopySelector};

use crate::bins::{BinId, BinSet};
use crate::error::PlacementError;
use crate::redundant_share::RedundantShare;
use crate::strategy::PlacementStrategy;

/// Two-fold mirroring over heterogeneous bins (`LinMirror`).
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, LinMirror, PlacementStrategy};
///
/// let bins = BinSet::from_capacities([1200, 1100, 1000, 900]).unwrap();
/// let mirror = LinMirror::new(&bins).unwrap();
/// let (primary, secondary) = mirror.place_pair(42);
/// assert_ne!(primary, secondary);
/// // The trait view returns the same pair in copy order.
/// assert_eq!(mirror.place(42), vec![primary, secondary]);
/// ```
#[derive(Debug, Clone)]
pub struct LinMirror<S = Rendezvous> {
    inner: RedundantShare<S>,
}

impl LinMirror<Rendezvous> {
    /// Builds a mirror placement over `bins` with the default selector.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::TooFewBins`] if fewer than two bins are
    /// given (mirroring needs two distinct locations).
    pub fn new(bins: &BinSet) -> Result<Self, PlacementError> {
        Self::with_selector(bins, Rendezvous::new())
    }
}

impl<S: SingleCopySelector> LinMirror<S> {
    /// Builds a mirror placement with a custom `placeOneCopy` selector for
    /// the secondary copy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinMirror::new`].
    pub fn with_selector(bins: &BinSet, selector: S) -> Result<Self, PlacementError> {
        let inner = RedundantShare::with_selector(bins, 2, selector)?;
        #[cfg(debug_assertions)]
        {
            // The general calibration must agree with the paper's
            // closed-form b̂ wherever the closed form applies.
            if let Some((q, boost)) =
                crate::analysis::closed_form_boost_k2(inner.adjusted_weights())
            {
                let calibrated = inner.head_boost_for_test(q);
                let both_infinite = !boost.is_finite() && !calibrated.is_finite();
                debug_assert!(
                    both_infinite || (boost - calibrated).abs() <= 1e-6 * boost.max(1.0),
                    "calibration {calibrated} deviates from closed-form b̂ {boost} at q={q}"
                );
            }
        }
        Ok(Self { inner })
    }

    /// Places `ball`, returning `(primary, secondary)`.
    #[must_use]
    pub fn place_pair(&self, ball: u64) -> (BinId, BinId) {
        let mut out = Vec::with_capacity(2);
        self.inner.place_into(ball, &mut out);
        (out[0], out[1])
    }

    /// The adjusted (Lemma 2.2) capacities, in canonical order.
    #[must_use]
    pub fn adjusted_weights(&self) -> &[f64] {
        self.inner.adjusted_weights()
    }
}

impl<S: SingleCopySelector> PlacementStrategy for LinMirror<S> {
    fn replication(&self) -> usize {
        2
    }

    fn bin_ids(&self) -> &[BinId] {
        self.inner.bin_ids()
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        self.inner.place_into(ball, out);
    }

    fn fair_shares(&self) -> Vec<f64> {
        self.inner.fair_shares()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_bins() {
        let one = BinSet::from_capacities([10]).unwrap();
        assert!(matches!(
            LinMirror::new(&one),
            Err(PlacementError::TooFewBins { k: 2, n: 1 })
        ));
    }

    #[test]
    fn figure_1_example_is_perfectly_packed() {
        // The Figure 1 system: bins (2, 1, 1). A fair mirror must place a
        // copy of EVERY ball on the big bin (its share is 2·(2/4) = 1).
        let bins = BinSet::from_capacities([2_000, 1_000, 1_000]).unwrap();
        let mirror = LinMirror::new(&bins).unwrap();
        let big = mirror.bin_ids()[0];
        let balls = 50_000u64;
        let mut on_big = 0u64;
        let mut small = [0u64; 2];
        for ball in 0..balls {
            let (p, s) = mirror.place_pair(ball);
            if p == big || s == big {
                on_big += 1;
            }
            for (slot, id) in small.iter_mut().zip(&mirror.bin_ids()[1..]) {
                if p == *id || s == *id {
                    *slot += 1;
                }
            }
        }
        assert_eq!(on_big, balls, "the dominant bin must be hit every time");
        for c in small {
            let share = c as f64 / balls as f64;
            assert!((share - 0.5).abs() < 0.02, "small-bin share {share}");
        }
    }

    #[test]
    fn pair_matches_trait_view() {
        let bins = BinSet::from_capacities([50, 40, 30, 20]).unwrap();
        let mirror = LinMirror::new(&bins).unwrap();
        for ball in 0..300u64 {
            let (p, s) = mirror.place_pair(ball);
            assert_eq!(mirror.place(ball), vec![p, s]);
            assert_ne!(p, s);
        }
    }

    #[test]
    fn perfect_fairness_statistical() {
        let bins = BinSet::from_capacities([500_000, 600_000, 700_000, 800_000, 900_000]).unwrap();
        let mirror = LinMirror::new(&bins).unwrap();
        let want = mirror.fair_shares();
        let shares = crate::test_util::empirical_shares(&mirror, 200_000);
        for (i, (got, w)) in shares.iter().zip(&want).enumerate() {
            assert!(
                (got - w).abs() / w < 0.02,
                "bin {i}: got {got:.4} want {w:.4}"
            );
        }
    }
}
