//! k-fold replication in O(k) time (Section 3.3 of the paper).
//!
//! The linear scan of [`crate::RedundantShare`] is a Markov chain over
//! `(position, copies remaining)`: after a copy is placed at bin `l` with
//! `r` copies remaining, the distribution of the *next* placed copy depends
//! only on `(l, r)`. Section 3.3 exploits this by precomputing, for the
//! first copy one weighted-selection structure, and for every following copy
//! one structure per possible predecessor bin — "O(n) hash functions, one
//! for each disk that could be chosen as primary in the previous step". A
//! query then walks `k` constant-time lookups.
//!
//! We realise each structure as an [`AliasTable`]. Construction costs
//! `O(k · n²)` time and memory (the paper counts this as `O(k · n · s)`
//! with `s` the per-hash-function memory); queries cost `O(k)`.
//!
//! The sampled joint distribution is identical to the scan's, so fairness
//! and redundancy carry over exactly; the random bits differ, so the two
//! variants produce different (but equally distributed) mappings. Unlike
//! the scan variant, the precomputed tables are rebuilt wholesale on a
//! membership change, so this variant trades the paper's adaptivity
//! guarantees for query speed — the adaptivity benches quantify the gap.

use rshare_hash::{stable_hash3, AliasTable};

use crate::analysis::ScanModel;
use crate::bins::{BinId, BinSet};
use crate::capacity::optimal_weights;
use crate::error::PlacementError;
use crate::strategy::PlacementStrategy;

const FAST_DOMAIN: u64 = 0x4653_4841_5245_0000; // "FSHARE"

/// Per-predecessor transition structure for one copy level.
#[derive(Debug, Clone)]
enum Transition {
    /// Reachable state: alias table over the bins after the predecessor
    /// (outcome `t` means absolute index `prev + 1 + t`).
    Table(AliasTable),
    /// The calibrated head weight diverged: the head takes everything.
    AlwaysHead,
    /// State unreachable (not enough bins left for the remaining copies).
    Unreachable,
}

/// Redundant Share with precomputed O(k)-time queries.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, FastRedundantShare, PlacementStrategy};
///
/// let bins = BinSet::from_capacities([500, 400, 300, 200, 100]).unwrap();
/// let strat = FastRedundantShare::new(&bins, 3).unwrap();
/// let copies = strat.place(99);
/// assert_eq!(copies.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FastRedundantShare {
    ids: Vec<BinId>,
    k: usize,
    fair: Vec<f64>,
    /// Distribution of the first copy.
    first: Transition,
    /// `scan_levels[k - r]` for r = k-1 … 2: transitions of the scan-placed
    /// middle copies, indexed by predecessor.
    scan_levels: Vec<Vec<Transition>>,
    /// Last-copy (`placeOneCopy`) distributions, indexed by predecessor.
    last: Vec<Transition>,
}

impl FastRedundantShare {
    /// Builds the precomputed strategy.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if `k` exceeds the number of bins.
    pub fn new(bins: &BinSet, k: usize) -> Result<Self, PlacementError> {
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        let n = bins.len();
        if k > n {
            return Err(PlacementError::TooFewBins { k, n });
        }
        let capacities: Vec<u64> = bins.bins().iter().map(|b| b.capacity()).collect();
        let weights = optimal_weights(&capacities, k);
        let model = ScanModel::new(weights, k);
        let total = model.suffix[0];
        let fair = model.weights.iter().map(|w| k as f64 * w / total).collect();

        // First copy: either the level-k scan start (k >= 2) or a direct
        // placeOneCopy over everything (k == 1).
        let first = if k >= 2 {
            scan_transition(&model, k, 0)
        } else {
            last_transition(&model, 0)
        };
        // Middle copies placed by the scan: levels r = k-1 … 2, one
        // transition table per predecessor bin.
        let mut scan_levels = Vec::new();
        for r in (2..k).rev() {
            let tables: Vec<Transition> = (0..n)
                .map(|prev| scan_transition(&model, r, prev + 1))
                .collect();
            scan_levels.push(tables);
        }
        // Last copy: placeOneCopy suffix per predecessor.
        let last: Vec<Transition> = if k >= 2 {
            (0..n)
                .map(|prev| last_transition(&model, prev + 1))
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            ids: bins.bins().iter().map(|b| b.id()).collect(),
            k,
            fair,
            first,
            scan_levels,
            last,
        })
    }

    /// Approximate memory footprint of the precomputed tables in bytes —
    /// the `O(k · n · s)` cost Section 3.3 pays for O(k) queries.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        fn t(trans: &Transition) -> usize {
            match trans {
                Transition::Table(a) => a.memory_bytes(),
                _ => 0,
            }
        }
        t(&self.first)
            + self
                .scan_levels
                .iter()
                .map(|lvl| lvl.iter().map(t).sum::<usize>())
                .sum::<usize>()
            + self.last.iter().map(t).sum::<usize>()
            + self.ids.len() * std::mem::size_of::<BinId>()
            + self.fair.len() * std::mem::size_of::<f64>()
    }

    fn resolve(&self, trans: &Transition, base: usize, key: u64) -> usize {
        match trans {
            Transition::Table(t) => base + t.sample_hash(key),
            Transition::AlwaysHead => base,
            Transition::Unreachable => {
                unreachable!("sampled into an unreachable placement state")
            }
        }
    }
}

/// Distribution of the next scan take at level `r` starting from `start`:
/// `P[take at j] = θ(j, r) · Π_{start ≤ o < j} (1 - θ(o, r))`.
fn scan_transition(model: &ScanModel, r: usize, start: usize) -> Transition {
    let n = model.weights.len();
    if n < start + r {
        return Transition::Unreachable;
    }
    let mut probs = vec![0.0; n - start];
    let mut reach = 1.0;
    for j in start..n {
        let force = n - j == r; // floating-point guard, as in the scan
        let theta = if force { 1.0 } else { model.theta(j, r) };
        probs[j - start] = reach * theta;
        reach *= 1.0 - theta;
        if reach <= 0.0 {
            break;
        }
    }
    Transition::Table(AliasTable::new(&probs).expect("valid scan distribution"))
}

/// Distribution of the last copy over the suffix starting at `start`, with
/// the calibrated head weight.
fn last_transition(model: &ScanModel, start: usize) -> Transition {
    let n = model.weights.len();
    if start >= n {
        return Transition::Unreachable;
    }
    let boost = model.head_boost[start];
    if !boost.is_finite() {
        return Transition::AlwaysHead;
    }
    let mut w: Vec<f64> = model.weights[start..].to_vec();
    w[0] = boost;
    Transition::Table(AliasTable::new(&w).expect("valid suffix weights"))
}

impl PlacementStrategy for FastRedundantShare {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        let key0 = stable_hash3(ball, 0, FAST_DOMAIN);
        let mut prev = self.resolve(&self.first, 0, key0);
        out.push(self.ids[prev]);
        if self.k == 1 {
            return;
        }
        for (level, tables) in self.scan_levels.iter().enumerate() {
            let key = stable_hash3(ball, level as u64 + 1, FAST_DOMAIN);
            prev = self.resolve(&tables[prev], prev + 1, key);
            out.push(self.ids[prev]);
        }
        let key = stable_hash3(ball, self.k as u64 - 1, FAST_DOMAIN);
        let idx = self.resolve(&self.last[prev], prev + 1, key);
        out.push(self.ids[idx]);
    }

    fn fair_shares(&self) -> Vec<f64> {
        self.fair.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundant_share::RedundantShare;

    fn bins(caps: &[u64]) -> BinSet {
        BinSet::from_capacities(caps.iter().copied()).unwrap()
    }

    fn empirical(strat: &dyn PlacementStrategy, balls: u64) -> Vec<f64> {
        let mut counts = vec![0u64; strat.bin_ids().len()];
        let mut out = Vec::new();
        for ball in 0..balls {
            strat.place_into(ball, &mut out);
            for id in &out {
                let pos = strat.bin_ids().iter().position(|b| b == id).unwrap();
                counts[pos] += 1;
            }
        }
        counts.iter().map(|&c| c as f64 / balls as f64).collect()
    }

    #[test]
    fn distinct_and_sized() {
        let set = bins(&[500, 400, 300, 200, 100]);
        for k in 1..=5 {
            let strat = FastRedundantShare::new(&set, k).unwrap();
            for ball in 0..2_000u64 {
                let placed = strat.place(ball);
                assert_eq!(placed.len(), k);
                let mut uniq = placed.clone();
                uniq.sort();
                uniq.dedup();
                assert_eq!(uniq.len(), k, "ball {ball} k={k}");
            }
        }
    }

    #[test]
    fn fairness_matches_scan_variant() {
        let set = bins(&[800, 700, 600, 500, 400, 300, 200, 100]);
        for k in [2usize, 4] {
            let fast = FastRedundantShare::new(&set, k).unwrap();
            let scan = RedundantShare::new(&set, k).unwrap();
            let balls = 150_000u64;
            let fast_shares = empirical(&fast, balls);
            let scan_shares = empirical(&scan, balls);
            let want = fast.fair_shares();
            for i in 0..set.len() {
                assert!(
                    (fast_shares[i] - want[i]).abs() / want[i] < 0.03,
                    "k={k} bin {i}: fast {:.4} want {:.4}",
                    fast_shares[i],
                    want[i]
                );
                assert!(
                    (fast_shares[i] - scan_shares[i]).abs() / want[i] < 0.04,
                    "k={k} bin {i}: fast {:.4} scan {:.4}",
                    fast_shares[i],
                    scan_shares[i]
                );
            }
        }
    }

    #[test]
    fn saturated_configuration() {
        // (4, 4, 4, 1): the b̂ correction must flow into the last-copy
        // tables too.
        let set = bins(&[400, 400, 400, 100]);
        let strat = FastRedundantShare::new(&set, 2).unwrap();
        let want = strat.fair_shares();
        let got = empirical(&strat, 300_000);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() / want[i] < 0.03,
                "bin {i}: got {:.4} want {:.4}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn k1_matches_weights() {
        let set = bins(&[300, 200, 100]);
        let strat = FastRedundantShare::new(&set, 1).unwrap();
        let got = empirical(&strat, 120_000);
        for (g, w) in got.iter().zip(strat.fair_shares()) {
            assert!((g - w).abs() / w < 0.03, "got {g} want {w}");
        }
    }

    #[test]
    fn errors() {
        let set = bins(&[10, 10]);
        assert!(FastRedundantShare::new(&set, 0).is_err());
        assert!(FastRedundantShare::new(&set, 3).is_err());
    }
}
