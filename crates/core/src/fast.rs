//! k-fold replication in O(k) time (Section 3.3 of the paper).
//!
//! The linear scan of [`crate::RedundantShare`] is a Markov chain over
//! `(position, copies remaining)`: after a copy is placed at bin `l` with
//! `r` copies remaining, the distribution of the *next* placed copy depends
//! only on `(l, r)`. Section 3.3 exploits this by precomputing, for the
//! first copy one weighted-selection structure, and for every following copy
//! one structure per possible predecessor bin — "O(n) hash functions, one
//! for each disk that could be chosen as primary in the previous step". A
//! query then walks `k` constant-time lookups.
//!
//! We realise each structure as an inverse-CDF table ([`CdfTable`]).
//! Construction costs `O(k · n²)` time and memory (the paper counts this
//! as `O(k · n · s)` with `s` the per-hash-function memory); queries cost
//! `O(k · log n)`. An alias table would answer each draw in O(1), but its
//! column/alias layout is discontinuous in the weights: rebuilding it for
//! a slightly different bin set scrambles which hash values land where,
//! which would void the adaptivity guarantees the paper's Section 4 is
//! about. The inverse-CDF draw is monotone in the cumulative
//! distribution, so a membership or capacity change remaps only balls
//! whose uniform falls in a shifted boundary region — per transition, the
//! total-variation distance between the old and new distributions, which
//! keeps the fast engine's migration competitive like the scan's.
//!
//! The sampled joint distribution is identical to the scan's, so fairness
//! and redundancy carry over exactly; the random bits differ, so the two
//! variants produce different (but equally distributed) mappings.
//!
//! # Construction cost
//!
//! The `O(k · n²)` table construction is embarrassingly parallel across
//! predecessor states, so it is sharded over OS threads
//! (`std::thread::scope`). On a membership change,
//! [`FastRedundantShare::rebuild`] additionally reuses the transition
//! tables of every suffix the change left untouched: each table depends
//! only on the calibrated model data at indices at or after its start, so
//! a bitwise suffix comparison (with index shift, for head
//! insertions/removals) identifies reusable tables, which are shared via
//! `Arc` instead of reconstructed.

use std::sync::Arc;

use rshare_hash::{stable_hash3, CdfTable};

use crate::analysis::ScanModel;
use crate::bins::{BinId, BinSet};
use crate::capacity::optimal_weights;
use crate::error::PlacementError;
use crate::strategy::PlacementStrategy;

const FAST_DOMAIN: u64 = 0x4653_4841_5245_0000; // "FSHARE"

/// Per-predecessor transition structure for one copy level.
///
/// Tables are `Arc`-shared so an incremental rebuild can adopt the
/// unchanged-suffix tables of the previous instance by reference.
#[derive(Debug, Clone)]
enum Transition {
    /// Reachable state: inverse-CDF table over the bins after the
    /// predecessor (outcome `t` means absolute index `prev + 1 + t`).
    Table(Arc<CdfTable>),
    /// The calibrated head weight diverged: the head takes everything.
    AlwaysHead,
    /// State unreachable (not enough bins left for the remaining copies).
    Unreachable,
}

/// Redundant Share with precomputed O(k)-time queries.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, FastRedundantShare, PlacementStrategy};
///
/// let bins = BinSet::from_capacities([500, 400, 300, 200, 100]).unwrap();
/// let strat = FastRedundantShare::new(&bins, 3).unwrap();
/// let copies = strat.place(99);
/// assert_eq!(copies.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FastRedundantShare {
    ids: Vec<BinId>,
    k: usize,
    fair: Vec<f64>,
    /// The calibrated scan model the tables were derived from; kept so an
    /// incremental [`FastRedundantShare::rebuild`] can compare suffixes.
    model: ScanModel,
    /// Distribution of the first copy.
    first: Transition,
    /// `scan_levels[k - r]` for r = k-1 … 2: transitions of the scan-placed
    /// middle copies, indexed by predecessor.
    scan_levels: Vec<Vec<Transition>>,
    /// Last-copy (`placeOneCopy`) distributions, indexed by predecessor.
    last: Vec<Transition>,
}

/// Outcome of an incremental [`FastRedundantShare::rebuild`]: how many
/// per-predecessor transition tables survived the membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildStats {
    /// Tables adopted from the previous instance by reference.
    pub reused: usize,
    /// Tables constructed from scratch.
    pub rebuilt: usize,
}

impl FastRedundantShare {
    /// Builds the precomputed strategy. The `O(k · n²)` table construction
    /// is sharded across OS threads.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::ZeroReplication`] if `k == 0`.
    /// * [`PlacementError::TooFewBins`] if `k` exceeds the number of bins.
    pub fn new(bins: &BinSet, k: usize) -> Result<Self, PlacementError> {
        Self::build(bins, k, None).map(|(strategy, _)| strategy)
    }

    /// Rebuilds the strategy for a changed bin set, keeping `k`, and
    /// reusing every transition table whose suffix the change left
    /// untouched (shared by reference, not reconstructed). Tables that
    /// cannot be reused are rebuilt in parallel.
    ///
    /// # Errors
    ///
    /// [`PlacementError::TooFewBins`] if `k` now exceeds the number of
    /// bins.
    pub fn rebuild(&mut self, bins: &BinSet) -> Result<RebuildStats, PlacementError> {
        let (next, stats) = Self::build(bins, self.k, Some(self))?;
        *self = next;
        Ok(stats)
    }

    fn build(
        bins: &BinSet,
        k: usize,
        previous: Option<&Self>,
    ) -> Result<(Self, RebuildStats), PlacementError> {
        if k == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        let n = bins.len();
        if k > n {
            return Err(PlacementError::TooFewBins { k, n });
        }
        let capacities: Vec<u64> = bins.bins().iter().map(|b| b.capacity()).collect();
        let weights = optimal_weights(&capacities, k);
        let model = ScanModel::new(weights, k);
        let total = model.suffix[0];
        let fair = model.weights.iter().map(|w| k as f64 * w / total).collect();

        // A transition starting at index `start` depends only on the
        // calibrated model data at indices ≥ start (and the distance to
        // the end of the bin list). `reuse` maps a new start index to the
        // old instance's equivalent start, when the suffixes match.
        let reuse = previous.and_then(|prev| SuffixReuse::detect(&prev.model, &model, k));
        let reused = std::sync::atomic::AtomicUsize::new(0);
        let transition = |r: usize, start: usize| -> Transition {
            if let Some((prev, map)) = previous.zip(reuse.as_ref()) {
                if let Some(old) = map.old_transition(prev, r, start) {
                    reused.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return old;
                }
            }
            if r == 1 {
                last_transition(&model, start)
            } else {
                scan_transition(&model, r, start)
            }
        };

        // First copy: either the level-k scan start (k >= 2) or a direct
        // placeOneCopy over everything (k == 1).
        let first = transition(if k >= 2 { k } else { 1 }, 0);
        // Middle copies placed by the scan: levels r = k-1 … 2, one
        // transition table per predecessor bin, built in parallel.
        let scan_levels: Vec<Vec<Transition>> = (2..k)
            .rev()
            .map(|r| par_map(n, |prev| transition(r, prev + 1)))
            .collect();
        // Last copy: placeOneCopy suffix per predecessor.
        let last: Vec<Transition> = if k >= 2 {
            par_map(n, |prev| transition(1, prev + 1))
        } else {
            Vec::new()
        };
        let reused = reused.into_inner();
        let total_tables = 1 + scan_levels.iter().map(Vec::len).sum::<usize>() + last.len();
        let stats = RebuildStats {
            reused,
            rebuilt: total_tables - reused,
        };
        let strategy = Self {
            ids: bins.bins().iter().map(|b| b.id()).collect(),
            k,
            fair,
            model,
            first,
            scan_levels,
            last,
        };
        Ok((strategy, stats))
    }

    /// Approximate memory footprint of the precomputed tables in bytes —
    /// the `O(k · n · s)` cost Section 3.3 pays for O(k) queries.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        fn t(trans: &Transition) -> usize {
            match trans {
                Transition::Table(a) => a.memory_bytes(),
                _ => 0,
            }
        }
        let f = std::mem::size_of::<f64>();
        t(&self.first)
            + self
                .scan_levels
                .iter()
                .map(|lvl| lvl.iter().map(t).sum::<usize>())
                .sum::<usize>()
            + self.last.iter().map(t).sum::<usize>()
            + self.ids.len() * std::mem::size_of::<BinId>()
            + self.fair.len() * f
            + (self.model.weights.len()
                + self.model.suffix.len()
                + self.model.theta.len()
                + self.model.head_boost.len())
                * f
            + self.model.sat_cut.len() * std::mem::size_of::<usize>()
    }

    fn resolve(&self, trans: &Transition, base: usize, key: u64) -> usize {
        match trans {
            Transition::Table(t) => base + t.sample_hash(key),
            Transition::AlwaysHead => base,
            Transition::Unreachable => {
                unreachable!("sampled into an unreachable placement state")
            }
        }
    }

    /// The Markov-chain walk, emitting the `k` chosen bins in copy order.
    ///
    /// Shared by `place_into` and `place_into_inline` so the two emit
    /// destinations are bit-identical by construction.
    fn walk_place(&self, ball: u64, mut emit: impl FnMut(BinId)) {
        let key0 = stable_hash3(ball, 0, FAST_DOMAIN);
        let mut prev = self.resolve(&self.first, 0, key0);
        emit(self.ids[prev]);
        if self.k == 1 {
            return;
        }
        for (level, tables) in self.scan_levels.iter().enumerate() {
            let key = stable_hash3(ball, level as u64 + 1, FAST_DOMAIN);
            prev = self.resolve(&tables[prev], prev + 1, key);
            emit(self.ids[prev]);
        }
        let key = stable_hash3(ball, self.k as u64 - 1, FAST_DOMAIN);
        let idx = self.resolve(&self.last[prev], prev + 1, key);
        emit(self.ids[idx]);
    }
}

/// Shift-aware bitwise suffix match between the calibrated models of an
/// old and a new instance.
///
/// A transition starting at new index `start ≥ matched_from` reads only
/// model data that is bit-identical to the old model's data at
/// `start - shift` (θ rows, head weights, weights, and the distance to the
/// end of the bin list), so the old table can be adopted unchanged. The
/// shift handles head insertions/removals, which displace every index but
/// leave the tail suffix intact.
struct SuffixReuse {
    /// `new index − old index` for matched positions (`n_new − n_old`).
    shift: isize,
    /// Smallest *new* index from which the suffix data matches.
    matched_from: usize,
}

impl SuffixReuse {
    fn detect(old: &ScanModel, new: &ScanModel, k: usize) -> Option<Self> {
        if old.k != k {
            return None;
        }
        let n_new = new.weights.len();
        let shift = n_new as isize - old.weights.len() as isize;
        let mut matched_from = n_new;
        while matched_from > 0 {
            let i = matched_from - 1;
            let Ok(j) = usize::try_from(i as isize - shift) else {
                break;
            };
            let same = old.weights[j].to_bits() == new.weights[i].to_bits()
                && old.head_boost[j].to_bits() == new.head_boost[i].to_bits()
                && (2..=k).all(|r| old.theta(j, r).to_bits() == new.theta(i, r).to_bits());
            if !same {
                break;
            }
            matched_from = i;
        }
        (matched_from < n_new).then_some(Self {
            shift,
            matched_from,
        })
    }

    /// The old instance's transition for the state equivalent to the new
    /// `(r, start)`, if that state lies in the matched suffix. `r == 1`
    /// addresses the last-copy tables, `r == k` the first-copy table.
    fn old_transition(
        &self,
        prev: &FastRedundantShare,
        r: usize,
        start: usize,
    ) -> Option<Transition> {
        if start < self.matched_from {
            return None;
        }
        let old_start = usize::try_from(start as isize - self.shift).ok()?;
        if start == 0 || old_start == 0 {
            // The full-list state additionally depends on index 0 itself;
            // it is only equivalent when nothing shifted and everything
            // matched, which `start ≥ matched_from` already guarantees
            // for start == 0 — but the levels must align too.
            if start != 0 || old_start != 0 {
                return None;
            }
            let first_level = if prev.k >= 2 { prev.k } else { 1 };
            return (r == first_level).then(|| prev.first.clone());
        }
        let prev_idx = old_start - 1;
        let table = if r == 1 {
            prev.last.get(prev_idx)
        } else if r >= 2 && r < prev.k {
            prev.scan_levels.get(prev.k - 1 - r)?.get(prev_idx)
        } else {
            None
        };
        table.cloned()
    }
}

/// Maps `f` over `0..len` in index order, sharding across OS threads when
/// the range is large enough to amortise spawn cost.
fn par_map<T: Send, F: Fn(usize) -> T + Sync>(len: usize, f: F) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map_or(1, |v| v.get())
        .min(len / 16)
        .max(1);
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (chunk..len)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(len);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        // First chunk on the calling thread while workers run.
        let mut out: Vec<T> = (0..chunk.min(len)).map(f).collect();
        for handle in handles {
            out.extend(handle.join().expect("table construction worker panicked"));
        }
        out
    })
}

/// Distribution of the next scan take at level `r` starting from `start`:
/// `P[take at j] = θ(j, r) · Π_{start ≤ o < j} (1 - θ(o, r))`.
fn scan_transition(model: &ScanModel, r: usize, start: usize) -> Transition {
    let n = model.weights.len();
    if n < start + r {
        return Transition::Unreachable;
    }
    let mut probs = vec![0.0; n - start];
    let mut reach = 1.0;
    for j in start..n {
        let force = n - j == r; // floating-point guard, as in the scan
        let theta = if force { 1.0 } else { model.theta(j, r) };
        probs[j - start] = reach * theta;
        reach *= 1.0 - theta;
        if reach <= 0.0 {
            break;
        }
    }
    Transition::Table(Arc::new(
        CdfTable::new(&probs).expect("valid scan distribution"),
    ))
}

/// Distribution of the last copy over the suffix starting at `start`, with
/// the calibrated head weight.
fn last_transition(model: &ScanModel, start: usize) -> Transition {
    let n = model.weights.len();
    if start >= n {
        return Transition::Unreachable;
    }
    let boost = model.head_boost[start];
    if !boost.is_finite() {
        return Transition::AlwaysHead;
    }
    let mut w: Vec<f64> = model.weights[start..].to_vec();
    w[0] = boost;
    Transition::Table(Arc::new(CdfTable::new(&w).expect("valid suffix weights")))
}

impl PlacementStrategy for FastRedundantShare {
    fn replication(&self) -> usize {
        self.k
    }

    fn bin_ids(&self) -> &[BinId] {
        &self.ids
    }

    fn place_into(&self, ball: u64, out: &mut Vec<BinId>) {
        out.clear();
        self.walk_place(ball, |id| out.push(id));
    }

    fn place_into_inline(&self, ball: u64, out: &mut [BinId; crate::MAX_INLINE_K]) -> usize {
        assert!(
            self.k <= crate::MAX_INLINE_K,
            "replication {} exceeds inline capacity",
            self.k
        );
        let mut n = 0usize;
        self.walk_place(ball, |id| {
            out[n] = id;
            n += 1;
        });
        n
    }

    fn fair_shares(&self) -> Vec<f64> {
        self.fair.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundant_share::RedundantShare;
    use crate::test_util::empirical_shares;

    fn bins(caps: &[u64]) -> BinSet {
        BinSet::from_capacities(caps.iter().copied()).unwrap()
    }

    #[test]
    fn distinct_and_sized() {
        let set = bins(&[500, 400, 300, 200, 100]);
        for k in 1..=5 {
            let strat = FastRedundantShare::new(&set, k).unwrap();
            for ball in 0..2_000u64 {
                let placed = strat.place(ball);
                assert_eq!(placed.len(), k);
                let mut uniq = placed.clone();
                uniq.sort();
                uniq.dedup();
                assert_eq!(uniq.len(), k, "ball {ball} k={k}");
            }
        }
    }

    #[test]
    fn inline_placement_is_bit_identical() {
        let set = bins(&[500, 400, 300, 200, 100]);
        for k in 1..=5usize {
            let strat = FastRedundantShare::new(&set, k).unwrap();
            let mut arr = [BinId(u64::MAX); crate::MAX_INLINE_K];
            let mut v = Vec::new();
            for ball in 0..2_000u64 {
                strat.place_into(ball, &mut v);
                let n = strat.place_into_inline(ball, &mut arr);
                assert_eq!(n, k);
                assert_eq!(&arr[..n], v.as_slice(), "ball {ball} k={k}");
            }
        }
    }

    #[test]
    fn fairness_matches_scan_variant() {
        let set = bins(&[800, 700, 600, 500, 400, 300, 200, 100]);
        for k in [2usize, 4] {
            let fast = FastRedundantShare::new(&set, k).unwrap();
            let scan = RedundantShare::new(&set, k).unwrap();
            let balls = 150_000u64;
            let fast_shares = empirical_shares(&fast, balls);
            let scan_shares = empirical_shares(&scan, balls);
            let want = fast.fair_shares();
            for i in 0..set.len() {
                assert!(
                    (fast_shares[i] - want[i]).abs() / want[i] < 0.03,
                    "k={k} bin {i}: fast {:.4} want {:.4}",
                    fast_shares[i],
                    want[i]
                );
                assert!(
                    (fast_shares[i] - scan_shares[i]).abs() / want[i] < 0.04,
                    "k={k} bin {i}: fast {:.4} scan {:.4}",
                    fast_shares[i],
                    scan_shares[i]
                );
            }
        }
    }

    #[test]
    fn saturated_configuration() {
        // (4, 4, 4, 1): the b̂ correction must flow into the last-copy
        // tables too.
        let set = bins(&[400, 400, 400, 100]);
        let strat = FastRedundantShare::new(&set, 2).unwrap();
        let want = strat.fair_shares();
        let got = empirical_shares(&strat, 300_000);
        for i in 0..4 {
            assert!(
                (got[i] - want[i]).abs() / want[i] < 0.03,
                "bin {i}: got {:.4} want {:.4}",
                got[i],
                want[i]
            );
        }
    }

    #[test]
    fn k1_matches_weights() {
        let set = bins(&[300, 200, 100]);
        let strat = FastRedundantShare::new(&set, 1).unwrap();
        let got = empirical_shares(&strat, 120_000);
        for (g, w) in got.iter().zip(strat.fair_shares()) {
            assert!((g - w).abs() / w < 0.03, "got {g} want {w}");
        }
    }

    #[test]
    fn errors() {
        let set = bins(&[10, 10]);
        assert!(FastRedundantShare::new(&set, 0).is_err());
        assert!(FastRedundantShare::new(&set, 3).is_err());
    }

    /// Every placement of `a` equals the corresponding placement of `b`.
    fn assert_same_placements(a: &FastRedundantShare, b: &FastRedundantShare, balls: u64) {
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for ball in 0..balls {
            a.place_into(ball, &mut va);
            b.place_into(ball, &mut vb);
            assert_eq!(va, vb, "ball {ball}");
        }
    }

    #[test]
    fn rebuild_identity_reuses_every_table() {
        let set = bins(&[500, 400, 300, 200, 100]);
        for k in [1usize, 2, 3] {
            let fresh = FastRedundantShare::new(&set, k).unwrap();
            let mut rebuilt = fresh.clone();
            let stats = rebuilt.rebuild(&set).unwrap();
            assert_eq!(stats.rebuilt, 0, "k={k}: {stats:?}");
            assert!(stats.reused > 0, "k={k}: {stats:?}");
            assert_same_placements(&fresh, &rebuilt, 2_000);
        }
    }

    #[test]
    fn rebuild_matches_fresh_build_after_any_change() {
        let before = bins(&[500, 400, 300, 200, 100]);
        for (caps, k) in [
            (vec![600u64, 500, 400, 300, 200, 100], 3), // head insertion
            (vec![500, 400, 300, 200], 3),              // tail removal
            (vec![500, 400, 300, 200, 50], 2),          // tail resize
            (vec![400, 400, 400, 100], 2),              // saturated target
        ] {
            let after = bins(&caps);
            let mut rebuilt = FastRedundantShare::new(&before, k).unwrap();
            rebuilt.rebuild(&after).unwrap();
            let fresh = FastRedundantShare::new(&after, k).unwrap();
            assert_eq!(rebuilt.fair_shares(), fresh.fair_shares(), "caps {caps:?}");
            assert_same_placements(&rebuilt, &fresh, 3_000);
        }
    }

    #[test]
    fn rebuild_reuses_suffix_after_head_insertion() {
        // Adding a new largest device displaces every index but leaves the
        // calibrated tail suffix bit-identical, so the shift-aware match
        // must recover most per-predecessor tables.
        let before = bins(&[400, 300, 200, 100, 90, 80, 70, 60]);
        let mut grown: Vec<crate::bins::Bin> = before.bins().to_vec();
        grown.push(crate::bins::Bin::new(1_000u64, 500).unwrap());
        let after = BinSet::new(grown).unwrap();
        let mut strat = FastRedundantShare::new(&before, 3).unwrap();
        let stats = strat.rebuild(&after).unwrap();
        assert!(
            stats.reused > 0,
            "no tables reused across head insertion: {stats:?}"
        );
        let fresh = FastRedundantShare::new(&after, 3).unwrap();
        assert_same_placements(&strat, &fresh, 3_000);
    }
}
