//! High-throughput driver for placement queries.
//!
//! Placement in this system is a pure function of `(strategy, ball)` —
//! no query touches shared mutable state — so a batch of lookups is
//! embarrassingly parallel. [`PlacementEngine`] exploits that: it shards a
//! batch of balls into contiguous chunks, resolves the chunks on scoped OS
//! threads (`std::thread::scope`; no runtime or external dependency), and
//! writes each chunk's groups into a disjoint region of one flat output
//! buffer.
//!
//! Because every ball's placement is deterministic and independent, the
//! sharded result is **bit-identical** to the sequential scalar loop — the
//! property tests of this crate pin that down. Parallelism changes only
//! wall-clock time, never placements.

use std::sync::Arc;

use rshare_obs::{Counter, Registry};

use crate::bins::BinId;
use crate::strategy::PlacementStrategy;

/// Below this many balls per available thread the engine stays sequential:
/// thread spawn/join overhead (~10 µs) dwarfs the placement work.
const MIN_BALLS_PER_THREAD: usize = 256;

/// A multi-threaded batch front-end over any [`PlacementStrategy`].
///
/// The engine owns the strategy and fans batched queries out across OS
/// threads. Results use the same flat stride-`k` layout as
/// [`PlacementStrategy::place_batch_into`]: the copies of `balls[j]` are
/// `out[j * k..(j + 1) * k]`, in copy order.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, PlacementEngine, PlacementStrategy, RedundantShare};
///
/// let bins = BinSet::from_capacities([500, 400, 300, 200, 100]).unwrap();
/// let strat = RedundantShare::new(&bins, 3).unwrap();
/// let engine = PlacementEngine::new(strat);
/// let balls: Vec<u64> = (0..10_000).collect();
/// let flat = engine.place_batch(&balls);
/// assert_eq!(flat.len(), balls.len() * 3);
/// // Identical to the scalar path, element for element:
/// assert_eq!(flat[30..33].to_vec(), engine.strategy().place(10));
/// ```
#[derive(Debug, Clone)]
pub struct PlacementEngine<S> {
    strategy: S,
    threads: usize,
    metrics: Option<EngineMetrics>,
}

/// Shared handles an instrumented engine bumps once per batch — two
/// relaxed atomic adds, regardless of batch size or thread count.
#[derive(Debug, Clone)]
struct EngineMetrics {
    batches: Arc<Counter>,
    balls: Arc<Counter>,
}

impl<S: PlacementStrategy + Sync> PlacementEngine<S> {
    /// Wraps `strategy`, sizing the thread pool to the machine's available
    /// parallelism.
    pub fn new(strategy: S) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_threads(strategy, threads)
    }

    /// Wraps `strategy` with an explicit thread count (clamped to ≥ 1).
    /// `with_threads(strategy, 1)` is a purely sequential engine.
    pub fn with_threads(strategy: S, threads: usize) -> Self {
        Self {
            strategy,
            threads: threads.max(1),
            metrics: None,
        }
    }

    /// Publishes per-batch series into `registry` and returns the
    /// instrumented engine: `placement_batches_total` counts batch calls,
    /// `placement_balls_total` counts balls placed through them. An
    /// uninstrumented engine (the default) skips both entirely.
    #[must_use]
    pub fn instrumented(mut self, registry: &Registry) -> Self {
        self.metrics = Some(EngineMetrics {
            batches: registry.counter(
                "placement_batches_total",
                "Batched placement queries resolved by the engine",
            ),
            balls: registry.counter(
                "placement_balls_total",
                "Balls placed through the batch engine",
            ),
        });
        self
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Returns the wrapped strategy, consuming the engine.
    pub fn into_inner(self) -> S {
        self.strategy
    }

    /// The maximum number of worker threads a batch is sharded over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Places every ball of `balls` into the flat stride-`k` buffer `out`
    /// (cleared first). A recycled `out` with sufficient capacity is not
    /// reallocated.
    ///
    /// Batches too small to amortise thread spawn cost — or an engine
    /// configured with one thread — run the strategy's own
    /// [`PlacementStrategy::place_batch_into`] inline.
    pub fn place_batch_into(&self, balls: &[u64], out: &mut Vec<BinId>) {
        if let Some(m) = &self.metrics {
            m.batches.inc();
            m.balls.add(balls.len() as u64);
        }
        let threads = self
            .threads
            .min(balls.len() / MIN_BALLS_PER_THREAD.max(1))
            .max(1);
        if threads == 1 {
            self.strategy.place_batch_into(balls, out);
            return;
        }
        let k = self.strategy.replication();
        out.clear();
        out.resize(balls.len() * k, BinId(0));
        let chunk = balls.len().div_ceil(threads);
        let strategy = &self.strategy;
        std::thread::scope(|scope| {
            let mut ball_chunks = balls.chunks(chunk);
            let mut out_chunks = out.chunks_mut(chunk * k);
            // Run the first shard on the calling thread; spawn the rest.
            let head_balls = ball_chunks.next().expect("non-empty batch");
            let head_out = out_chunks.next().expect("non-empty batch");
            for (shard_balls, shard_out) in ball_chunks.zip(out_chunks) {
                scope.spawn(move || fill_shard(strategy, shard_balls, shard_out));
            }
            fill_shard(strategy, head_balls, head_out);
        });
    }

    /// Places every ball of `balls`, returning a fresh flat stride-`k`
    /// buffer.
    pub fn place_batch(&self, balls: &[u64]) -> Vec<BinId> {
        let mut out = Vec::with_capacity(balls.len() * self.strategy.replication());
        self.place_batch_into(balls, &mut out);
        out
    }
}

/// Resolves one shard through the strategy's batch path, then copies the
/// groups into the shard's disjoint region of the shared output buffer.
fn fill_shard<S: PlacementStrategy>(strategy: &S, balls: &[u64], out: &mut [BinId]) {
    let mut local = Vec::with_capacity(out.len());
    strategy.place_batch_into(balls, &mut local);
    out.copy_from_slice(&local);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinSet;
    use crate::redundant_share::RedundantShare;

    fn strategy(caps: &[u64], k: usize) -> RedundantShare {
        let set = BinSet::from_capacities(caps.iter().copied()).unwrap();
        RedundantShare::new(&set, k).unwrap()
    }

    #[test]
    fn batch_matches_scalar() {
        let strat = strategy(&[500, 400, 300, 200, 100], 3);
        let balls: Vec<u64> = (0..1_000).map(|b| b * 7 + 3).collect();
        let mut flat = Vec::new();
        strat.place_batch_into(&balls, &mut flat);
        assert_eq!(flat.len(), balls.len() * 3);
        for (j, &ball) in balls.iter().enumerate() {
            assert_eq!(&flat[j * 3..(j + 1) * 3], strat.place(ball).as_slice());
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let strat = strategy(&[737, 386, 356, 331, 146, 127], 3);
        let balls: Vec<u64> = (0..40_000).collect();
        let sequential = PlacementEngine::with_threads(strat.clone(), 1).place_batch(&balls);
        for threads in [2, 3, 4, 7] {
            let engine = PlacementEngine::with_threads(strat.clone(), threads);
            assert_eq!(engine.place_batch(&balls), sequential, "threads={threads}");
        }
    }

    #[test]
    fn small_batches_stay_inline_and_correct() {
        let strat = strategy(&[40, 30, 20, 10], 2);
        let engine = PlacementEngine::new(strat);
        for len in [0usize, 1, 2, 255] {
            let balls: Vec<u64> = (0..len as u64).collect();
            let flat = engine.place_batch(&balls);
            assert_eq!(flat.len(), len * 2);
            for (j, &ball) in balls.iter().enumerate() {
                assert_eq!(&flat[j * 2..(j + 1) * 2], engine.strategy().place(ball));
            }
        }
    }

    #[test]
    fn uneven_shard_split_covers_every_ball() {
        let strat = strategy(&[50, 40, 30, 20, 10], 2);
        // 2049 balls over 4 threads: last shard is short.
        let balls: Vec<u64> = (0..2_049).collect();
        let engine = PlacementEngine::with_threads(strat.clone(), 4);
        let flat = engine.place_batch(&balls);
        assert_eq!(flat.len(), balls.len() * 2);
        assert_eq!(
            &flat[flat.len() - 2..],
            strat.place(*balls.last().unwrap()).as_slice()
        );
    }

    #[test]
    fn instrumented_engine_counts_batches_and_balls() {
        let registry = Registry::new();
        let strat = strategy(&[50, 40, 30, 20, 10], 2);
        let engine = PlacementEngine::with_threads(strat, 2).instrumented(&registry);
        let balls: Vec<u64> = (0..1_000).collect();
        let _ = engine.place_batch(&balls);
        let _ = engine.place_batch(&balls[..10]);
        let batches = registry.counter("placement_batches_total", "");
        let placed = registry.counter("placement_balls_total", "");
        assert_eq!(batches.get(), 2);
        assert_eq!(placed.get(), 1_010);
    }

    #[test]
    fn reused_buffer_is_not_reallocated() {
        let strat = strategy(&[50, 40, 30, 20, 10], 2);
        let engine = PlacementEngine::with_threads(strat, 2);
        let balls: Vec<u64> = (0..4_096).collect();
        let mut out = Vec::with_capacity(balls.len() * 2);
        engine.place_batch_into(&balls, &mut out);
        let ptr = out.as_ptr();
        let cap = out.capacity();
        engine.place_batch_into(&balls, &mut out);
        assert_eq!(out.as_ptr(), ptr, "reused buffer was reallocated");
        assert_eq!(out.capacity(), cap);
    }
}
