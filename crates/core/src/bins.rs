//! The bin model: heterogeneous storage devices with stable identities.
//!
//! The paper's model (Section 1.1): bins `{1, …, N}` where bin `i` can hold
//! `b_i` (copies of) balls; its relative capacity is `c_i = b_i / Σ b_j`.
//! Bins carry *stable names* because every placement decision hashes the
//! bin's name together with the ball's address — never the bin's position —
//! which is what makes the strategies adaptive under membership changes.

use crate::error::PlacementError;

/// Stable identifier of a bin (storage device).
///
/// The identifier must be unique inside one system and must not be reused
/// for a different physical device: placement randomness is derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BinId(pub u64);

impl BinId {
    /// The raw 64-bit name, used as hash input.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for BinId {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl std::fmt::Display for BinId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bin#{}", self.0)
    }
}

/// A storage device with a stable identity and a capacity in blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bin {
    id: BinId,
    capacity: u64,
}

impl Bin {
    /// Creates a bin; `capacity` is the number of block copies it can hold.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::ZeroCapacity`] if `capacity == 0` — the
    /// model has no use for bins that cannot store anything, and zero
    /// capacities would poison the relative-weight computations.
    pub fn new(id: impl Into<BinId>, capacity: u64) -> Result<Self, PlacementError> {
        let id = id.into();
        if capacity == 0 {
            return Err(PlacementError::ZeroCapacity { id: id.raw() });
        }
        Ok(Self { id, capacity })
    }

    /// The bin's stable identifier.
    #[must_use]
    pub const fn id(&self) -> BinId {
        self.id
    }

    /// The bin's capacity in block copies.
    #[must_use]
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// An immutable set of bins ordered by descending capacity.
///
/// All Redundant Share algorithms scan bins from largest to smallest
/// (`b_i ≥ b_{i+1}` is a requirement of Algorithms 2 and 4), so the set
/// maintains that order canonically; ties are broken by ascending
/// identifier, making the order deterministic.
///
/// Membership changes produce a *new* [`BinSet`] (see [`BinSet::with_bin`],
/// [`BinSet::without_bin`]), mirroring how a reconfiguration produces a new
/// placement function whose distance from the old one the adaptivity
/// experiments measure.
///
/// # Example
///
/// ```
/// use rshare_core::{Bin, BinSet};
///
/// let set = BinSet::from_capacities([500, 1200, 700]).unwrap();
/// assert_eq!(set.len(), 3);
/// // Ordered by descending capacity:
/// assert_eq!(set.bins()[0].capacity(), 1200);
/// assert_eq!(set.total_capacity(), 2400);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinSet {
    bins: Vec<Bin>,
}

impl BinSet {
    /// Builds a set from bins, validating uniqueness of identifiers.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::EmptySystem`] if no bins are given.
    /// * [`PlacementError::DuplicateBin`] if two bins share an identifier.
    pub fn new(bins: impl IntoIterator<Item = Bin>) -> Result<Self, PlacementError> {
        let mut bins: Vec<Bin> = bins.into_iter().collect();
        if bins.is_empty() {
            return Err(PlacementError::EmptySystem);
        }
        bins.sort_by(cmp_bins);
        let mut ids: Vec<u64> = bins.iter().map(|b| b.id().raw()).collect();
        ids.sort_unstable();
        for w in ids.windows(2) {
            if w[0] == w[1] {
                return Err(PlacementError::DuplicateBin { id: w[0] });
            }
        }
        Ok(Self { bins })
    }

    /// Builds a set with identifiers `0..n` from raw capacities.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Bin::new`] and [`BinSet::new`].
    pub fn from_capacities(
        capacities: impl IntoIterator<Item = u64>,
    ) -> Result<Self, PlacementError> {
        let bins = capacities
            .into_iter()
            .enumerate()
            .map(|(i, c)| Bin::new(i as u64, c))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(bins)
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `false`; a [`BinSet`] is never empty by construction. Provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The bins in canonical (descending capacity) order.
    #[must_use]
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Sum of all capacities (`B` in the paper).
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.bins.iter().map(Bin::capacity).sum()
    }

    /// Looks up a bin by identifier.
    #[must_use]
    pub fn get(&self, id: BinId) -> Option<&Bin> {
        self.bins.iter().find(|b| b.id() == id)
    }

    /// Returns a new set with `bin` added.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::DuplicateBin`] if a bin with the same
    /// identifier already exists.
    pub fn with_bin(&self, bin: Bin) -> Result<Self, PlacementError> {
        if self.get(bin.id()).is_some() {
            return Err(PlacementError::DuplicateBin { id: bin.id().raw() });
        }
        let mut bins = self.bins.clone();
        bins.push(bin);
        bins.sort_by(cmp_bins);
        Ok(Self { bins })
    }

    /// Returns a new set with the bin called `id` removed.
    ///
    /// # Errors
    ///
    /// * [`PlacementError::UnknownBin`] if no such bin exists.
    /// * [`PlacementError::EmptySystem`] if it was the last bin.
    pub fn without_bin(&self, id: BinId) -> Result<Self, PlacementError> {
        if self.get(id).is_none() {
            return Err(PlacementError::UnknownBin { id: id.raw() });
        }
        if self.bins.len() == 1 {
            return Err(PlacementError::EmptySystem);
        }
        let bins = self.bins.iter().copied().filter(|b| b.id() != id).collect();
        Ok(Self { bins })
    }

    /// Returns a new set with bin `id` resized to `capacity` — the
    /// "change of their capacities" case of the paper's adaptivity
    /// criterion (e.g. a device replaced by a larger model under the same
    /// name).
    ///
    /// # Errors
    ///
    /// * [`PlacementError::UnknownBin`] if no such bin exists.
    /// * [`PlacementError::ZeroCapacity`] if `capacity == 0`.
    pub fn with_capacity(&self, id: BinId, capacity: u64) -> Result<Self, PlacementError> {
        if self.get(id).is_none() {
            return Err(PlacementError::UnknownBin { id: id.raw() });
        }
        let resized = Bin::new(id, capacity)?;
        let mut bins: Vec<Bin> = self
            .bins
            .iter()
            .map(|b| if b.id() == id { resized } else { *b })
            .collect();
        bins.sort_by(cmp_bins);
        Ok(Self { bins })
    }

    /// Relative capacities `c_i = b_i / B` in canonical order.
    #[must_use]
    pub fn relative_capacities(&self) -> Vec<f64> {
        let total = self.total_capacity() as f64;
        self.bins
            .iter()
            .map(|b| b.capacity() as f64 / total)
            .collect()
    }
}

fn cmp_bins(a: &Bin, b: &Bin) -> std::cmp::Ordering {
    b.capacity()
        .cmp(&a.capacity())
        .then_with(|| a.id().cmp(&b.id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_capacity_desc_then_id_asc() {
        let set = BinSet::new([
            Bin::new(5u64, 100).unwrap(),
            Bin::new(1u64, 300).unwrap(),
            Bin::new(3u64, 100).unwrap(),
        ])
        .unwrap();
        let ids: Vec<u64> = set.bins().iter().map(|b| b.id().raw()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn rejects_empty_zero_and_duplicates() {
        assert_eq!(BinSet::new([]), Err(PlacementError::EmptySystem));
        assert_eq!(
            Bin::new(7u64, 0),
            Err(PlacementError::ZeroCapacity { id: 7 })
        );
        let dup = BinSet::new([Bin::new(1u64, 10).unwrap(), Bin::new(1u64, 20).unwrap()]);
        assert_eq!(dup, Err(PlacementError::DuplicateBin { id: 1 }));
    }

    #[test]
    fn with_and_without_bin() {
        let set = BinSet::from_capacities([10, 20]).unwrap();
        let grown = set.with_bin(Bin::new(9u64, 30).unwrap()).unwrap();
        assert_eq!(grown.len(), 3);
        assert_eq!(grown.bins()[0].id(), BinId(9));
        assert_eq!(
            grown.with_bin(Bin::new(9u64, 5).unwrap()),
            Err(PlacementError::DuplicateBin { id: 9 })
        );
        let shrunk = grown.without_bin(BinId(9)).unwrap();
        assert_eq!(shrunk, set);
        assert_eq!(
            shrunk.without_bin(BinId(9)),
            Err(PlacementError::UnknownBin { id: 9 })
        );
    }

    #[test]
    fn removing_last_bin_is_an_error() {
        let set = BinSet::from_capacities([10]).unwrap();
        assert_eq!(set.without_bin(BinId(0)), Err(PlacementError::EmptySystem));
    }

    #[test]
    fn with_capacity_resizes_and_reorders() {
        let set = BinSet::from_capacities([10, 20, 30]).unwrap();
        let resized = set.with_capacity(BinId(0), 50).unwrap();
        assert_eq!(resized.bins()[0].id(), BinId(0));
        assert_eq!(resized.bins()[0].capacity(), 50);
        assert_eq!(resized.total_capacity(), 100);
        assert_eq!(
            set.with_capacity(BinId(9), 5),
            Err(PlacementError::UnknownBin { id: 9 })
        );
        assert_eq!(
            set.with_capacity(BinId(0), 0),
            Err(PlacementError::ZeroCapacity { id: 0 })
        );
    }

    #[test]
    fn relative_capacities_sum_to_one() {
        let set = BinSet::from_capacities([500, 300, 200]).unwrap();
        let rel = set.relative_capacities();
        assert!((rel.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((rel[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bin_id_display_and_conversions() {
        let id: BinId = 42u64.into();
        assert_eq!(id.to_string(), "bin#42");
        assert_eq!(id.raw(), 42);
    }

    #[test]
    fn get_by_id() {
        let set = BinSet::from_capacities([500, 300]).unwrap();
        assert_eq!(set.get(BinId(1)).unwrap().capacity(), 300);
        assert!(set.get(BinId(17)).is_none());
    }
}
