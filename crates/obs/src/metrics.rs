//! The metric primitives: lock-free counters, gauges and log-bucketed
//! histograms.
//!
//! Everything here is a thin wrapper over relaxed atomics. Relaxed
//! ordering is correct because metrics are independent tallies, never
//! synchronisation: a reader observing a slightly stale count is fine, a
//! reader observing a torn one is impossible (each cell is one atomic).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// `inc`/`add` take `&self` and cost one relaxed `fetch_add`, so counters
/// can sit on concurrent hot paths (the batched read fan-out increments
/// shared counters from every worker thread).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (pending blocks, online devices, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// log₂ of [`SUB_BUCKETS`].
const SUB_SHIFT: u32 = 5;

/// Linear sub-buckets per power-of-two group. The first `SUB_BUCKETS`
/// values are exact; beyond that each group is refined into
/// `SUB_BUCKETS / 2` linear sub-buckets, bounding the relative recording
/// error by `2 / SUB_BUCKETS` (≈ 6%).
const SUB_BUCKETS: usize = 1 << SUB_SHIFT;

/// Power-of-two groups above the exact range: values up to `u64::MAX`
/// land in group `63 - SUB_SHIFT`.
const GROUPS: usize = 64 - SUB_SHIFT as usize;

/// Total buckets: the exact low range plus half-width linear refinements
/// of every group.
const BUCKETS: usize = SUB_BUCKETS + GROUPS * (SUB_BUCKETS / 2);

/// Bucket index of `v` (log-bucketed, HDR-style).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_SHIFT
    let group = (exp - SUB_SHIFT) as usize;
    let sub = ((v >> (exp + 1 - SUB_SHIFT)) as usize) - SUB_BUCKETS / 2;
    SUB_BUCKETS + group * (SUB_BUCKETS / 2) + sub
}

/// Smallest value mapping to bucket `i` — the inverse of
/// [`bucket_index`], used for percentile estimation and exposition.
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let group = (i - SUB_BUCKETS) / (SUB_BUCKETS / 2);
    let sub = (i - SUB_BUCKETS) % (SUB_BUCKETS / 2);
    ((SUB_BUCKETS / 2 + sub) as u64) << (group + 1)
}

/// Largest value mapping to bucket `i` (inclusive).
fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lower_bound(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes, …).
///
/// Values below `SUB_BUCKETS` (64) are recorded exactly; above that, buckets
/// are power-of-two groups refined by linear sub-buckets, so the recorded
/// value is within ≈ 6% of the true one while the whole `u64` range fits
/// in under a thousand buckets. `record` is one relaxed `fetch_add` on
/// the bucket plus one on the running sum — cheap enough for the
/// zero-allocation read path.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution. Concurrent recording
    /// keeps the snapshot *consistent enough*: each bucket is read once,
    /// atomically, so counts are never torn, merely slightly staggered.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram`] for the bucketing).
    buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element of [`merge`]).
    ///
    /// [`merge`]: HistogramSnapshot::merge
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Folds another snapshot into this one — per-shard or per-node
    /// histograms aggregate into a cluster-wide distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (`q` in
    /// `[0, 1]`), e.g. `percentile(0.99)` for p99. Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Maximum recorded value, rounded up to its bucket bound.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound)
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// order — the exposition format renders these cumulatively.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v.saturating_sub(1), v, v + 1, v + v / 3] {
                let i = bucket_index(probe);
                assert!(i < BUCKETS, "index {i} out of range for {probe}");
                if probe >= last {
                    assert!(
                        bucket_index(last) <= i,
                        "index not monotone at {last} -> {probe}"
                    );
                    last = probe;
                }
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for i in 0..BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_lower_bound(i + 1), ub + 1, "buckets tile at {i}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, SUB_BUCKETS as u64);
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(snap.buckets[v as usize], 1);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for shift in 5..40 {
            let v = (1u64 << shift) + (1u64 << (shift - 2));
            h.record(v);
            let i = bucket_index(v);
            let ub = bucket_upper_bound(i);
            let lb = bucket_lower_bound(i);
            let width = (ub - lb + 1) as f64;
            assert!(
                width / v as f64 <= 2.0 / SUB_BUCKETS as f64 + 1e-9,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn percentiles_and_mean() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!((s.mean() - 500.5).abs() < 1.0);
        let p50 = s.percentile(0.5);
        assert!((468..=532).contains(&p50), "p50 {p50}");
        let p99 = s.percentile(0.99);
        assert!((960..=1023).contains(&p99), "p99 {p99}");
        assert!(s.max() >= 1000 && s.max() <= 1023);
        assert_eq!(s.percentile(0.0), bucket_upper_bound(bucket_index(1)));
        assert_eq!(HistogramSnapshot::empty().percentile(0.5), 0);
    }

    #[test]
    fn snapshots_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 200);
        assert_eq!(merged.sum, a.snapshot().sum + b.snapshot().sum);
        let mut identity = HistogramSnapshot::empty();
        identity.merge(&merged);
        assert_eq!(identity, merged);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }
}
