//! Recording abstractions: the [`Recorder`] sink trait and the RAII
//! [`SpanTimer`] that feeds it.

use std::time::Instant;

use crate::metrics::{Counter, Histogram};

/// Anything that can absorb a `u64` observation (a latency in
/// nanoseconds, a byte count, …).
///
/// The instrumented layers speak to this trait, not to concrete metric
/// types, so a call site can be pointed at a histogram, a plain counter
/// (which accumulates the observations) or a test double.
pub trait Recorder {
    /// Absorbs one observation.
    fn record(&self, value: u64);
}

impl Recorder for Histogram {
    fn record(&self, value: u64) {
        Histogram::record(self, value);
    }
}

impl Recorder for Counter {
    fn record(&self, value: u64) {
        self.add(value);
    }
}

impl<R: Recorder + ?Sized> Recorder for &R {
    fn record(&self, value: u64) {
        (**self).record(value);
    }
}

/// An RAII span: measures the wall-clock time from construction to drop
/// and records the elapsed nanoseconds into a [`Recorder`].
///
/// ```
/// use rshare_obs::{Histogram, SpanTimer};
///
/// let latency = Histogram::new();
/// {
///     let _span = SpanTimer::new(&latency);
///     // … timed work …
/// }
/// assert_eq!(latency.snapshot().count, 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<R: Recorder> {
    sink: R,
    start: Instant,
    armed: bool,
}

impl<R: Recorder> SpanTimer<R> {
    /// Starts timing; the observation lands when the span drops.
    #[must_use]
    pub fn new(sink: R) -> Self {
        Self {
            sink,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Nanoseconds elapsed so far (saturating at `u64::MAX`).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Abandons the span without recording (e.g. on an error path that
    /// should not pollute a success-latency series).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl<R: Recorder> Drop for SpanTimer<R> {
    fn drop(&mut self) {
        if self.armed {
            self.sink.record(self.elapsed_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let span = SpanTimer::new(&h);
            assert_eq!(h.snapshot().count, 0);
            let _ = span.elapsed_ns();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let h = Histogram::new();
        let span = SpanTimer::new(&h);
        span.cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counter_recorder_accumulates() {
        let c = Counter::new();
        Recorder::record(&c, 10);
        Recorder::record(&&c, 32);
        assert_eq!(c.get(), 42);
    }
}
