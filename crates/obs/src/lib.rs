//! Observability for the placement system: lock-free metrics, operation
//! timing and a text exposition surface.
//!
//! The paper's claims are quantitative — fairness (Lemma 3.1), competitive
//! adaptivity (Lemma 3.2), degraded-mode recovery — and a *running*
//! cluster can only demonstrate them through live series: per-device
//! access load, cache hit rates, migration debt, degraded-read latency
//! (cf. Aktaş & Soljanin, "Evaluating Load Balancing Performance in
//! Distributed Storage with Redundancy"). This crate is the recording
//! side of that story, built entirely on `std::sync::atomic` so it can
//! sit on the zero-allocation read path:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics; an increment is one
//!   `fetch_add`, safe from any thread through `&self`.
//! * [`Histogram`] — HDR-style log-bucketed latency/size distribution:
//!   power-of-two groups refined by linear sub-buckets (bounded ~3%
//!   relative error), atomic bucket array, mergeable [`HistogramSnapshot`]
//!   with percentile estimation.
//! * [`Registry`] — names metrics, hands out shared handles
//!   (get-or-register), renders everything in Prometheus text exposition
//!   format ([`Registry::render_prometheus`]).
//! * [`Recorder`] + [`SpanTimer`] — RAII timing: a span records its
//!   elapsed nanoseconds into any recorder (histograms implement it) when
//!   dropped.
//!
//! The crate deliberately has **no dependencies** (the build environment
//! has no registry access) and no global state other than the optional
//! [`global`] registry, which hot libraries use to publish series without
//! threading a handle through every call site.
//!
//! # Example
//!
//! ```
//! use rshare_obs::{Registry, SpanTimer};
//!
//! let registry = Registry::new();
//! let reads = registry.counter("reads_total", "Blocks read");
//! let latency = registry.histogram("read_latency_ns", "Read latency (ns)");
//! {
//!     let _span = SpanTimer::new(&*latency);
//!     reads.inc();
//! } // span drop records the elapsed time
//! assert_eq!(reads.get(), 1);
//! assert_eq!(latency.snapshot().count, 1);
//! let text = registry.render_prometheus();
//! assert!(text.contains("reads_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod recorder;
mod registry;

pub use export::{family_header, sample_line};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{Recorder, SpanTimer};
pub use registry::{global, Metric, Registry};
