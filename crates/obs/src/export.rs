//! Prometheus text exposition rendering.
//!
//! Plain `String` output of the [exposition format]: `# HELP` / `# TYPE`
//! headers, one sample line per series, histograms as cumulative `le`
//! buckets plus `_sum` and `_count`. No HTTP server — the CLI and the
//! health surface print or serve the string however they like.
//!
//! [exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::{Display, Write as _};

use crate::metrics::HistogramSnapshot;
use crate::registry::{Metric, Registry};

impl Registry {
    /// Renders every registered metric in Prometheus text exposition
    /// format, sorted by name.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, entry) in self.entries() {
            if !entry.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&entry.help));
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    render_histogram(&mut out, &name, &h.snapshot());
                }
            }
        }
        out
    }
}

/// Renders one histogram snapshot as cumulative `le`-labelled buckets.
/// Only non-empty buckets are emitted (the log-bucketed histogram has
/// hundreds of potential buckets; empty ones carry no information under
/// cumulative semantics), followed by the mandatory `+Inf` bucket,
/// `_sum` and `_count`.
pub(crate) fn render_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (upper, count) in snap.nonzero_buckets() {
        cumulative += count;
        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{name}_sum {}", snap.sum);
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

/// Escapes help text per the exposition format (backslash and newline).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Writes one labelled sample line, e.g.
/// `device_reads_total{device="3"} 17`. Exporters with per-entity series
/// (per-device I/O counters) render them through this helper rather than
/// registering one metric per entity.
pub fn sample_line(out: &mut String, name: &str, labels: &[(&str, &str)], value: impl Display) {
    let _ = write!(out, "{name}");
    if !labels.is_empty() {
        let _ = write!(out, "{{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ",");
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        let _ = write!(out, "}}");
    }
    let _ = writeln!(out, " {value}");
}

/// Writes `# HELP` / `# TYPE` headers for a manually rendered family.
pub fn family_header(out: &mut String, name: &str, kind: &str, help: &str) {
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn renders_all_kinds() {
        let r = Registry::new();
        r.counter("reads_total", "Blocks read").add(3);
        r.gauge("pending_blocks", "Awaiting migration").set(-2);
        let h = r.histogram("read_latency_ns", "Read latency");
        h.record(10);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP reads_total Blocks read"));
        assert!(text.contains("# TYPE reads_total counter"));
        assert!(text.contains("reads_total 3"));
        assert!(text.contains("pending_blocks -2"));
        assert!(text.contains("# TYPE read_latency_ns histogram"));
        assert!(text.contains("read_latency_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("read_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("read_latency_ns_sum 110"));
        assert!(text.contains("read_latency_ns_count 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new();
        for v in [1u64, 1, 5, 200] {
            h.record(v);
        }
        let mut out = String::new();
        render_histogram(&mut out, "h", &h.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "h_bucket{le=\"1\"} 2");
        assert_eq!(lines[1], "h_bucket{le=\"5\"} 3");
        assert!(lines[2].starts_with("h_bucket{le=\"2"));
        assert!(lines[2].ends_with(" 4"));
        assert_eq!(lines[3], "h_bucket{le=\"+Inf\"} 4");
    }

    #[test]
    fn labelled_samples_and_escaping() {
        let mut out = String::new();
        family_header(
            &mut out,
            "device_reads_total",
            "counter",
            "Per-device reads",
        );
        sample_line(&mut out, "device_reads_total", &[("device", "3")], 17u64);
        sample_line(&mut out, "x", &[], 1u64);
        sample_line(&mut out, "y", &[("note", "a\"b\\c")], 2u64);
        assert!(out.contains("device_reads_total{device=\"3\"} 17"));
        assert!(out.contains("\nx 1\n"));
        assert!(out.contains("y{note=\"a\\\"b\\\\c\"} 2"));
    }
}
