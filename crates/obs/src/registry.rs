//! The metric registry: names → shared metric handles.
//!
//! Registration (get-or-register by name) takes a mutex, but that is the
//! *cold* path — callers register once at construction and keep the
//! returned `Arc` handle. Every subsequent increment goes straight to the
//! atomic, never through the registry.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// A registered metric of any kind, with its help text.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A bidirectional gauge.
    Gauge(Arc<Gauge>),
    /// A log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

/// One named entry: the metric plus its help line.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) metric: Metric,
    pub(crate) help: String,
}

/// A named collection of metrics, renderable as Prometheus text.
///
/// Names follow Prometheus conventions (`[a-zA-Z_][a-zA-Z0-9_]*`,
/// suffixes like `_total`, `_bytes`, `_ns`); the registry stores them
/// sorted so exposition output is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it with
    /// `help` on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind — two
    /// subsystems disagreeing about a series' type is a programming
    /// error worth failing loudly on.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!(
                "metric '{name}' already registered as {}",
                kind_name(&other)
            ),
        }
    }

    /// Returns the gauge registered under `name`, creating it with
    /// `help` on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!(
                "metric '{name}' already registered as {}",
                kind_name(&other)
            ),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `help` on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!(
                "metric '{name}' already registered as {}",
                kind_name(&other)
            ),
        }
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.entries.lock().expect("registry mutex poisoned");
        entries
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                metric: make(),
                help: help.to_string(),
            })
            .metric
            .clone()
    }

    /// Looks up a metric by name without registering anything.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Metric> {
        let entries = self.entries.lock().expect("registry mutex poisoned");
        entries.get(name).map(|e| e.metric.clone())
    }

    /// The registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().expect("registry mutex poisoned");
        entries.keys().cloned().collect()
    }

    /// A sorted copy of every entry (name, metric, help) — the exporter's
    /// input, also usable for programmatic scraping.
    pub(crate) fn entries(&self) -> Vec<(String, Entry)> {
        let entries = self.entries.lock().expect("registry mutex poisoned");
        entries
            .iter()
            .map(|(name, e)| (name.clone(), e.clone()))
            .collect()
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// The process-wide default registry.
///
/// Hot libraries that cannot reasonably thread a registry handle through
/// every call site (the GF(256) kernels, for instance) publish their
/// series here; exporters merge it with their own registries.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_shares_one_handle() {
        let r = Registry::new();
        let a = r.counter("reads_total", "Blocks read");
        let b = r.counter("reads_total", "ignored on re-register");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.names(), vec!["reads_total".to_string()]);
        assert!(matches!(r.get("reads_total"), Some(Metric::Counter(_))));
        assert!(r.get("absent").is_none());
    }

    #[test]
    fn kinds_are_distinct() {
        let r = Registry::new();
        r.gauge("pending", "Pending blocks").set(5);
        r.histogram("lat", "Latency").record(10);
        assert!(matches!(r.get("pending"), Some(Metric::Gauge(_))));
        assert!(matches!(r.get("lat"), Some(Metric::Histogram(_))));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs_test_global_total", "test series");
        let before = c.get();
        global().counter("obs_test_global_total", "").inc();
        assert_eq!(c.get(), before + 1);
    }
}
