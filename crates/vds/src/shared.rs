//! A thread-safe handle to a storage cluster.
//!
//! [`StorageCluster`] is a single-threaded state machine (even reads update
//! device statistics). [`SharedCluster`] wraps it for concurrent callers —
//! many application threads issuing I/O while an operator thread runs
//! migrations — with coarse-grained locking, which is honest about the
//! simulator's semantics: every operation observes a serializable state.

use std::sync::{Arc, Mutex};

use crate::cluster::StorageCluster;
use crate::error::VdsError;
use crate::migration::MigrationReport;

/// A cloneable, `Send + Sync` handle to a [`StorageCluster`].
///
/// # Example
///
/// ```
/// use rshare_vds::{Redundancy, SharedCluster, StorageCluster};
///
/// let cluster = StorageCluster::builder()
///     .block_size(16)
///     .redundancy(Redundancy::Mirror { copies: 2 })
///     .device(0, 1_000)
///     .device(1, 1_000)
///     .device(2, 1_000)
///     .build()
///     .unwrap();
/// let shared = SharedCluster::new(cluster);
/// let writer = shared.clone();
/// std::thread::spawn(move || writer.write_block(0, &[1u8; 16]))
///     .join()
///     .unwrap()
///     .unwrap();
/// assert_eq!(shared.read_block(0).unwrap(), vec![1u8; 16]);
/// ```
#[derive(Debug, Clone)]
pub struct SharedCluster {
    inner: Arc<Mutex<StorageCluster>>,
}

impl SharedCluster {
    /// Wraps a cluster for shared use.
    #[must_use]
    pub fn new(cluster: StorageCluster) -> Self {
        Self {
            inner: Arc::new(Mutex::new(cluster)),
        }
    }

    /// Runs `f` with exclusive access to the cluster — the escape hatch
    /// for any operation without a dedicated wrapper.
    pub fn with<R>(&self, f: impl FnOnce(&mut StorageCluster) -> R) -> R {
        let mut guard = self.inner.lock().expect("cluster lock poisoned");
        f(&mut guard)
    }

    /// See [`StorageCluster::write_block`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying cluster error.
    pub fn write_block(&self, lba: u64, data: &[u8]) -> Result<(), VdsError> {
        self.with(|c| c.write_block(lba, data))
    }

    /// See [`StorageCluster::read_block`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying cluster error.
    pub fn read_block(&self, lba: u64) -> Result<Vec<u8>, VdsError> {
        self.with(|c| c.read_block(lba))
    }

    /// See [`StorageCluster::add_device`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying cluster error.
    pub fn add_device(&self, id: u64, capacity_blocks: u64) -> Result<MigrationReport, VdsError> {
        self.with(|c| c.add_device(id, capacity_blocks))
    }

    /// See [`StorageCluster::migrate_step`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying cluster error.
    pub fn migrate_step(&self, max_blocks: u64) -> Result<MigrationReport, VdsError> {
        self.with(|c| c.migrate_step(max_blocks))
    }

    /// See [`StorageCluster::migrate_batch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`StorageCluster::migrate_batch`].
    pub fn migrate_batch(&self, max_blocks: u64) -> Result<MigrationReport, VdsError> {
        self.with(|c| c.migrate_batch(max_blocks))
    }

    /// See [`StorageCluster::rebalance`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`StorageCluster::rebalance`].
    pub fn rebalance(&self) -> Result<MigrationReport, VdsError> {
        self.with(|c| c.rebalance())
    }

    /// Consumes the handle, returning the cluster if this was the last
    /// clone (`Err(self)` otherwise).
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other handles still exist.
    pub fn try_unwrap(self) -> Result<StorageCluster, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex.into_inner().expect("cluster lock poisoned")),
            Err(inner) => Err(Self { inner }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundancy::Redundancy;

    fn shared() -> SharedCluster {
        let cluster = StorageCluster::builder()
            .block_size(16)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 50_000)
            .device(1, 50_000)
            .device(2, 50_000)
            .device(3, 50_000)
            .build()
            .unwrap();
        SharedCluster::new(cluster)
    }

    #[test]
    fn concurrent_writers_and_readers_stay_consistent() {
        let cluster = shared();
        let threads = 4u32;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let c = cluster.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let lba = u64::from(t) * per_thread + i;
                        let payload = [lba as u8; 16];
                        c.write_block(lba, &payload).unwrap();
                        assert_eq!(c.read_block(lba).unwrap(), payload);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut cluster = cluster.try_unwrap().expect("last handle");
        assert_eq!(cluster.block_count(), u64::from(threads) * per_thread);
        assert_eq!(cluster.scrub().unwrap(), 0);
    }

    #[test]
    fn migration_races_with_io() {
        let cluster = shared();
        for lba in 0..2_000u64 {
            cluster.write_block(lba, &[lba as u8; 16]).unwrap();
        }
        cluster
            .with(|c| c.add_device_lazy(9, 50_000).map(|_| ()))
            .unwrap();
        let migrator = {
            let c = cluster.clone();
            std::thread::spawn(move || {
                while c.with(|cluster| cluster.pending_blocks()) > 0 {
                    c.migrate_step(50).unwrap();
                }
            })
        };
        let reader = {
            let c = cluster.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    for lba in (0..2_000u64).step_by(17) {
                        assert_eq!(c.read_block(lba).unwrap(), [lba as u8; 16], "round {round}");
                    }
                }
            })
        };
        migrator.join().unwrap();
        reader.join().unwrap();
        let mut cluster = cluster.try_unwrap().expect("last handle");
        assert_eq!(cluster.pending_blocks(), 0);
        assert_eq!(cluster.scrub().unwrap(), 0);
    }

    #[test]
    fn try_unwrap_respects_outstanding_handles() {
        let cluster = shared();
        let other = cluster.clone();
        let cluster = cluster.try_unwrap().expect_err("handle outstanding");
        drop(other);
        assert!(cluster.try_unwrap().is_ok());
    }
}
