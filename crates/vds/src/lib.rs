//! Block-level storage virtualization on top of Redundant Share placement.
//!
//! The ICDCS 2007 paper's abstract promises "a randomized block-level
//! storage virtualization for arbitrary heterogeneous storage systems that
//! can distribute data in a fair and redundant way and can adapt this
//! distribution in an efficient way as storage devices enter or leave the
//! system". This crate is that layer:
//!
//! * [`StorageCluster`] — a pool of simulated [`Device`]s virtualized into
//!   a single redundant block store. Shard locations are *computed* with
//!   [`rshare_core::RedundantShare`], never stored, so the metadata
//!   footprint is constant ("compactness" in the paper's criteria list).
//! * [`Redundancy`] — per-block mirroring or erasure coding (XOR parity,
//!   EVENODD, RDP, Reed–Solomon from `rshare-erasure`); shard `i` of a
//!   group goes to the i-th placed bin, using the copy-identity property
//!   of Redundant Share.
//! * Membership changes (`add_device`, `remove_device`, `fail_device` +
//!   `rebuild`) migrate only the shards whose computed location changed;
//!   [`MigrationReport`] quantifies the volume the paper's adaptivity
//!   lemmas bound. Changes can be **dry-run** ([`MigrationPlan`]) or run
//!   **lazily** (`add_device_lazy` + `migrate_batch`/`migrate_step`: the
//!   mapping switches instantly, data follows incrementally — both
//!   mappings are pure functions, so serving from either side needs no
//!   forwarding tables).
//! * Devices carry [`DeviceProfile`]s; simulated busy time and the
//!   workload *makespan* turn placement fairness into completion-time
//!   statements.
//! * [`VirtualDisk`] — a flat byte-addressed view with read-modify-write,
//!   the "single storage device" users see.
//!
//! # Example
//!
//! ```
//! use rshare_vds::{Redundancy, StorageCluster};
//!
//! let mut cluster = StorageCluster::builder()
//!     .block_size(64)
//!     .redundancy(Redundancy::Mirror { copies: 2 })
//!     .device(0, 1_000)
//!     .device(1, 2_000)
//!     .device(2, 2_000)
//!     .build()
//!     .unwrap();
//! cluster.write_block(0, &[42u8; 64]).unwrap();
//! cluster.fail_device(1).unwrap();
//! assert_eq!(cluster.read_block(0).unwrap(), vec![42u8; 64]); // degraded read
//! cluster.rebuild().unwrap();                                  // re-protect
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cluster;
mod device;
mod error;
mod health;
mod migration;
mod profile;
mod redundancy;
mod shared;
mod vdisk;

pub use cache::{CacheStats, MAX_CACHED_SHARDS};
pub use cluster::{ClusterBuilder, StorageCluster};
pub use device::{Device, DeviceState, IoStats};
pub use error::VdsError;
pub use health::{DeviceLoad, FairnessReport, HealthSnapshot};
pub use migration::{MigrationPlan, MigrationReport, ShardMove};
pub use profile::DeviceProfile;
pub use redundancy::Redundancy;
pub use shared::SharedCluster;
pub use vdisk::VirtualDisk;
