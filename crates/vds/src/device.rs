//! Simulated block storage devices.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::VdsError;
use crate::profile::DeviceProfile;

/// Identifies one shard of one redundancy group on a device.
pub(crate) type ShardKey = (u64, usize); // (logical block address, shard index)

/// Operational state of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Serving reads and writes.
    Online,
    /// Crashed: contents are gone, I/O is rejected.
    Failed,
}

/// Per-device I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of shard reads served.
    pub reads: u64,
    /// Number of shard writes absorbed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Simulated time spent serving I/O, in microseconds (see
    /// [`DeviceProfile`]).
    pub busy_us: u64,
}

/// Relaxed-ordering atomic I/O counters, so serving a read needs only
/// `&self` — the counters are independent tallies, not synchronisation.
#[derive(Debug, Default)]
struct AtomicIoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    busy_us: AtomicU64,
}

impl AtomicIoStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            busy_us: self.busy_us.load(Ordering::Relaxed),
        }
    }
}

/// A simulated storage device holding shards of redundancy groups.
///
/// The device enforces its block capacity, tracks I/O statistics and can be
/// failed (losing all contents) to drive rebuild experiments. Reads take
/// `&self`: shard contents are immutable between writes and the I/O
/// counters are atomic, so concurrent readers need no exclusive access.
#[derive(Debug)]
pub struct Device {
    id: u64,
    capacity_blocks: u64,
    state: DeviceState,
    shards: HashMap<ShardKey, Vec<u8>>,
    stats: AtomicIoStats,
    profile: DeviceProfile,
}

impl Clone for Device {
    fn clone(&self) -> Self {
        let s = self.stats.snapshot();
        Self {
            id: self.id,
            capacity_blocks: self.capacity_blocks,
            state: self.state,
            shards: self.shards.clone(),
            stats: AtomicIoStats {
                reads: AtomicU64::new(s.reads),
                writes: AtomicU64::new(s.writes),
                bytes_read: AtomicU64::new(s.bytes_read),
                bytes_written: AtomicU64::new(s.bytes_written),
                busy_us: AtomicU64::new(s.busy_us),
            },
            profile: self.profile,
        }
    }
}

impl Device {
    /// Creates an online device able to hold `capacity_blocks` shards.
    #[cfg(test)]
    pub(crate) fn new(id: u64, capacity_blocks: u64) -> Self {
        Self::with_profile(id, capacity_blocks, DeviceProfile::default())
    }

    /// Creates an online device with an explicit performance profile.
    pub(crate) fn with_profile(id: u64, capacity_blocks: u64, profile: DeviceProfile) -> Self {
        Self {
            id,
            capacity_blocks,
            state: DeviceState::Online,
            shards: HashMap::new(),
            stats: AtomicIoStats::default(),
            profile,
        }
    }

    /// The device's performance profile.
    #[must_use]
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// The device identifier (also its placement name).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Capacity in shard blocks.
    #[must_use]
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Number of shards currently stored.
    #[must_use]
    pub fn used_blocks(&self) -> u64 {
        self.shards.len() as u64
    }

    /// Utilisation in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.used_blocks() as f64 / self.capacity_blocks as f64
    }

    /// Current operational state.
    #[must_use]
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// A consistent-enough snapshot of the I/O counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Marks the device failed and drops its contents.
    pub(crate) fn fail(&mut self) {
        self.state = DeviceState::Failed;
        self.shards.clear();
    }

    pub(crate) fn store(&mut self, key: ShardKey, data: Vec<u8>) -> Result<(), VdsError> {
        if self.state == DeviceState::Failed {
            return Err(VdsError::DeviceFailed { id: self.id });
        }
        if !self.shards.contains_key(&key) && self.used_blocks() >= self.capacity_blocks {
            return Err(VdsError::OutOfSpace { id: self.id });
        }
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats
            .busy_us
            .fetch_add(self.profile.service_us(data.len()), Ordering::Relaxed);
        self.shards.insert(key, data);
        Ok(())
    }

    pub(crate) fn load(&self, key: &ShardKey) -> Option<Vec<u8>> {
        if self.state == DeviceState::Failed {
            return None;
        }
        let data = self.shards.get(key).cloned();
        if let Some(d) = &data {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_read
                .fetch_add(d.len() as u64, Ordering::Relaxed);
            self.stats
                .busy_us
                .fetch_add(self.profile.service_us(d.len()), Ordering::Relaxed);
        }
        data
    }

    /// Clears the I/O counters (e.g. between workload phases).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = AtomicIoStats::default();
    }

    pub(crate) fn remove(&mut self, key: &ShardKey) -> Option<Vec<u8>> {
        self.shards.remove(key)
    }

    pub(crate) fn has(&self, key: &ShardKey) -> bool {
        self.state == DeviceState::Online && self.shards.contains_key(&key.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut d = Device::new(1, 2);
        d.store((0, 0), vec![1]).unwrap();
        d.store((1, 0), vec![2]).unwrap();
        assert_eq!(
            d.store((2, 0), vec![3]),
            Err(VdsError::OutOfSpace { id: 1 })
        );
        // Overwrites of existing shards are always allowed.
        d.store((1, 0), vec![9]).unwrap();
        assert_eq!(d.load(&(1, 0)), Some(vec![9]));
    }

    #[test]
    fn failure_drops_contents_and_rejects_io() {
        let mut d = Device::new(7, 4);
        d.store((0, 0), vec![1, 2, 3]).unwrap();
        d.fail();
        assert_eq!(d.state(), DeviceState::Failed);
        assert_eq!(d.load(&(0, 0)), None);
        assert!(!d.has(&(0, 0)));
        assert_eq!(
            d.store((1, 0), vec![4]),
            Err(VdsError::DeviceFailed { id: 7 })
        );
    }

    #[test]
    fn stats_track_io() {
        let mut d = Device::new(2, 10);
        d.store((0, 0), vec![0; 16]).unwrap();
        d.store((1, 1), vec![0; 16]).unwrap();
        let _ = d.load(&(0, 0));
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 32);
        assert_eq!(s.bytes_read, 16);
        assert!((d.utilization() - 0.2).abs() < 1e-12);
    }
}
