//! Simulated block storage devices.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::VdsError;
use crate::profile::DeviceProfile;

/// Identifies one shard of one redundancy group on a device.
pub(crate) type ShardKey = (u64, usize); // (logical block address, shard index)

/// Operational state of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Serving reads and writes.
    Online,
    /// Crashed: contents are gone, I/O is rejected.
    Failed,
}

/// Per-device I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of shard reads served.
    pub reads: u64,
    /// Number of shard writes absorbed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Simulated time spent serving I/O, in microseconds (see
    /// [`DeviceProfile`]).
    pub busy_us: u64,
}

/// Relaxed-ordering atomic I/O counters, so serving a read needs only
/// `&self` — the counters are independent tallies, not synchronisation.
#[derive(Debug, Default)]
struct AtomicIoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    busy_us: AtomicU64,
}

impl AtomicIoStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            busy_us: self.busy_us.load(Ordering::Relaxed),
        }
    }
}

/// A simulated storage device holding shards of redundancy groups.
///
/// The device enforces its block capacity, tracks I/O statistics and can be
/// failed (losing all contents) to drive rebuild experiments. Reads take
/// `&self`: shard contents are immutable between writes and the I/O
/// counters are atomic, so concurrent readers need no exclusive access.
#[derive(Debug)]
pub struct Device {
    id: u64,
    capacity_blocks: u64,
    state: DeviceState,
    shards: HashMap<ShardKey, Vec<u8>>,
    stats: AtomicIoStats,
    profile: DeviceProfile,
}

impl Clone for Device {
    fn clone(&self) -> Self {
        let s = self.stats.snapshot();
        Self {
            id: self.id,
            capacity_blocks: self.capacity_blocks,
            state: self.state,
            shards: self.shards.clone(),
            stats: AtomicIoStats {
                reads: AtomicU64::new(s.reads),
                writes: AtomicU64::new(s.writes),
                bytes_read: AtomicU64::new(s.bytes_read),
                bytes_written: AtomicU64::new(s.bytes_written),
                busy_us: AtomicU64::new(s.busy_us),
            },
            profile: self.profile,
        }
    }
}

impl Device {
    /// Creates an online device able to hold `capacity_blocks` shards.
    #[cfg(test)]
    pub(crate) fn new(id: u64, capacity_blocks: u64) -> Self {
        Self::with_profile(id, capacity_blocks, DeviceProfile::default())
    }

    /// Creates an online device with an explicit performance profile.
    pub(crate) fn with_profile(id: u64, capacity_blocks: u64, profile: DeviceProfile) -> Self {
        Self {
            id,
            capacity_blocks,
            state: DeviceState::Online,
            shards: HashMap::new(),
            stats: AtomicIoStats::default(),
            profile,
        }
    }

    /// The device's performance profile.
    #[must_use]
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// The device identifier (also its placement name).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Capacity in shard blocks.
    #[must_use]
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Number of shards currently stored.
    #[must_use]
    pub fn used_blocks(&self) -> u64 {
        self.shards.len() as u64
    }

    /// Utilisation in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.used_blocks() as f64 / self.capacity_blocks as f64
    }

    /// Current operational state.
    #[must_use]
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// A consistent-enough snapshot of the I/O counters.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Marks the device failed and drops its contents.
    pub(crate) fn fail(&mut self) {
        self.state = DeviceState::Failed;
        self.shards.clear();
    }

    pub(crate) fn store(&mut self, key: ShardKey, data: Vec<u8>) -> Result<(), VdsError> {
        if self.state == DeviceState::Failed {
            return Err(VdsError::DeviceFailed { id: self.id });
        }
        if !self.shards.contains_key(&key) && self.used_blocks() >= self.capacity_blocks {
            return Err(VdsError::OutOfSpace { id: self.id });
        }
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats
            .busy_us
            .fetch_add(self.profile.service_us(data.len()), Ordering::Relaxed);
        self.shards.insert(key, data);
        Ok(())
    }

    /// Stores a shard by copying from a borrowed slice, reusing the
    /// existing allocation on overwrite. Semantically identical to
    /// [`Device::store`] (same capacity/failure checks, same counters) but
    /// allocation-free in the steady state of the fused write pipeline,
    /// where every block of a batch overwrites an existing shard.
    pub(crate) fn store_from(&mut self, key: ShardKey, data: &[u8]) -> Result<(), VdsError> {
        if self.state == DeviceState::Failed {
            return Err(VdsError::DeviceFailed { id: self.id });
        }
        // One hash probe for check + write: the occupancy for the capacity
        // check is read before the entry, which then serves both the
        // existence test and the slot.
        let used = self.shards.len() as u64;
        match self.shards.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = e.into_mut();
                slot.clear();
                slot.extend_from_slice(data);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if used >= self.capacity_blocks {
                    return Err(VdsError::OutOfSpace { id: self.id });
                }
                e.insert(data.to_vec());
            }
        }
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats
            .busy_us
            .fetch_add(self.profile.service_us(data.len()), Ordering::Relaxed);
        Ok(())
    }

    pub(crate) fn load(&self, key: &ShardKey) -> Option<Vec<u8>> {
        if self.state == DeviceState::Failed {
            return None;
        }
        let data = self.shards.get(key).cloned();
        if let Some(d) = &data {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_read
                .fetch_add(d.len() as u64, Ordering::Relaxed);
            self.stats
                .busy_us
                .fetch_add(self.profile.service_us(d.len()), Ordering::Relaxed);
        }
        data
    }

    /// Copies a shard into a caller-provided buffer, avoiding the `Vec`
    /// clone of [`Device::load`]. Returns `false` (without touching `out`
    /// or the counters) when the device is failed, the shard is absent, or
    /// the stored shard's length does not match `out` — the same cases in
    /// which `load` would return `None` or the caller could not use the
    /// data anyway.
    pub(crate) fn load_into(&self, key: &ShardKey, out: &mut [u8]) -> bool {
        if self.state == DeviceState::Failed {
            return false;
        }
        let Some(data) = self.shards.get(key) else {
            return false;
        };
        if data.len() != out.len() {
            debug_assert_eq!(data.len(), out.len(), "shard length mismatch");
            return false;
        }
        out.copy_from_slice(data);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats
            .busy_us
            .fetch_add(self.profile.service_us(data.len()), Ordering::Relaxed);
        true
    }

    /// Clears the I/O counters (e.g. between workload phases).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = AtomicIoStats::default();
    }

    pub(crate) fn remove(&mut self, key: &ShardKey) -> Option<Vec<u8>> {
        self.shards.remove(key)
    }

    pub(crate) fn has(&self, key: &ShardKey) -> bool {
        self.state == DeviceState::Online && self.shards.contains_key(&key.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut d = Device::new(1, 2);
        d.store((0, 0), vec![1]).unwrap();
        d.store((1, 0), vec![2]).unwrap();
        assert_eq!(
            d.store((2, 0), vec![3]),
            Err(VdsError::OutOfSpace { id: 1 })
        );
        // Overwrites of existing shards are always allowed.
        d.store((1, 0), vec![9]).unwrap();
        assert_eq!(d.load(&(1, 0)), Some(vec![9]));
    }

    #[test]
    fn failure_drops_contents_and_rejects_io() {
        let mut d = Device::new(7, 4);
        d.store((0, 0), vec![1, 2, 3]).unwrap();
        d.fail();
        assert_eq!(d.state(), DeviceState::Failed);
        assert_eq!(d.load(&(0, 0)), None);
        assert!(!d.has(&(0, 0)));
        assert_eq!(
            d.store((1, 0), vec![4]),
            Err(VdsError::DeviceFailed { id: 7 })
        );
    }

    #[test]
    fn store_from_matches_store_semantics() {
        let mut d = Device::new(1, 2);
        d.store_from((0, 0), &[1]).unwrap();
        d.store_from((1, 0), &[2]).unwrap();
        assert_eq!(
            d.store_from((2, 0), &[3]),
            Err(VdsError::OutOfSpace { id: 1 })
        );
        // Overwrites reuse the existing slot and are always allowed.
        d.store_from((1, 0), &[9, 9]).unwrap();
        assert_eq!(d.load(&(1, 0)), Some(vec![9, 9]));
        d.fail();
        assert_eq!(
            d.store_from((0, 0), &[4]),
            Err(VdsError::DeviceFailed { id: 1 })
        );
    }

    #[test]
    fn load_into_matches_load() {
        let mut d = Device::new(3, 4);
        d.store((5, 1), vec![7, 8, 9]).unwrap();
        let mut buf = [0u8; 3];
        assert!(d.load_into(&(5, 1), &mut buf));
        assert_eq!(buf, [7, 8, 9]);
        // Missing shard: untouched buffer, no read counted.
        let before = d.stats();
        let mut other = [1u8; 3];
        assert!(!d.load_into(&(6, 0), &mut other));
        assert_eq!(other, [1u8; 3]);
        assert_eq!(d.stats().reads, before.reads);
        // Counters match what load would have recorded.
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().bytes_read, 3);
    }

    #[test]
    fn stats_track_io() {
        let mut d = Device::new(2, 10);
        d.store((0, 0), vec![0; 16]).unwrap();
        d.store((1, 1), vec![0; 16]).unwrap();
        let _ = d.load(&(0, 0));
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 32);
        assert_eq!(s.bytes_read, 16);
        assert!((d.utilization() - 0.2).abs() < 1e-12);
    }
}
