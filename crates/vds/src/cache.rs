//! A sharded, epoch-versioned cache of computed placements.
//!
//! Redundant Share is deterministic per ball for a fixed bin set (Section 3
//! of the paper), so between membership changes the mapping
//! `lba -> [device; k]` is perfectly cacheable. Every membership change
//! ([`crate::StorageCluster::add_device`] / `remove_device` / `rebuild` /
//! `add_device_lazy`) bumps a *placement epoch*; cache entries carry the
//! epoch they were computed under and a lookup rejects a stale entry with
//! one integer comparison — no flush, no tombstones, O(1).
//!
//! Entries store the device ids inline in a fixed array
//! ([`MAX_CACHED_SHARDS`] slots, smallvec-style), so a cached placement
//! costs no heap allocation per entry and a hit copies at most 128 bytes.
//! The map is sharded by a hash of the block address and each shard is
//! guarded by its own mutex, so the concurrent read fan-out of
//! [`crate::StorageCluster::read_blocks`] does not serialise on one lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Widest redundancy group a cache entry can hold inline. Wider groups
/// (e.g. large LRCs) simply bypass the cache rather than spilling to the
/// heap — placement stays correct, just uncached.
pub const MAX_CACHED_SHARDS: usize = 16;

/// Number of independently locked map shards (power of two).
const CACHE_SHARDS: usize = 16;

/// Default bound on entries per map shard; at the bound the shard is
/// cleared wholesale (placements are recomputable, so bulk eviction is
/// cheaper than tracking recency).
const DEFAULT_PER_SHARD_CAPACITY: usize = 65_536;

/// Domain separator for the shard-selection hash.
const SHARD_DOMAIN: u64 = 0x504c_4143_4543_4148; // "PLACECAH"

/// A placement held in a fixed inline array — the zero-allocation carrier
/// for `lba -> [device; k]` lookups on the read/write path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InlinePlacement {
    len: u8,
    ids: [u64; MAX_CACHED_SHARDS],
}

impl InlinePlacement {
    /// Builds from a slice of at most [`MAX_CACHED_SHARDS`] device ids.
    pub(crate) fn from_slice(src: &[u64]) -> Self {
        debug_assert!(src.len() <= MAX_CACHED_SHARDS);
        let mut ids = [0u64; MAX_CACHED_SHARDS];
        ids[..src.len()].copy_from_slice(src);
        Self {
            len: src.len() as u8,
            ids,
        }
    }

    /// Starts an empty placement to be filled by a strategy emit loop.
    pub(crate) fn empty() -> Self {
        Self {
            len: 0,
            ids: [0u64; MAX_CACHED_SHARDS],
        }
    }

    /// Appends one device id (up to the inline capacity).
    pub(crate) fn push(&mut self, id: u64) {
        self.ids[self.len as usize] = id;
        self.len += 1;
    }

    /// The device ids in copy order.
    pub(crate) fn as_slice(&self) -> &[u64] {
        &self.ids[..self.len as usize]
    }
}

/// Counters describing cache effectiveness (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a current-epoch entry.
    pub hits: u64,
    /// Lookups that missed (absent entry or stale epoch).
    pub misses: u64,
    /// Entries currently resident across all shards.
    pub entries: u64,
}

/// One epoch-stamped cached placement.
#[derive(Debug, Clone, Copy)]
struct Entry {
    epoch: u64,
    placement: InlinePlacement,
}

/// The sharded placement cache. All methods take `&self`; interior
/// mutability is per-shard, so concurrent readers on different shards
/// never contend.
#[derive(Debug)]
pub(crate) struct PlacementCache {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    per_shard_capacity: usize,
}

impl PlacementCache {
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            per_shard_capacity: DEFAULT_PER_SHARD_CAPACITY,
        }
    }

    fn shard(&self, lba: u64) -> &Mutex<HashMap<u64, Entry>> {
        let ix = rshare_hash::stable_hash2(lba, SHARD_DOMAIN) as usize & (CACHE_SHARDS - 1);
        &self.shards[ix]
    }

    /// Looks up `lba`; only an entry stamped with exactly `epoch` counts.
    /// An entry from an *older* epoch is removed on sight — epochs only
    /// grow, so it can never become valid again.
    pub(crate) fn get(&self, lba: u64, epoch: u64) -> Option<InlinePlacement> {
        let mut map = self.shard(lba).lock().expect("cache shard poisoned");
        match map.get(&lba) {
            Some(e) if e.epoch == epoch => {
                let placement = e.placement;
                drop(map);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(placement)
            }
            Some(e) => {
                if e.epoch < epoch {
                    map.remove(&lba);
                }
                drop(map);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(map);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the placement of `lba` under `epoch`. A shard at capacity is
    /// cleared wholesale before the insert.
    pub(crate) fn put(&self, lba: u64, epoch: u64, placement: InlinePlacement) {
        let mut map = self.shard(lba).lock().expect("cache shard poisoned");
        if map.len() >= self.per_shard_capacity && !map.contains_key(&lba) {
            map.clear();
        }
        map.insert(lba, Entry { epoch, placement });
    }

    /// Drops every entry (used when the cache is disabled at runtime).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").len() as u64)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_only_on_matching_epoch() {
        let cache = PlacementCache::new();
        cache.put(7, 1, InlinePlacement::from_slice(&[10, 20]));
        assert!(cache.get(7, 0).is_none(), "older epoch must not hit");
        assert_eq!(cache.get(7, 1).unwrap().as_slice(), &[10, 20]);
        // Epoch bump: the entry is stale, rejected, and evicted.
        assert!(cache.get(7, 2).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0, "stale entry evicted on sight");
    }

    #[test]
    fn inline_placement_round_trips() {
        let ids: Vec<u64> = (0..MAX_CACHED_SHARDS as u64).collect();
        let p = InlinePlacement::from_slice(&ids);
        assert_eq!(p.as_slice(), ids.as_slice());
        let mut q = InlinePlacement::empty();
        for &id in &ids[..5] {
            q.push(id);
        }
        assert_eq!(q.as_slice(), &ids[..5]);
    }

    #[test]
    fn capacity_reset_keeps_cache_usable() {
        let mut cache = PlacementCache::new();
        cache.per_shard_capacity = 4;
        for lba in 0..1_000u64 {
            cache.put(lba, 3, InlinePlacement::from_slice(&[lba, lba + 1]));
        }
        let stats = cache.stats();
        assert!(stats.entries <= 4 * CACHE_SHARDS as u64);
        // The most recent insert of some shard is still retrievable.
        cache.put(5_000, 3, InlinePlacement::from_slice(&[1, 2]));
        assert_eq!(cache.get(5_000, 3).unwrap().as_slice(), &[1, 2]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = PlacementCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let lba = t * 1_000 + i;
                        cache.put(lba, 1, InlinePlacement::from_slice(&[lba]));
                        assert_eq!(cache.get(lba, 1).unwrap().as_slice(), &[lba]);
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 2_000);
    }
}
