//! Device performance profiles for simulated I/O timing.
//!
//! The placement layer decides *where* shards live; how long the resulting
//! I/O takes depends on each device's mechanics. [`DeviceProfile`] models a
//! device with a fixed per-operation overhead (seek/queue) plus a transfer
//! rate; devices accumulate simulated busy time, and the cluster exposes
//! the **makespan** of a workload — the busy time of its slowest device,
//! i.e. the completion time if all devices operate in parallel.
//!
//! This turns the paper's fairness claims into performance statements: a
//! capacity-fair placement balances completion time exactly when
//! throughput scales with capacity, and the `table_makespan` experiment
//! quantifies what happens when it does not.

/// Performance model of one device: fixed per-op latency + bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Fixed cost per shard operation, in microseconds (seek + queueing).
    pub per_op_us: u32,
    /// Sequential transfer rate in megabytes per second.
    pub mbytes_per_s: u32,
}

impl DeviceProfile {
    /// A 7200-rpm hard disk: ~8 ms seek, ~180 MB/s transfer.
    pub const HDD: Self = Self {
        per_op_us: 8_000,
        mbytes_per_s: 180,
    };

    /// A SATA solid-state drive: ~60 µs access, ~550 MB/s transfer.
    pub const SSD: Self = Self {
        per_op_us: 60,
        mbytes_per_s: 550,
    };

    /// An NVMe solid-state drive: ~15 µs access, ~3.5 GB/s transfer.
    pub const NVME: Self = Self {
        per_op_us: 15,
        mbytes_per_s: 3_500,
    };

    /// Creates a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `mbytes_per_s` is zero.
    #[must_use]
    pub fn new(per_op_us: u32, mbytes_per_s: u32) -> Self {
        assert!(mbytes_per_s > 0, "bandwidth must be positive");
        Self {
            per_op_us,
            mbytes_per_s,
        }
    }

    /// Simulated service time for one shard operation of `bytes` bytes,
    /// in microseconds.
    #[must_use]
    pub fn service_us(&self, bytes: usize) -> u64 {
        let transfer = bytes as u64 / u64::from(self.mbytes_per_s).max(1);
        u64::from(self.per_op_us) + transfer
    }
}

impl Default for DeviceProfile {
    /// Defaults to [`DeviceProfile::SSD`].
    fn default() -> Self {
        Self::SSD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_bytes() {
        let p = DeviceProfile::new(100, 1); // 1 MB/s => 1 µs per byte
        assert_eq!(p.service_us(0), 100);
        assert_eq!(p.service_us(4_096), 100 + 4_096);
        let fast = DeviceProfile::NVME;
        assert!(fast.service_us(1 << 20) < DeviceProfile::HDD.service_us(1 << 20));
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let bytes = 64 * 1024;
        assert!(DeviceProfile::NVME.service_us(bytes) < DeviceProfile::SSD.service_us(bytes));
        assert!(DeviceProfile::SSD.service_us(bytes) < DeviceProfile::HDD.service_us(bytes));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DeviceProfile::new(1, 0);
    }
}
