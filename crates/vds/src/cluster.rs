//! The virtualized storage cluster: placement-driven block storage with
//! migration, failure and rebuild.
//!
//! This is the "randomized block-level storage virtualization" of the
//! paper's abstract: a pool of heterogeneous devices presented as a single
//! block store. Every logical block is expanded into a redundancy group
//! (mirror copies or erasure shards) and shard `i` is stored on the i-th
//! device returned by the Redundant Share placement strategy — no
//! allocation tables, so the mapping is recomputable by anyone who knows
//! the device list.
//!
//! Membership changes rebuild the strategy and migrate exactly the shards
//! whose computed location changed; the adaptivity results of the paper
//! (Lemmas 3.2–3.5) bound that migration volume, and [`MigrationReport`]
//! measures it.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rshare_core::{
    Bin, BinId, BinSet, FastRedundantShare, PlacementError, PlacementStrategy, RedundantShare,
    MAX_INLINE_K,
};
use rshare_erasure::ErasureCode;
use rshare_obs::{family_header, sample_line, Registry, SpanTimer};

use crate::cache::{CacheStats, InlinePlacement, PlacementCache, MAX_CACHED_SHARDS};
use crate::device::{Device, DeviceState};
use crate::error::VdsError;
use crate::health::{ClusterMetrics, FairnessReport, HealthSnapshot};
use crate::migration::{BlockOps, MigrationPlan, MigrationReport, ShardMove};
use crate::profile::DeviceProfile;
use crate::redundancy::Redundancy;

/// Domain separator for the per-block read-copy rotation.
const READ_BALANCE_DOMAIN: u64 = 0x5245_4144; // "READ"

/// One successful read in this many is timed into the `read_latency_ns`
/// histogram. The read *counters* stay exact; only latency is sampled.
const LATENCY_SAMPLE: u64 = 64;

/// Default for [`ClusterBuilder::fast_strategy_threshold`]: clusters with
/// at least this many online devices route placement through the
/// precomputed O(k)-per-query [`FastRedundantShare`]; smaller clusters
/// keep the table-free O(n) scan, whose query cost is negligible at small
/// `n` and which avoids the O(k·n²) table build on every membership change.
const FAST_PLACEMENT_MIN_DEVICES: usize = 64;

/// Below this many blocks per available thread a batched read stays on the
/// calling thread: spawn/join overhead dwarfs the lookups.
const MIN_READS_PER_THREAD: usize = 64;

/// Blocks per batched-migration chunk. Bounds the transient memory of a
/// rebalance: at most this many blocks' shard payloads are in flight
/// between the gather and apply phases.
const MIGRATION_CHUNK_BLOCKS: usize = 4096;

/// Below this many migrating blocks per worker the gather phase stays on
/// the calling thread: spawn/join overhead dwarfs the block I/O.
const MIN_MIGRATE_BLOCKS_PER_THREAD: usize = 32;

/// The placement engine a cluster routes queries through, chosen by
/// cluster size (see [`ClusterBuilder::fast_strategy_threshold`]).
///
/// Both variants implement the paper's Redundant Share and are equally
/// fair, but their per-ball placements differ (the fast variant draws its
/// randomness from precomputed alias tables), so switching variants is a
/// strategy change like any other: the migration machinery diffs old and
/// new placements and moves what changed.
enum ClusterStrategy {
    /// Algorithm 4: O(n) per query, no precomputation.
    Scan(RedundantShare),
    /// Section 3.3: O(k) per query from precomputed Markov-chain tables.
    Fast(FastRedundantShare),
}

impl ClusterStrategy {
    /// Builds the right variant for `set`'s size: the precomputed engine
    /// once the set reaches `fast_min` bins, the scan below it.
    fn build(set: &BinSet, shards: usize, fast_min: usize) -> Result<Self, PlacementError> {
        if set.len() >= fast_min {
            Ok(Self::Fast(FastRedundantShare::new(set, shards)?))
        } else {
            Ok(Self::Scan(RedundantShare::new(set, shards)?))
        }
    }

    /// Places `ball`, returning its `k` device bins in copy order.
    fn place(&self, ball: u64) -> Vec<BinId> {
        match self {
            Self::Scan(s) => s.place(ball),
            Self::Fast(s) => s.place(ball),
        }
    }

    /// The replication degree (total shards per group).
    fn replication(&self) -> usize {
        match self {
            Self::Scan(s) => s.replication(),
            Self::Fast(s) => s.replication(),
        }
    }

    /// Places `ball`, writing raw device ids into `out` (cleared first).
    /// Groups of up to [`MAX_INLINE_K`] shards go through the inline
    /// strategy path and never touch the heap.
    fn place_ids_into(&self, ball: u64, out: &mut Vec<u64>) {
        out.clear();
        if self.replication() <= MAX_INLINE_K {
            let mut arr = [BinId(0); MAX_INLINE_K];
            let n = match self {
                Self::Scan(s) => s.place_into_inline(ball, &mut arr),
                Self::Fast(s) => s.place_into_inline(ball, &mut arr),
            };
            out.extend(arr[..n].iter().map(|b| b.raw()));
        } else {
            out.extend(self.place(ball).into_iter().map(|b| b.raw()));
        }
    }

    /// Places every ball in `balls`, appending `replication()` bins per
    /// ball to `out` (cleared first) as one flat stride-k run — the bulk
    /// API the migration planner and executor diff placements with.
    fn place_batch_into(&self, balls: &[u64], out: &mut Vec<BinId>) {
        match self {
            Self::Scan(s) => s.place_batch_into(balls, out),
            Self::Fast(s) => s.place_batch_into(balls, out),
        }
    }
}

/// An owned placement: inline (no heap) for groups that fit
/// [`MAX_CACHED_SHARDS`] ids, heap-backed beyond that. Dereferences to the
/// raw device-id slice, so call sites index and iterate it like a `Vec`.
enum PlacementIds {
    Inline(InlinePlacement),
    Heap(Vec<u64>),
}

impl std::ops::Deref for PlacementIds {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        match self {
            Self::Inline(p) => p.as_slice(),
            Self::Heap(v) => v,
        }
    }
}

/// Builder for a [`StorageCluster`].
///
/// # Example
///
/// ```
/// use rshare_vds::{Redundancy, StorageCluster};
///
/// let cluster = StorageCluster::builder()
///     .block_size(64)
///     .redundancy(Redundancy::Mirror { copies: 2 })
///     .device(0, 1_000)
///     .device(1, 2_000)
///     .build()
///     .unwrap();
/// assert_eq!(cluster.device_ids(), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    block_size: usize,
    redundancy: Redundancy,
    devices: Vec<(u64, u64, DeviceProfile)>,
    placement_cache: bool,
    fast_strategy_threshold: usize,
    migration_threads: usize,
    metrics: bool,
    metrics_registry: Option<Arc<Registry>>,
}

impl ClusterBuilder {
    /// Sets the logical block size in bytes (default 4096).
    #[must_use]
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes;
        self
    }

    /// Sets the redundancy scheme (default 2-way mirroring).
    #[must_use]
    pub fn redundancy(mut self, redundancy: Redundancy) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Enables or disables the placement cache (default enabled). With the
    /// cache off every lookup recomputes the placement — the configuration
    /// benchmarks use as the uncached baseline.
    #[must_use]
    pub fn placement_cache(mut self, enabled: bool) -> Self {
        self.placement_cache = enabled;
        self
    }

    /// Sets the minimum online-device count at which placement routes
    /// through the precomputed O(k)-per-query fast engine instead of the
    /// table-free O(n) scan (default 64). Lower it to force the fast
    /// engine on small clusters, or pass `usize::MAX` to pin the scan —
    /// the knob the migration benchmark sweeps.
    #[must_use]
    pub fn fast_strategy_threshold(mut self, min_devices: usize) -> Self {
        self.fast_strategy_threshold = min_devices;
        self
    }

    /// Caps the worker threads batched migration phases may use (default
    /// 0 = all available cores). `1` forces the batched-but-serial
    /// executor, the "planned" baseline of the migration benchmark.
    #[must_use]
    pub fn migration_threads(mut self, threads: usize) -> Self {
        self.migration_threads = threads;
        self
    }

    /// Enables or disables metrics recording (default enabled). Disabled,
    /// the hot paths skip every metric touch — the configuration the
    /// observability benchmark uses as its baseline.
    #[must_use]
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Publishes the cluster's series into a caller-owned registry
    /// (implies [`ClusterBuilder::metrics`]`(true)`) instead of a private
    /// one — e.g. to merge several clusters into one scrape surface.
    #[must_use]
    pub fn metrics_registry(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = true;
        self.metrics_registry = Some(registry);
        self
    }

    /// Adds a device with the given id and capacity in shard blocks,
    /// using the default ([`DeviceProfile::SSD`]) performance profile.
    #[must_use]
    pub fn device(self, id: u64, capacity_blocks: u64) -> Self {
        self.device_with_profile(id, capacity_blocks, DeviceProfile::default())
    }

    /// Adds a device with an explicit performance profile for simulated
    /// I/O timing.
    #[must_use]
    pub fn device_with_profile(
        mut self,
        id: u64,
        capacity_blocks: u64,
        profile: DeviceProfile,
    ) -> Self {
        self.devices.push((id, capacity_blocks, profile));
        self
    }

    /// Builds the cluster.
    ///
    /// # Errors
    ///
    /// * [`VdsError::InvalidConfig`] for a zero block size, a block size
    ///   incompatible with the erasure geometry, or duplicate device ids.
    /// * [`VdsError::Placement`] if fewer devices than shards exist.
    pub fn build(self) -> Result<StorageCluster, VdsError> {
        if self.block_size == 0 {
            return Err(VdsError::InvalidConfig {
                reason: "block size must be positive",
            });
        }
        let codec = self.redundancy.codec()?;
        let multiple = self.redundancy.block_multiple(codec.as_deref());
        if !self.block_size.is_multiple_of(multiple) {
            return Err(VdsError::InvalidConfig {
                reason: "block size must be divisible by the erasure geometry (data shards × symbol rows)",
            });
        }
        let mut devices = BTreeMap::new();
        for (id, cap, profile) in &self.devices {
            if devices
                .insert(*id, Device::with_profile(*id, *cap, *profile))
                .is_some()
            {
                return Err(VdsError::InvalidConfig {
                    reason: "duplicate device id",
                });
            }
        }
        let metrics = self.metrics.then(|| {
            ClusterMetrics::new(
                self.metrics_registry
                    .unwrap_or_else(|| Arc::new(Registry::new())),
            )
        });
        let mut cluster = StorageCluster {
            devices,
            redundancy: self.redundancy,
            codec,
            strategy: None,
            block_size: self.block_size,
            blocks: BTreeSet::new(),
            pending: None,
            cache: PlacementCache::new(),
            cache_enabled: self.placement_cache,
            placement_epoch: 0,
            placements_computed: AtomicU64::new(0),
            fast_threshold: self.fast_strategy_threshold,
            migration_threads: self.migration_threads,
            metrics,
        };
        cluster.strategy = Some(cluster.build_strategy()?);
        Ok(cluster)
    }
}

/// A pool of storage devices virtualized into one redundant block store.
pub struct StorageCluster {
    devices: BTreeMap<u64, Device>,
    redundancy: Redundancy,
    codec: Option<Box<dyn ErasureCode>>,
    strategy: Option<ClusterStrategy>,
    block_size: usize,
    /// Logical block addresses that have been written.
    blocks: BTreeSet<u64>,
    /// In-flight lazy migration, if any.
    pending: Option<PendingMigration>,
    /// Cache of target-strategy placements, keyed by block address and
    /// validated against [`StorageCluster::placement_epoch`].
    cache: PlacementCache,
    /// Whether lookups consult (and populate) the placement cache.
    cache_enabled: bool,
    /// Bumped on every strategy change (add/remove/rebuild/lazy add), which
    /// invalidates all cached placements in O(1).
    placement_epoch: u64,
    /// Number of placements actually computed by a strategy (cache hits
    /// don't count — the cache-coherence tests pin this).
    placements_computed: AtomicU64,
    /// Minimum online-device count for the fast placement engine
    /// ([`ClusterBuilder::fast_strategy_threshold`]).
    fast_threshold: usize,
    /// Worker-thread cap for batched migration (0 = all cores).
    migration_threads: usize,
    /// Metric handles, when recording is enabled. `None` means every hot
    /// path skips instrumentation entirely.
    metrics: Option<ClusterMetrics>,
}

/// Counters produced by one gather/apply migration execution.
#[derive(Default)]
struct ExecOutcome {
    /// Shards whose device changed.
    moved: u64,
    /// Shards reconstructed from redundancy.
    reconstructed: u64,
    /// Shards written to a device (moved + repaired-in-place).
    stored: u64,
}

/// State of an in-flight lazy migration.
struct PendingMigration {
    /// The placement in force for blocks not yet migrated.
    old_strategy: ClusterStrategy,
    /// Blocks whose shards still live at their old locations.
    remaining: BTreeSet<u64>,
}

impl std::fmt::Debug for StorageCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageCluster")
            .field("devices", &self.devices.len())
            .field("redundancy", &self.redundancy)
            .field("block_size", &self.block_size)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl StorageCluster {
    /// Starts building a cluster.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            block_size: 4096,
            redundancy: Redundancy::Mirror { copies: 2 },
            devices: Vec::new(),
            placement_cache: true,
            fast_strategy_threshold: FAST_PLACEMENT_MIN_DEVICES,
            migration_threads: 0,
            metrics: true,
            metrics_registry: None,
        }
    }

    /// The configured logical block size in bytes.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured redundancy scheme.
    #[must_use]
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// Ids of all devices (online and failed), ascending.
    #[must_use]
    pub fn device_ids(&self) -> Vec<u64> {
        self.devices.keys().copied().collect()
    }

    /// Read access to a device (for statistics and inspection).
    #[must_use]
    pub fn device(&self, id: u64) -> Option<&Device> {
        self.devices.get(&id)
    }

    /// Number of logical blocks stored.
    #[must_use]
    pub fn block_count(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn strategy(&self) -> &ClusterStrategy {
        // Invariant: `build()` installs a strategy before the cluster is
        // handed out, and every membership change replaces it atomically
        // (`Option::replace`), so the slot is never observably empty.
        self.strategy.as_ref().expect("strategy always present")
    }

    /// Builds a placement strategy over the online devices, weighted by
    /// their capacities.
    fn build_strategy(&self) -> Result<ClusterStrategy, VdsError> {
        let bins = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Online)
            .map(|d| Bin::new(d.id(), d.capacity_blocks()))
            .collect::<Result<Vec<_>, _>>()?;
        let set = BinSet::new(bins)?;
        Ok(ClusterStrategy::build(
            &set,
            self.redundancy.total_shards(),
            self.fast_threshold,
        )?)
    }

    /// The device ids shard 0, 1, … of `lba` are placed on.
    ///
    /// During a lazy migration this is the *effective* placement: blocks
    /// not yet migrated still resolve to their pre-change locations.
    #[must_use]
    pub fn placement(&self, lba: u64) -> Vec<u64> {
        self.effective_placement(lba).to_vec()
    }

    /// Like [`StorageCluster::placement`], but writes the device ids into a
    /// caller-provided buffer (cleared first) — the zero-allocation variant
    /// for callers issuing many lookups.
    pub fn placement_into(&self, lba: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.effective_placement(lba));
    }

    /// The effective placement of `lba`: the old strategy for blocks still
    /// awaiting lazy migration, the cached target placement otherwise.
    fn effective_placement(&self, lba: u64) -> PlacementIds {
        if let Some(p) = &self.pending {
            if p.remaining.contains(&lba) {
                // Old-strategy placements are never cached: they die with
                // the migration and would otherwise need their own epoch.
                return self.compute_placement(&p.old_strategy, lba);
            }
        }
        self.target_placement(lba)
    }

    /// The placement under the *target* (post-migration) configuration,
    /// served from the epoch-versioned cache when enabled.
    fn target_placement(&self, lba: u64) -> PlacementIds {
        if self.cache_enabled && self.redundancy.total_shards() <= MAX_CACHED_SHARDS {
            if let Some(hit) = self.cache.get(lba, self.placement_epoch) {
                return PlacementIds::Inline(hit);
            }
            let computed = self.compute_placement(self.strategy(), lba);
            if let PlacementIds::Inline(p) = &computed {
                self.cache.put(lba, self.placement_epoch, *p);
            }
            computed
        } else {
            self.compute_placement(self.strategy(), lba)
        }
    }

    /// Runs a strategy placement (the slow path a cache hit skips),
    /// returning the group inline whenever it fits.
    fn compute_placement(&self, strategy: &ClusterStrategy, lba: u64) -> PlacementIds {
        self.placements_computed.fetch_add(1, Ordering::Relaxed);
        let k = strategy.replication();
        if k <= MAX_INLINE_K {
            let mut arr = [BinId(0); MAX_INLINE_K];
            let n = match strategy {
                ClusterStrategy::Scan(s) => s.place_into_inline(lba, &mut arr),
                ClusterStrategy::Fast(s) => s.place_into_inline(lba, &mut arr),
            };
            let mut p = InlinePlacement::empty();
            for id in &arr[..n] {
                p.push(id.raw());
            }
            PlacementIds::Inline(p)
        } else {
            let ids: Vec<u64> = strategy.place(lba).into_iter().map(|b| b.raw()).collect();
            if ids.len() <= MAX_CACHED_SHARDS {
                PlacementIds::Inline(InlinePlacement::from_slice(&ids))
            } else {
                PlacementIds::Heap(ids)
            }
        }
    }

    /// Hit/miss/occupancy counters of the placement cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The current placement epoch (bumped by every strategy change).
    #[must_use]
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch
    }

    /// Total placements computed by a strategy since construction; lookups
    /// served from the cache do not increment this.
    #[must_use]
    pub fn placements_computed(&self) -> u64 {
        self.placements_computed.load(Ordering::Relaxed)
    }

    /// Enables or disables the placement cache at runtime. Disabling also
    /// drops all cached entries.
    pub fn set_placement_cache(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
    }

    /// Writes one logical block.
    ///
    /// # Errors
    ///
    /// * [`VdsError::WrongBlockSize`] if `data` is not exactly one block.
    /// * [`VdsError::OutOfSpace`] / [`VdsError::DeviceFailed`] from the
    ///   target devices.
    pub fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), VdsError> {
        if data.len() != self.block_size {
            return Err(VdsError::WrongBlockSize {
                expected: self.block_size,
                got: data.len(),
            });
        }
        let shards = self.redundancy.encode_block(data, self.codec.as_deref())?;
        // Writes always land at the target placement; if the block was
        // awaiting lazy migration, the overwrite completes it for free.
        let old_placement = match &mut self.pending {
            Some(p) => {
                if p.remaining.remove(&lba) {
                    Some(
                        p.old_strategy
                            .place(lba)
                            .into_iter()
                            .map(|id| id.raw())
                            .collect::<Vec<u64>>(),
                    )
                } else {
                    None
                }
            }
            None => None,
        };
        let placement = self.target_placement(lba);
        for (i, (shard, &dev_id)) in shards.into_iter().zip(placement.iter()).enumerate() {
            let device = self
                .devices
                .get_mut(&dev_id)
                .ok_or(VdsError::UnknownDevice { id: dev_id })?;
            device.store((lba, i), shard)?;
        }
        if let Some(old) = old_placement {
            for (i, dev_id) in old.iter().enumerate() {
                if *dev_id != placement[i] {
                    if let Some(d) = self.devices.get_mut(dev_id) {
                        d.remove(&(lba, i));
                    }
                }
            }
        }
        self.blocks.insert(lba);
        if let Some(m) = &self.metrics {
            m.writes_total.inc();
        }
        Ok(())
    }

    /// Writes many logical blocks through the fused stripe pipeline:
    /// encode → place → shard-store per block. Data shards are stored
    /// straight from `data` (never copied into owned shards —
    /// [`rshare_erasure::ErasureCode::encode_parity`]), parity scratch is
    /// hoisted out of the loop, and device-side overwrites recycle the
    /// stored `Vec`, so the steady state allocates nothing per block.
    /// `data` is the concatenation of the blocks, in `lbas` order.
    ///
    /// Cluster state, placements, metrics and per-device I/O counters are
    /// identical to calling [`StorageCluster::write_block`] once per block
    /// (proptest-pinned); only the allocation profile differs. Encode
    /// parities stream through the tiered GF(256) kernels
    /// ([`rshare_erasure::gf256::kernel_tier`]).
    ///
    /// # Errors
    ///
    /// * [`VdsError::WrongBlockSize`] if `data` is not exactly
    ///   `lbas.len()` blocks.
    /// * [`VdsError::OutOfSpace`] / [`VdsError::DeviceFailed`] from the
    ///   target devices; blocks before the failing one remain written,
    ///   exactly as with a per-block loop.
    pub fn write_blocks(&mut self, lbas: &[u64], data: &[u8]) -> Result<(), VdsError> {
        let expected = lbas.len() * self.block_size;
        if data.len() != expected {
            return Err(VdsError::WrongBlockSize {
                expected,
                got: data.len(),
            });
        }
        if lbas.is_empty() {
            return Ok(());
        }
        // Data shards are borrowed straight out of `data`; only parity is
        // materialized, into scratch that lives across the whole batch
        // (`encode_parity` resizes it in place each iteration).
        let mut parity: Vec<Vec<u8>> =
            vec![Vec::new(); self.codec.as_deref().map_or(0, ErasureCode::parity_shards)];
        let mut refs: Vec<&[u8]> = Vec::new();
        let mut old_ids: Vec<u64> = Vec::new();
        for (&lba, block) in lbas.iter().zip(data.chunks_exact(self.block_size)) {
            refs.clear();
            if let Some(codec) = self.codec.as_deref() {
                let shard_len = self.block_size / codec.data_shards();
                refs.extend(block.chunks_exact(shard_len));
                codec.encode_parity(&refs, &mut parity)?;
            } else {
                // Mirroring: every copy is the block itself.
                refs.extend(std::iter::repeat_n(block, self.redundancy.total_shards()));
            }
            // Writes always land at the target placement; if the block was
            // awaiting lazy migration, the overwrite completes it for free.
            let completes_migration = if let Some(p) = &mut self.pending {
                if p.remaining.remove(&lba) {
                    old_ids.clear();
                    old_ids.extend(p.old_strategy.place(lba).into_iter().map(|id| id.raw()));
                    true
                } else {
                    false
                }
            } else {
                false
            };
            let placement = self.target_placement(lba);
            let total = refs.len() + parity.len();
            for (i, &dev_id) in placement.iter().enumerate().take(total) {
                let shard: &[u8] = if i < refs.len() {
                    refs[i]
                } else {
                    &parity[i - refs.len()]
                };
                let device = self
                    .devices
                    .get_mut(&dev_id)
                    .ok_or(VdsError::UnknownDevice { id: dev_id })?;
                device.store_from((lba, i), shard)?;
            }
            if completes_migration {
                for (i, dev_id) in old_ids.iter().enumerate() {
                    if *dev_id != placement[i] {
                        if let Some(d) = self.devices.get_mut(dev_id) {
                            d.remove(&(lba, i));
                        }
                    }
                }
            }
            self.blocks.insert(lba);
            if let Some(m) = &self.metrics {
                m.writes_total.inc();
            }
        }
        Ok(())
    }

    /// Reads one logical block, touching as few devices as possible:
    /// mirrored blocks read a single copy (rotated over the copies so read
    /// load follows capacity — the paper's "x% of the requests" fairness),
    /// erasure-coded blocks read only the data shards. Missing shards
    /// degrade transparently to reconstruction.
    ///
    /// # Errors
    ///
    /// * [`VdsError::BlockNotFound`] if the block was never written.
    /// * [`VdsError::DataLoss`] if too many shards are gone.
    pub fn read_block(&self, lba: u64) -> Result<Vec<u8>, VdsError> {
        let mut block = vec![0u8; self.block_size];
        self.read_block_into(lba, &mut block)?;
        Ok(block)
    }

    /// Reads one logical block into a caller-provided buffer — the
    /// zero-allocation variant of [`StorageCluster::read_block`]: the
    /// common path copies shards straight into `buf` with no per-read
    /// `Vec` allocation. Semantics, metrics and device counters are
    /// identical to `read_block` (which delegates here).
    ///
    /// # Errors
    ///
    /// * [`VdsError::WrongBlockSize`] if `buf` is not exactly one block.
    /// * Otherwise the same conditions as [`StorageCluster::read_block`].
    pub fn read_block_into(&self, lba: u64, buf: &mut [u8]) -> Result<(), VdsError> {
        if buf.len() != self.block_size {
            return Err(VdsError::WrongBlockSize {
                expected: self.block_size,
                got: buf.len(),
            });
        }
        let Some(m) = &self.metrics else {
            return self.read_into_inner(lba, buf).map(|_| ());
        };
        // Counters are exact; the latency histogram samples one read in
        // [`LATENCY_SAMPLE`] — timing every read would spend two
        // monotonic-clock reads on a cached path that otherwise costs a
        // few atomic increments. The span records when it drops at the
        // end of the success path; failed reads cancel it.
        let span = (m.reads_total.get() % LATENCY_SAMPLE == 0)
            .then(|| SpanTimer::new(&*m.read_latency_ns));
        match self.read_into_inner(lba, buf) {
            Ok(degraded) => {
                m.reads_total.inc();
                if degraded {
                    m.degraded_reads_total.inc();
                }
                Ok(())
            }
            Err(e) => {
                if let Some(span) = span {
                    span.cancel();
                }
                Err(e)
            }
        }
    }

    /// The uninstrumented read path. The boolean is `true` when the read
    /// was *degraded*: served from a non-preferred mirror copy or via
    /// erasure reconstruction.
    fn read_into_inner(&self, lba: u64, buf: &mut [u8]) -> Result<bool, VdsError> {
        if !self.blocks.contains(&lba) {
            return Err(VdsError::BlockNotFound { lba });
        }
        // Cached (and, on miss, inline-computed) placement: the lookup
        // itself allocates nothing for groups that fit the inline array.
        let placement = self.effective_placement(lba);
        let k = placement.len();
        match self.redundancy {
            Redundancy::Mirror { .. } => {
                // Deterministic per-block copy preference: each block pins
                // a copy index, so over many blocks every bin serves reads
                // in proportion to the copies it holds (∝ capacity).
                let preferred =
                    (rshare_hash::stable_hash2(lba, READ_BALANCE_DOMAIN) % k as u64) as usize;
                for step in 0..k {
                    let i = (preferred + step) % k;
                    if self
                        .devices
                        .get(&placement[i])
                        .is_some_and(|d| d.load_into(&(lba, i), buf))
                    {
                        return Ok(step > 0);
                    }
                }
                Err(VdsError::DataLoss { lba })
            }
            _ => {
                // `build()` creates a codec for every erasure scheme; a
                // missing one here is a bug, surfaced as a typed error
                // rather than a panic on the public read path.
                let codec = self.codec.as_deref().ok_or(VdsError::Internal {
                    reason: "erasure redundancy configured without a codec",
                })?;
                let d = codec.data_shards();
                let shard_len = self.block_size / d;
                // Fast path: copy each data shard straight into its stripe
                // segment of `buf` — no per-shard `Vec`.
                let mut loaded = 0;
                while loaded < d {
                    let seg = &mut buf[loaded * shard_len..(loaded + 1) * shard_len];
                    if self
                        .devices
                        .get(&placement[loaded])
                        .is_some_and(|dev| dev.load_into(&(lba, loaded), seg))
                    {
                        loaded += 1;
                    } else {
                        break;
                    }
                }
                if loaded == d {
                    return Ok(false);
                }
                // Degraded read: keep what the fast path already pulled,
                // fetch the remaining data + parity shards, reconstruct.
                // Device read counters stay identical to the fast path
                // attempting every shard once: the prefix is not re-read.
                let mut shards: Vec<Option<Vec<u8>>> = Vec::with_capacity(k);
                for i in 0..k {
                    if i < loaded {
                        shards.push(Some(buf[i * shard_len..(i + 1) * shard_len].to_vec()));
                    } else {
                        shards.push(
                            self.devices
                                .get(&placement[i])
                                .and_then(|dev| dev.load(&(lba, i))),
                        );
                    }
                }
                let data = self
                    .redundancy
                    .decode_block(shards, self.codec.as_deref(), lba)?;
                buf.copy_from_slice(&data);
                Ok(true)
            }
        }
    }

    /// Reads many logical blocks, fanning the lookups out over scoped OS
    /// threads. Returns the blocks in `lbas` order, or the first error in
    /// that order.
    ///
    /// Reads need only `&self` — shard contents are immutable between
    /// writes and the per-device I/O counters are atomic — so the fan-out
    /// shares the cluster without locking. Batches too small to amortise
    /// thread spawn cost run inline on the calling thread. Every read is
    /// served through [`StorageCluster::read_block_into`], so the only
    /// per-block allocation is the returned block itself.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StorageCluster::read_block`], per block.
    pub fn read_blocks(&self, lbas: &[u64]) -> Result<Vec<Vec<u8>>, VdsError> {
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(lbas.len() / MIN_READS_PER_THREAD)
            .max(1);
        if threads == 1 {
            return lbas.iter().map(|&lba| self.read_block(lba)).collect();
        }
        let chunk = lbas.len().div_ceil(threads);
        let mut results: Vec<Result<Vec<u8>, VdsError>> = Vec::with_capacity(lbas.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = lbas[chunk..]
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|&lba| self.read_block(lba))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // The first shard runs on the calling thread.
            results.extend(lbas[..chunk].iter().map(|&lba| self.read_block(lba)));
            for handle in handles {
                results.extend(handle.join().expect("read worker panicked"));
            }
        });
        results.into_iter().collect()
    }

    /// Adds a device and migrates the shards whose computed placement
    /// changed.
    ///
    /// # Errors
    ///
    /// [`VdsError::InvalidConfig`] for a duplicate id; placement and I/O
    /// errors from the migration.
    pub fn add_device(
        &mut self,
        id: u64,
        capacity_blocks: u64,
    ) -> Result<MigrationReport, VdsError> {
        self.add_device_with_profile(id, capacity_blocks, DeviceProfile::default())
    }

    /// Adds a device with an explicit performance profile and migrates the
    /// shards whose computed placement changed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StorageCluster::add_device`].
    pub fn add_device_with_profile(
        &mut self,
        id: u64,
        capacity_blocks: u64,
        profile: DeviceProfile,
    ) -> Result<MigrationReport, VdsError> {
        if self.devices.contains_key(&id) {
            return Err(VdsError::InvalidConfig {
                reason: "duplicate device id",
            });
        }
        self.devices
            .insert(id, Device::with_profile(id, capacity_blocks, profile));
        let new_strategy = self.build_strategy()?;
        self.replace_strategy(new_strategy)
    }

    /// Adds a device *lazily*: the placement switches immediately, but no
    /// data moves — blocks keep resolving to their old locations until
    /// they are migrated by [`StorageCluster::migrate_step`] (or rewritten,
    /// which completes their migration for free). Returns the number of
    /// blocks awaiting migration.
    ///
    /// Only computed placement makes this cheap: both the old and the new
    /// mapping are pure functions, so serving from either side needs no
    /// per-block forwarding table.
    ///
    /// # Errors
    ///
    /// Same validation as [`StorageCluster::add_device`]. Any migration
    /// already in flight is drained first.
    pub fn add_device_lazy(&mut self, id: u64, capacity_blocks: u64) -> Result<u64, VdsError> {
        if self.devices.contains_key(&id) {
            return Err(VdsError::InvalidConfig {
                reason: "duplicate device id",
            });
        }
        self.drain_pending()?;
        self.devices.insert(
            id,
            Device::with_profile(id, capacity_blocks, DeviceProfile::default()),
        );
        let new_strategy = self.build_strategy()?;
        let old_strategy = self
            .strategy
            .replace(new_strategy)
            .expect("strategy always present");
        // The target mapping changed, so cached placements are stale even
        // though no data has moved yet; pending blocks additionally bypass
        // the cache until migrated (see `effective_placement`).
        self.placement_epoch += 1;
        let remaining: BTreeSet<u64> = self.blocks.iter().copied().collect();
        let count = remaining.len() as u64;
        self.pending = Some(PendingMigration {
            old_strategy,
            remaining,
        });
        Ok(count)
    }

    /// Migrates up to `max_blocks` pending blocks to their target
    /// placement, returning what moved. With no migration in flight this
    /// is a no-op reporting zeros.
    ///
    /// # Errors
    ///
    /// Device I/O errors and [`VdsError::DataLoss`] if a pending block
    /// became unrecoverable. If a device failed mid-migration the step can
    /// return [`VdsError::DeviceFailed`]; run [`StorageCluster::rebuild`],
    /// which absorbs the remaining migration.
    pub fn migrate_step(&mut self, max_blocks: u64) -> Result<MigrationReport, VdsError> {
        let mut report = MigrationReport::default();
        // With nothing in flight, return before setting up any scratch
        // state — idle callers polling the migration pay nothing.
        if self.pending.is_none() {
            return Ok(report);
        }
        // Scratch buffers reused across blocks, so a migration step
        // allocates nothing per block beyond the shard payloads.
        let mut old_placement: Vec<u64> = Vec::new();
        let mut shards: Vec<Option<Vec<u8>>> = Vec::new();
        for _ in 0..max_blocks {
            let Some(pending) = &mut self.pending else {
                break;
            };
            let Some(&lba) = pending.remaining.iter().next() else {
                self.pending = None;
                break;
            };
            pending.remaining.remove(&lba);
            pending.old_strategy.place_ids_into(lba, &mut old_placement);
            let new_placement = self.target_placement(lba);
            report.blocks += 1;
            report.shards_total += new_placement.len() as u64;
            if old_placement.as_slice() == &*new_placement {
                continue;
            }
            shards.clear();
            shards.extend(
                old_placement.iter().enumerate().map(|(i, dev_id)| {
                    self.devices.get_mut(dev_id).and_then(|d| d.load(&(lba, i)))
                }),
            );
            let missing = shards.iter().filter(|s| s.is_none()).count();
            if missing > 0 {
                report.shards_reconstructed += missing as u64;
                self.reconstruct_group(&mut shards, lba)?;
            }
            for (i, slot) in shards.iter_mut().enumerate() {
                // `reconstruct_group` either fills every `None` slot or
                // errors out above; a hole here is unreachable.
                let shard = slot.take().expect("complete after reconstruction");
                let (old_dev, new_dev) = (old_placement[i], new_placement[i]);
                if old_dev != new_dev {
                    report.shards_moved += 1;
                    if let Some(d) = self.devices.get_mut(&old_dev) {
                        d.remove(&(lba, i));
                    }
                }
                let target = self
                    .devices
                    .get_mut(&new_dev)
                    .ok_or(VdsError::UnknownDevice { id: new_dev })?;
                if old_dev != new_dev || !target.has(&(lba, i)) {
                    target.store((lba, i), shard)?;
                }
            }
        }
        if let Some(p) = &self.pending {
            if p.remaining.is_empty() {
                self.pending = None;
            }
        }
        if let Some(m) = &self.metrics {
            m.migration_moves_executed_total.add(report.shards_moved);
            m.shards_reconstructed_total
                .add(report.shards_reconstructed);
        }
        Ok(report)
    }

    /// Blocks still awaiting lazy migration.
    #[must_use]
    pub fn pending_blocks(&self) -> u64 {
        self.pending
            .as_ref()
            .map_or(0, |p| p.remaining.len() as u64)
    }

    /// Migrates up to `max_blocks` pending blocks through the batched
    /// parallel executor: old and new placements are computed in bulk with
    /// the stride-k batch API, unchanged blocks are skipped without any
    /// device I/O, and the changed ones are gathered concurrently (scoped
    /// threads over `&self`) and applied by per-device writers. The
    /// bounded budget keeps lazy migration incremental; with no migration
    /// in flight this is a no-op reporting zeros.
    ///
    /// Semantically identical to calling [`StorageCluster::migrate_step`]
    /// with the same budget — only faster.
    ///
    /// # Errors
    ///
    /// Device I/O errors and [`VdsError::DataLoss`] if a pending block
    /// became unrecoverable. Blocks of a failed chunk stay pending; if a
    /// device failed mid-migration run [`StorageCluster::rebuild`], which
    /// absorbs the remaining migration.
    pub fn migrate_batch(&mut self, max_blocks: u64) -> Result<MigrationReport, VdsError> {
        let mut report = MigrationReport::default();
        let Some(mut pending) = self.pending.take() else {
            return Ok(report);
        };
        let take = max_blocks.min(pending.remaining.len() as u64) as usize;
        let lbas: Vec<u64> = pending.remaining.iter().copied().take(take).collect();
        let mut old_ids: Vec<BinId> = Vec::new();
        let mut old_flat: Vec<u64> = Vec::new();
        let mut failure = None;
        for chunk in lbas.chunks(MIGRATION_CHUNK_BLOCKS) {
            pending.old_strategy.place_batch_into(chunk, &mut old_ids);
            old_flat.clear();
            old_flat.extend(old_ids.iter().map(|b| b.raw()));
            match self.rebalance_chunk(chunk, &old_flat, false) {
                Ok(r) => {
                    report.merge(r);
                    // The chunk is an ascending prefix of the pending set,
                    // so one O(log n) split drops it instead of a
                    // per-block remove.
                    let bound = chunk.last().expect("chunks are non-empty") + 1;
                    pending.remaining = pending.remaining.split_off(&bound);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if !pending.remaining.is_empty() {
            self.pending = Some(pending);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Drains the entire in-flight lazy migration through the batched
    /// parallel executor ([`StorageCluster::migrate_batch`] without a
    /// budget). With no migration in flight this is a no-op.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StorageCluster::migrate_batch`].
    pub fn rebalance(&mut self) -> Result<MigrationReport, VdsError> {
        self.migrate_batch(u64::MAX)
    }

    /// Completes any in-flight lazy migration synchronously.
    fn drain_pending(&mut self) -> Result<(), VdsError> {
        while self.pending.is_some() {
            self.migrate_batch(u64::MAX)?;
        }
        Ok(())
    }

    /// Batch-computes the *effective* placement of every `lbas[j]` into
    /// `out` as one flat stride-k run of raw device ids, bypassing the
    /// per-block cache: blocks still awaiting lazy migration resolve
    /// through the old strategy, everything else through the target
    /// strategy in bulk.
    fn effective_flat(&self, lbas: &[u64], out: &mut Vec<u64>) {
        let k = self.redundancy.total_shards();
        out.clear();
        match &self.pending {
            Some(p) => {
                out.resize(lbas.len() * k, 0);
                let mut current: Vec<u64> = Vec::with_capacity(lbas.len());
                let mut current_pos: Vec<usize> = Vec::with_capacity(lbas.len());
                let mut scratch: Vec<u64> = Vec::new();
                for (j, &lba) in lbas.iter().enumerate() {
                    if p.remaining.contains(&lba) {
                        p.old_strategy.place_ids_into(lba, &mut scratch);
                        out[j * k..(j + 1) * k].copy_from_slice(&scratch);
                    } else {
                        current.push(lba);
                        current_pos.push(j);
                    }
                }
                let mut ids: Vec<BinId> = Vec::with_capacity(current.len() * k);
                self.strategy().place_batch_into(&current, &mut ids);
                for (m, &j) in current_pos.iter().enumerate() {
                    let group = &ids[m * k..(m + 1) * k];
                    for (slot, id) in out[j * k..(j + 1) * k].iter_mut().zip(group) {
                        *slot = id.raw();
                    }
                }
            }
            None => {
                let mut ids: Vec<BinId> = Vec::with_capacity(lbas.len() * k);
                self.strategy().place_batch_into(lbas, &mut ids);
                out.extend(ids.iter().map(|b| b.raw()));
            }
        }
    }

    /// Worker count for a migration phase over `work_items` blocks: the
    /// configured cap (or every available core), scaled down so each
    /// worker keeps at least [`MIN_MIGRATE_BLOCKS_PER_THREAD`] blocks.
    fn worker_threads(&self, work_items: usize) -> usize {
        let cap = if self.migration_threads > 0 {
            self.migration_threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        cap.min(work_items / MIN_MIGRATE_BLOCKS_PER_THREAD).max(1)
    }

    /// Migrates one chunk of blocks from their `old_flat` placements (flat
    /// stride-k device ids, parallel to `lbas`) to the current target
    /// strategy. Blocks whose placement is unchanged are skipped without
    /// touching any device — unless `repair_unchanged` is set, in which
    /// case blocks missing a shard at an unchanged location are re-stored
    /// (the membership-change path repairs latent losses in passing).
    fn rebalance_chunk(
        &mut self,
        lbas: &[u64],
        old_flat: &[u64],
        repair_unchanged: bool,
    ) -> Result<MigrationReport, VdsError> {
        let k = self.redundancy.total_shards();
        let mut report = MigrationReport {
            blocks: lbas.len() as u64,
            shards_total: (lbas.len() * k) as u64,
            ..MigrationReport::default()
        };
        let mut new_ids: Vec<BinId> = Vec::with_capacity(lbas.len() * k);
        self.strategy().place_batch_into(lbas, &mut new_ids);
        let new_flat: Vec<u64> = new_ids.iter().map(|b| b.raw()).collect();
        let mut work: Vec<usize> = Vec::new();
        for (j, &lba) in lbas.iter().enumerate() {
            let old = &old_flat[j * k..(j + 1) * k];
            let new = &new_flat[j * k..(j + 1) * k];
            if old != new
                || (repair_unchanged
                    && new
                        .iter()
                        .enumerate()
                        .any(|(i, id)| !self.devices.get(id).is_some_and(|d| d.has(&(lba, i)))))
            {
                work.push(j);
            }
        }
        if work.is_empty() {
            return Ok(report);
        }
        let outcome = self.execute_block_ops(lbas, &work, old_flat, &new_flat)?;
        report.shards_moved = outcome.moved;
        report.shards_reconstructed = outcome.reconstructed;
        Ok(report)
    }

    /// Read-only gather for one migrating block: loads the group's shards
    /// from their `old` devices, reconstructs any missing ones (once per
    /// stripe), and expands the block into device-level remove/store ops
    /// against `new`. Takes `&self` — shard payloads are immutable between
    /// writes and the device I/O counters are atomic — so gathers fan out
    /// over scoped threads like batched reads do.
    fn gather_block(&self, lba: u64, old: &[u64], new: &[u64]) -> Result<BlockOps, VdsError> {
        let mut shards: Vec<Option<Vec<u8>>> = old
            .iter()
            .enumerate()
            .map(|(i, dev_id)| self.devices.get(dev_id).and_then(|d| d.load(&(lba, i))))
            .collect();
        let missing = shards.iter().filter(|s| s.is_none()).count() as u64;
        if missing > 0 {
            self.reconstruct_group(&mut shards, lba)?;
        }
        let mut ops = BlockOps {
            reconstructed: missing,
            ..BlockOps::default()
        };
        for (i, slot) in shards.iter_mut().enumerate() {
            // `reconstruct_group` either fills every `None` slot or errors
            // out above; a hole here is unreachable.
            let shard = slot.take().expect("complete after reconstruction");
            let (old_dev, new_dev) = (old[i], new[i]);
            if old_dev != new_dev {
                ops.moved += 1;
                ops.removes.push((old_dev, lba, i));
                ops.stores.push((new_dev, lba, i, shard));
            } else if !self.devices.get(&new_dev).is_some_and(|d| d.has(&(lba, i))) {
                ops.stores.push((new_dev, lba, i, shard));
            }
        }
        Ok(ops)
    }

    /// Applies one device's migration queue: removes first, so freed
    /// capacity is visible to this plan's own stores on the same device.
    fn apply_queue(
        dev: &mut Device,
        removes: Vec<(u64, usize)>,
        stores: Vec<(u64, usize, Vec<u8>)>,
    ) -> Result<(), VdsError> {
        for (lba, copy) in removes {
            dev.remove(&(lba, copy));
        }
        for (lba, copy, data) in stores {
            dev.store((lba, copy), data)?;
        }
        Ok(())
    }

    /// The two-phase migration executor. Phase 1 (gather, parallel over
    /// `&self`): each block in `work` (indices into `lbas`) loads its
    /// group once, reconstructs what's missing, and emits device-level
    /// ops. Phase 2 (apply, parallel over disjoint `&mut Device`s): ops
    /// are bucketed per device and handed to workers sharded by device,
    /// so no two workers ever touch the same device.
    fn execute_block_ops(
        &mut self,
        lbas: &[u64],
        work: &[usize],
        old_flat: &[u64],
        new_flat: &[u64],
    ) -> Result<ExecOutcome, VdsError> {
        let k = self.redundancy.total_shards();
        let threads = self.worker_threads(work.len());
        let mut gathered: Vec<Result<BlockOps, VdsError>> = Vec::with_capacity(work.len());
        {
            let this: &StorageCluster = self;
            let gather = |j: usize| {
                this.gather_block(
                    lbas[j],
                    &old_flat[j * k..(j + 1) * k],
                    &new_flat[j * k..(j + 1) * k],
                )
            };
            if threads <= 1 {
                gathered.extend(work.iter().map(|&j| gather(j)));
            } else {
                let chunk = work.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = work[chunk..]
                        .chunks(chunk)
                        .map(|shard| {
                            scope
                                .spawn(move || shard.iter().map(|&j| gather(j)).collect::<Vec<_>>())
                        })
                        .collect();
                    // The first shard runs on the calling thread.
                    gathered.extend(work[..chunk].iter().map(|&j| gather(j)));
                    for handle in handles {
                        gathered.extend(handle.join().expect("migration gather panicked"));
                    }
                });
            }
        }
        let mut outcome = ExecOutcome::default();
        type Queue = (Vec<(u64, usize)>, Vec<(u64, usize, Vec<u8>)>);
        let mut queues: BTreeMap<u64, Queue> = BTreeMap::new();
        for result in gathered {
            let ops = result?;
            outcome.moved += ops.moved;
            outcome.reconstructed += ops.reconstructed;
            outcome.stored += ops.stores.len() as u64;
            for (dev, lba, copy) in ops.removes {
                queues.entry(dev).or_default().0.push((lba, copy));
            }
            for (dev, lba, copy, data) in ops.stores {
                queues.entry(dev).or_default().1.push((lba, copy, data));
            }
        }
        // Stores must land on a live device; removes tolerate a vanished
        // one (a shard's old home may already be failed or dropped).
        for (&dev, (_, stores)) in &queues {
            if !stores.is_empty() && !self.devices.contains_key(&dev) {
                return Err(VdsError::UnknownDevice { id: dev });
            }
        }
        let mut bundles: Vec<(&mut Device, Queue)> = self
            .devices
            .iter_mut()
            .filter_map(|(id, d)| queues.remove(id).map(|q| (d, q)))
            .collect();
        let threads = threads.min(bundles.len()).max(1);
        if threads <= 1 {
            for (dev, (removes, stores)) in bundles {
                Self::apply_queue(dev, removes, stores)?;
            }
        } else {
            // Longest-queue-first partition, so workers see similar loads.
            bundles.sort_by_key(|(_, (r, s))| std::cmp::Reverse(r.len() + s.len()));
            let mut parts: Vec<Vec<(&mut Device, Queue)>> =
                (0..threads).map(|_| Vec::new()).collect();
            let mut loads = vec![0usize; threads];
            for bundle in bundles {
                let weight = bundle.1 .0.len() + bundle.1 .1.len();
                let lightest = (0..threads).min_by_key(|&i| loads[i]).expect("non-empty");
                loads[lightest] += weight;
                parts[lightest].push(bundle);
            }
            let results: Vec<Result<(), VdsError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .map(|part| {
                        scope.spawn(move || {
                            for (dev, (removes, stores)) in part {
                                Self::apply_queue(dev, removes, stores)?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("migration apply panicked"))
                    .collect()
            });
            for result in results {
                result?;
            }
        }
        if let Some(m) = &self.metrics {
            m.migration_moves_executed_total.add(outcome.moved);
            m.shards_reconstructed_total.add(outcome.reconstructed);
        }
        Ok(outcome)
    }

    /// Gracefully removes a device, migrating its shards away first.
    ///
    /// # Errors
    ///
    /// * [`VdsError::UnknownDevice`] if no such device exists.
    /// * Placement errors if too few devices would remain.
    pub fn remove_device(&mut self, id: u64) -> Result<MigrationReport, VdsError> {
        if !self.devices.contains_key(&id) {
            return Err(VdsError::UnknownDevice { id });
        }
        // Build the post-removal strategy first so a placement failure
        // (too few devices) leaves the cluster untouched; the leaving
        // device stays in the pool during the migration so its shards are
        // read (drained) rather than reconstructed.
        let bins = self
            .devices
            .values()
            .filter(|d| d.id() != id && d.state() == DeviceState::Online)
            .map(|d| Bin::new(d.id(), d.capacity_blocks()))
            .collect::<Result<Vec<_>, _>>()?;
        let set = BinSet::new(bins)?;
        let new_strategy =
            ClusterStrategy::build(&set, self.redundancy.total_shards(), self.fast_threshold)?;
        let report = self.replace_strategy(new_strategy)?;
        // Presence was checked at entry and `&mut self` rules out any
        // interleaving removal, so the entry is still there.
        let drained = self.devices.remove(&id).expect("checked above");
        debug_assert_eq!(
            drained.used_blocks(),
            0,
            "graceful removal must drain the device"
        );
        Ok(report)
    }

    /// Marks a device as crashed; its contents are lost and reads degrade
    /// until [`StorageCluster::rebuild`] runs.
    ///
    /// # Errors
    ///
    /// [`VdsError::UnknownDevice`] if no such device exists.
    pub fn fail_device(&mut self, id: u64) -> Result<(), VdsError> {
        let dev = self
            .devices
            .get_mut(&id)
            .ok_or(VdsError::UnknownDevice { id })?;
        dev.fail();
        Ok(())
    }

    /// Re-protects all data after failures: drops failed devices, rebuilds
    /// the placement over the survivors, reconstructs lost shards from
    /// redundancy and migrates shards to their new locations.
    ///
    /// # Errors
    ///
    /// [`VdsError::DataLoss`] if any block lost more shards than the
    /// redundancy tolerates; placement errors if too few devices survive.
    pub fn rebuild(&mut self) -> Result<MigrationReport, VdsError> {
        let failed: Vec<u64> = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Failed)
            .map(Device::id)
            .collect();
        for id in &failed {
            self.devices.remove(id);
        }
        let new_strategy = self.build_strategy()?;
        self.replace_strategy(new_strategy)
    }

    /// Verifies that every block is readable; returns the number of blocks
    /// currently degraded (readable only through reconstruction).
    ///
    /// # Errors
    ///
    /// [`VdsError::DataLoss`] on the first unrecoverable block.
    pub fn scrub(&mut self) -> Result<u64, VdsError> {
        let lbas: Vec<u64> = self.blocks.iter().copied().collect();
        let mut degraded = 0;
        for lba in lbas {
            let placement = self.effective_placement(lba);
            let missing = placement
                .iter()
                .enumerate()
                .filter(|(i, dev_id)| !self.devices.get(dev_id).is_some_and(|d| d.has(&(lba, *i))))
                .count();
            if missing > 0 {
                degraded += 1;
                // Force the read path to prove recoverability.
                self.read_block(lba)?;
            }
        }
        Ok(degraded)
    }

    /// Repairs degraded blocks in place: any shard missing from its
    /// computed location (e.g. lost to a transient device error) is
    /// reconstructed from the group's redundancy and re-stored, without
    /// changing any placement. Returns the number of shards repaired.
    ///
    /// Contrast with [`StorageCluster::rebuild`], which removes failed
    /// devices and relocates data; `repair` restores redundancy when the
    /// device set is unchanged.
    ///
    /// Reconstruction is fused per chunk: degraded stripes are gathered,
    /// decoded and re-stored through the batched block-op executor, and
    /// the decode itself streams through the tiered GF(256) kernels
    /// ([`rshare_erasure::gf256::kernel_tier`]) via `mul_acc_many` in
    /// cache-sized tiles.
    ///
    /// # Errors
    ///
    /// [`VdsError::DataLoss`] if a block lost more shards than the
    /// redundancy tolerates; device I/O errors on the re-stores.
    pub fn repair(&mut self) -> Result<u64, VdsError> {
        let lbas: Vec<u64> = self.blocks.iter().copied().collect();
        let k = self.redundancy.total_shards();
        let mut repaired = 0u64;
        let mut flat: Vec<u64> = Vec::new();
        for chunk in lbas.chunks(MIGRATION_CHUNK_BLOCKS) {
            // Placements are unchanged during a repair, so the flat run is
            // built from per-block effective placements — served by the
            // epoch cache — rather than `effective_flat`'s bulk strategy
            // scan, which exists for migrations that just bumped the epoch
            // and would miss the cache on every block anyway.
            flat.clear();
            for &lba in chunk {
                flat.extend_from_slice(&self.effective_placement(lba));
            }
            let mut work: Vec<usize> = Vec::new();
            for (j, &lba) in chunk.iter().enumerate() {
                let degraded = flat[j * k..(j + 1) * k]
                    .iter()
                    .enumerate()
                    .any(|(i, id)| !self.devices.get(id).is_some_and(|d| d.has(&(lba, i))));
                if degraded {
                    work.push(j);
                }
            }
            if work.is_empty() {
                continue;
            }
            // Pipelined through the migration executor with old == new:
            // each degraded stripe is gathered and decoded exactly once
            // and the stores land only in the missing slots.
            let blocks_repaired = work.len() as u64;
            let outcome = self.execute_block_ops(chunk, &work, &flat, &flat)?;
            repaired += outcome.stored;
            if let Some(m) = &self.metrics {
                m.repair_blocks_total.add(blocks_repaired);
            }
        }
        Ok(repaired)
    }

    /// The simulated completion time of everything the cluster has done so
    /// far: the largest per-device busy time, i.e. the makespan assuming
    /// all devices operate in parallel.
    #[must_use]
    pub fn makespan_us(&self) -> u64 {
        self.devices
            .values()
            .map(|d| d.stats().busy_us)
            .max()
            .unwrap_or(0)
    }

    /// Clears every device's I/O counters (e.g. to time one workload phase
    /// in isolation).
    pub fn reset_stats(&mut self) {
        for d in self.devices.values_mut() {
            d.reset_stats();
        }
    }

    /// Dry-runs adding a device: returns the migration plan without
    /// moving any data or changing the cluster.
    ///
    /// # Errors
    ///
    /// Same validation as [`StorageCluster::add_device`].
    pub fn plan_add_device(
        &self,
        id: u64,
        capacity_blocks: u64,
    ) -> Result<MigrationPlan, VdsError> {
        if self.devices.contains_key(&id) {
            return Err(VdsError::InvalidConfig {
                reason: "duplicate device id",
            });
        }
        let mut bins: Vec<Bin> = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Online)
            .map(|d| Bin::new(d.id(), d.capacity_blocks()))
            .collect::<Result<Vec<_>, _>>()?;
        let online_capacity: u64 = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Online)
            .map(Device::capacity_blocks)
            .sum();
        bins.push(Bin::new(id, capacity_blocks)?);
        // Fair minimum (Lemma 3.2): any strategy must move the new
        // device's capacity share of all shards onto it.
        let shards_total = self.blocks.len() as f64 * self.redundancy.total_shards() as f64;
        let fair_min =
            shards_total * capacity_blocks as f64 / (online_capacity + capacity_blocks) as f64;
        self.plan_against(&BinSet::new(bins)?, fair_min)
    }

    /// Dry-runs removing a device: returns the migration plan without
    /// moving any data or changing the cluster.
    ///
    /// # Errors
    ///
    /// Same validation as [`StorageCluster::remove_device`].
    pub fn plan_remove_device(&self, id: u64) -> Result<MigrationPlan, VdsError> {
        let leaving = self
            .devices
            .get(&id)
            .ok_or(VdsError::UnknownDevice { id })?;
        let bins: Vec<Bin> = self
            .devices
            .values()
            .filter(|d| d.id() != id && d.state() == DeviceState::Online)
            .map(|d| Bin::new(d.id(), d.capacity_blocks()))
            .collect::<Result<Vec<_>, _>>()?;
        // Fair minimum (Lemma 3.2): the shards resident on the leaving
        // device must move, whatever the strategy.
        let fair_min = leaving.used_blocks() as f64;
        self.plan_against(&BinSet::new(bins)?, fair_min)
    }

    /// Dry-runs [`StorageCluster::rebuild`]: the migration plan for
    /// dropping every failed device, without touching any data. With no
    /// failed devices the bin set is unchanged and the plan is empty.
    ///
    /// # Errors
    ///
    /// Placement errors if too few devices survive.
    pub fn plan_rebuild(&self) -> Result<MigrationPlan, VdsError> {
        let failed: BTreeSet<u64> = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Failed)
            .map(Device::id)
            .collect();
        let bins: Vec<Bin> = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Online)
            .map(|d| Bin::new(d.id(), d.capacity_blocks()))
            .collect::<Result<Vec<_>, _>>()?;
        let mut plan = self.plan_against(&BinSet::new(bins)?, 0.0)?;
        // Fair minimum: every shard placed on a failed device must move,
        // and the candidate excludes failed devices, so those shards are
        // exactly the moves leaving them.
        plan.fair_min_shards = plan
            .moves
            .iter()
            .filter(|m| failed.contains(&m.from))
            .count() as f64;
        Ok(plan)
    }

    /// Diffs the current placement against a hypothetical bin set, in
    /// bulk: old (effective) and candidate placements are computed a
    /// chunk at a time through the stride-k batch API and compared
    /// slice-against-slice, so unchanged blocks — the common case under
    /// 2–4-competitive churn — cost two batched lookups and one memcmp.
    /// The moves are sorted so every (source → target) device queue is
    /// contiguous ([`MigrationPlan::device_queues`]).
    fn plan_against(&self, bins: &BinSet, fair_min_shards: f64) -> Result<MigrationPlan, VdsError> {
        let k = self.redundancy.total_shards();
        let candidate = ClusterStrategy::build(bins, k, self.fast_threshold)?;
        let lbas: Vec<u64> = self.blocks.iter().copied().collect();
        let mut plan = MigrationPlan {
            shards_total: (lbas.len() * k) as u64,
            blocks_total: lbas.len() as u64,
            fair_min_shards,
            ..MigrationPlan::default()
        };
        let mut old_flat: Vec<u64> = Vec::new();
        let mut new_ids: Vec<BinId> = Vec::new();
        for chunk in lbas.chunks(MIGRATION_CHUNK_BLOCKS) {
            self.effective_flat(chunk, &mut old_flat);
            candidate.place_batch_into(chunk, &mut new_ids);
            for (j, &lba) in chunk.iter().enumerate() {
                let old = &old_flat[j * k..(j + 1) * k];
                let new = &new_ids[j * k..(j + 1) * k];
                let before = plan.moves.len();
                for (copy, (o, n)) in old.iter().zip(new).enumerate() {
                    if *o != n.raw() {
                        plan.moves.push(ShardMove {
                            lba,
                            copy,
                            from: *o,
                            to: n.raw(),
                        });
                    }
                }
                if plan.moves.len() > before {
                    plan.blocks_planned += 1;
                }
            }
        }
        plan.moves
            .sort_unstable_by_key(|m| (m.from, m.to, m.lba, m.copy));
        if let Some(m) = &self.metrics {
            m.migration_moves_planned_total.add(plan.moves.len() as u64);
        }
        Ok(plan)
    }

    /// Deletes one shard from its device — fault injection for tests and
    /// chaos experiments (a latent sector error, in disk terms). Returns
    /// `true` if the shard existed. The block becomes degraded until
    /// [`StorageCluster::repair`] or [`StorageCluster::rebuild`] runs.
    pub fn inject_shard_loss(&mut self, lba: u64, copy: usize) -> bool {
        if copy >= self.redundancy.total_shards() {
            return false;
        }
        let placement = self.effective_placement(lba);
        self.devices
            .get_mut(&placement[copy])
            .and_then(|d| d.remove(&(lba, copy)))
            .is_some()
    }

    /// Per-device `(id, used, capacity)` utilisation snapshot.
    #[must_use]
    pub fn utilization(&self) -> Vec<(u64, u64, u64)> {
        self.devices
            .values()
            .map(|d| (d.id(), d.used_blocks(), d.capacity_blocks()))
            .collect()
    }

    /// Live fairness report over the online devices: every device's share
    /// of the stored shards against its capacity-proportional fair share
    /// `b_i / B` — the paper's Lemma 3.1, measured instead of proved.
    #[must_use]
    pub fn fairness_report(&self) -> FairnessReport {
        let rows: Vec<(u64, u64, u64)> = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Online)
            .map(|d| (d.id(), d.used_blocks(), d.capacity_blocks()))
            .collect();
        FairnessReport::compute(&rows)
    }

    /// Number of blocks currently missing at least one shard from its
    /// computed location. Scans every block through the bulk placement
    /// API (the per-block cache is bypassed, so scrape-time accounting
    /// does not distort the cache hit/miss series).
    #[must_use]
    pub fn degraded_block_count(&self) -> u64 {
        let k = self.redundancy.total_shards();
        let lbas: Vec<u64> = self.blocks.iter().copied().collect();
        let mut flat: Vec<u64> = Vec::new();
        let mut degraded = 0u64;
        for chunk in lbas.chunks(MIGRATION_CHUNK_BLOCKS) {
            self.effective_flat(chunk, &mut flat);
            for (j, &lba) in chunk.iter().enumerate() {
                let missing = flat[j * k..(j + 1) * k]
                    .iter()
                    .enumerate()
                    .any(|(i, id)| !self.devices.get(id).is_some_and(|d| d.has(&(lba, i))));
                if missing {
                    degraded += 1;
                }
            }
        }
        degraded
    }

    /// A point-in-time health summary: device counts, migration debt,
    /// degraded blocks and the fairness report. When metrics are enabled
    /// the corresponding gauges (`pending_blocks`, `degraded_blocks`,
    /// `devices_online`, `devices_failed`) are refreshed as a side effect,
    /// so scraping after a snapshot always sees current values.
    #[must_use]
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let devices_online = self
            .devices
            .values()
            .filter(|d| d.state() == DeviceState::Online)
            .count();
        let snap = HealthSnapshot {
            devices_online,
            devices_failed: self.devices.len() - devices_online,
            blocks: self.block_count(),
            pending_blocks: self.pending_blocks(),
            degraded_blocks: self.degraded_block_count(),
            fairness: self.fairness_report(),
        };
        if let Some(m) = &self.metrics {
            m.pending_blocks.set(snap.pending_blocks as i64);
            m.degraded_blocks.set(snap.degraded_blocks as i64);
            m.devices_online.set(snap.devices_online as i64);
            m.devices_failed.set(snap.devices_failed as i64);
        }
        snap
    }

    /// The registry the cluster's series live in, when metrics are
    /// enabled — programmatic access to every counter and histogram by
    /// name.
    #[must_use]
    pub fn metrics_registry(&self) -> Option<Arc<Registry>> {
        self.metrics.as_ref().map(|m| Arc::clone(&m.registry))
    }

    /// Renders the cluster's full observability surface in Prometheus
    /// text exposition format: the registered series (when metrics are
    /// enabled), scrape-time cluster families (fairness, cache, placement
    /// counters), one labelled series per device for the I/O statistics,
    /// and the process-wide GF(256) kernel tallies.
    #[must_use]
    pub fn export_prometheus(&self) -> String {
        let snap = self.health_snapshot(); // refreshes the health gauges
        let mut out = match &self.metrics {
            Some(m) => m.registry.render_prometheus(),
            None => String::new(),
        };
        family_header(&mut out, "cluster_blocks", "gauge", "Logical blocks stored");
        sample_line(&mut out, "cluster_blocks", &[], snap.blocks);
        family_header(
            &mut out,
            "fairness_max_deviation",
            "gauge",
            "Largest relative deviation of any online device's data share from its fair share b_i/B",
        );
        sample_line(
            &mut out,
            "fairness_max_deviation",
            &[],
            format!("{:.6}", snap.fairness.max_deviation),
        );
        let cs = self.cache_stats();
        family_header(
            &mut out,
            "placement_cache_hits_total",
            "counter",
            "Placement lookups served from the cache",
        );
        sample_line(&mut out, "placement_cache_hits_total", &[], cs.hits);
        family_header(
            &mut out,
            "placement_cache_misses_total",
            "counter",
            "Placement lookups that recomputed the placement",
        );
        sample_line(&mut out, "placement_cache_misses_total", &[], cs.misses);
        family_header(
            &mut out,
            "placement_cache_entries",
            "gauge",
            "Live placement cache entries",
        );
        sample_line(&mut out, "placement_cache_entries", &[], cs.entries);
        family_header(
            &mut out,
            "placements_computed_total",
            "counter",
            "Placements computed by a strategy (cache hits excluded)",
        );
        sample_line(
            &mut out,
            "placements_computed_total",
            &[],
            self.placements_computed(),
        );
        self.render_device_families(&mut out);
        let ks = rshare_erasure::gf256::kernel_stats();
        family_header(
            &mut out,
            "gf_xor_bytes_total",
            "counter",
            "Bytes XOR-accumulated by the GF(256) bulk kernels (process-wide)",
        );
        sample_line(&mut out, "gf_xor_bytes_total", &[], ks.xor_bytes);
        family_header(
            &mut out,
            "gf_mul_bytes_total",
            "counter",
            "Bytes run through the GF(256) table-multiply kernel (process-wide)",
        );
        sample_line(&mut out, "gf_mul_bytes_total", &[], ks.mul_bytes);
        family_header(
            &mut out,
            "gf_simd_bytes_total",
            "counter",
            "Multiply bytes served by the SIMD kernel tier (process-wide)",
        );
        sample_line(&mut out, "gf_simd_bytes_total", &[], ks.simd_bytes);
        family_header(
            &mut out,
            "gf_swar_bytes_total",
            "counter",
            "Multiply bytes served by the portable SWAR kernel tier (process-wide)",
        );
        sample_line(&mut out, "gf_swar_bytes_total", &[], ks.swar_bytes);
        family_header(
            &mut out,
            "gf_kernel_calls_total",
            "counter",
            "GF(256) bulk kernel invocations (process-wide)",
        );
        sample_line(&mut out, "gf_kernel_calls_total", &[], ks.calls);
        out
    }

    /// Renders the per-device series (`device="<id>"`-labelled), one
    /// family at a time in exposition order.
    fn render_device_families(&self, out: &mut String) {
        /// `(name, kind, help, per-device value)` of one exported family.
        type DeviceFamily = (&'static str, &'static str, &'static str, fn(&Device) -> u64);
        let families: [DeviceFamily; 8] = [
            ("device_reads_total", "counter", "Shard reads served", |d| {
                d.stats().reads
            }),
            (
                "device_writes_total",
                "counter",
                "Shard writes absorbed",
                |d| d.stats().writes,
            ),
            ("device_bytes_read_total", "counter", "Bytes read", |d| {
                d.stats().bytes_read
            }),
            (
                "device_bytes_written_total",
                "counter",
                "Bytes written",
                |d| d.stats().bytes_written,
            ),
            (
                "device_busy_us_total",
                "counter",
                "Simulated busy time in microseconds",
                |d| d.stats().busy_us,
            ),
            (
                "device_used_blocks",
                "gauge",
                "Shards currently resident",
                |d| d.used_blocks(),
            ),
            (
                "device_capacity_blocks",
                "gauge",
                "Capacity in shard blocks",
                |d| d.capacity_blocks(),
            ),
            (
                "device_online",
                "gauge",
                "1 when the device serves I/O, 0 when failed",
                |d| u64::from(d.state() == DeviceState::Online),
            ),
        ];
        for (name, kind, help, value) in families {
            family_header(out, name, kind, help);
            for dev in self.devices.values() {
                let id = dev.id().to_string();
                sample_line(out, name, &[("device", id.as_str())], value(dev));
            }
        }
    }

    /// Swaps in a new placement strategy and migrates every shard whose
    /// computed location changed, through the batched parallel executor.
    /// Shards whose old location is gone are reconstructed from the
    /// group's redundancy (each degraded stripe is decoded exactly once,
    /// however many of its shards need rebuilding).
    fn replace_strategy(
        &mut self,
        new_strategy: ClusterStrategy,
    ) -> Result<MigrationReport, VdsError> {
        let old_strategy = self
            .strategy
            .replace(new_strategy)
            .expect("strategy always present");
        // One epoch bump per plan invalidates every cached placement of
        // the old strategy; nothing per block touches the cache.
        self.placement_epoch += 1;
        // Any in-flight lazy migration is absorbed: blocks it had not yet
        // moved are gathered from their true (pre-lazy-change) locations.
        let absorbed = self.pending.take();
        let lbas: Vec<u64> = self.blocks.iter().copied().collect();
        let k = self.redundancy.total_shards();
        let mut report = MigrationReport::default();
        let mut old_ids: Vec<BinId> = Vec::new();
        let mut old_flat: Vec<u64> = Vec::new();
        let mut scratch: Vec<u64> = Vec::new();
        for chunk in lbas.chunks(MIGRATION_CHUNK_BLOCKS) {
            old_strategy.place_batch_into(chunk, &mut old_ids);
            old_flat.clear();
            old_flat.extend(old_ids.iter().map(|b| b.raw()));
            if let Some(p) = &absorbed {
                for (j, &lba) in chunk.iter().enumerate() {
                    if p.remaining.contains(&lba) {
                        p.old_strategy.place_ids_into(lba, &mut scratch);
                        old_flat[j * k..(j + 1) * k].copy_from_slice(&scratch);
                    }
                }
            }
            report.merge(self.rebalance_chunk(chunk, &old_flat, true)?);
        }
        Ok(report)
    }

    /// Fills the `None` entries of a shard vector using the redundancy.
    fn reconstruct_group(&self, shards: &mut [Option<Vec<u8>>], lba: u64) -> Result<(), VdsError> {
        match self.redundancy {
            Redundancy::Mirror { .. } => {
                // One clone per *missing* slot only (each re-stored copy
                // must own its bytes); the surviving source itself is
                // borrowed, never cloned.
                let src = shards
                    .iter()
                    .position(Option::is_some)
                    .ok_or(VdsError::DataLoss { lba })?;
                for i in 0..shards.len() {
                    if shards[i].is_none() {
                        let copy = shards[src].as_ref().expect("source present").clone();
                        shards[i] = Some(copy);
                    }
                }
                Ok(())
            }
            _ => {
                // Same constructor invariant as the read path: every
                // erasure scheme carries a codec; repair and migration
                // surface the impossible case as a typed error.
                let codec = self.codec.as_deref().ok_or(VdsError::Internal {
                    reason: "erasure redundancy configured without a codec",
                })?;
                codec.reconstruct(shards).map_err(|e| match e {
                    rshare_erasure::ErasureError::TooManyErasures { .. } => {
                        VdsError::DataLoss { lba }
                    }
                    other => VdsError::Erasure(other),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(seed: u8, size: usize) -> Vec<u8> {
        (0..size).map(|i| seed.wrapping_add(i as u8)).collect()
    }

    /// True iff all device ids are pairwise distinct, sorting in `scratch`
    /// instead of cloning the placement per check.
    fn all_distinct(ids: &[u64], scratch: &mut Vec<u64>) -> bool {
        scratch.clear();
        scratch.extend_from_slice(ids);
        scratch.sort_unstable();
        scratch.windows(2).all(|w| w[0] != w[1])
    }

    fn mirror_cluster() -> StorageCluster {
        StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .device(3, 10_000)
            .build()
            .unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut c = mirror_cluster();
        for lba in 0..200u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        for lba in 0..200u64 {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
        assert_eq!(c.block_count(), 200);
        assert!(matches!(
            c.read_block(10_000),
            Err(VdsError::BlockNotFound { lba: 10_000 })
        ));
        assert!(matches!(
            c.write_block(0, &[0u8; 7]),
            Err(VdsError::WrongBlockSize {
                expected: 64,
                got: 7
            })
        ));
    }

    #[test]
    fn write_blocks_matches_write_block_loop() {
        let rs = || {
            StorageCluster::builder()
                .block_size(64)
                .redundancy(Redundancy::ReedSolomon { data: 4, parity: 2 })
                .device(0, 10_000)
                .device(1, 10_000)
                .device(2, 10_000)
                .device(3, 10_000)
                .device(4, 10_000)
                .device(5, 10_000)
                .device(6, 10_000)
                .build()
                .unwrap()
        };
        let (mut fused, mut looped) = (rs(), rs());
        let lbas: Vec<u64> = (0..300u64).collect();
        let mut data = Vec::new();
        for &lba in &lbas {
            data.extend_from_slice(&block(lba as u8, 64));
        }
        fused.write_blocks(&lbas, &data).unwrap();
        for (&lba, chunk) in lbas.iter().zip(data.chunks_exact(64)) {
            looped.write_block(lba, chunk).unwrap();
        }
        assert_eq!(fused.block_count(), looped.block_count());
        for id in fused.device_ids() {
            let (f, l) = (fused.device(id).unwrap(), looped.device(id).unwrap());
            assert_eq!(f.used_blocks(), l.used_blocks(), "device {id}");
            assert_eq!(f.stats(), l.stats(), "device {id} I/O counters");
        }
        for &lba in &lbas {
            assert_eq!(fused.read_block(lba).unwrap(), block(lba as u8, 64));
            assert_eq!(fused.placement(lba), looped.placement(lba));
        }
        // Batch size validation.
        assert!(matches!(
            fused.write_blocks(&[0, 1], &[0u8; 64]),
            Err(VdsError::WrongBlockSize {
                expected: 128,
                got: 64
            })
        ));
        // Empty batch is a no-op.
        fused.write_blocks(&[], &[]).unwrap();
    }

    #[test]
    fn read_block_into_matches_read_block() {
        let mut c = mirror_cluster();
        for lba in 0..50u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let mut buf = vec![0u8; 64];
        for lba in 0..50u64 {
            c.read_block_into(lba, &mut buf).unwrap();
            assert_eq!(buf, block(lba as u8, 64));
        }
        assert!(matches!(
            c.read_block_into(0, &mut [0u8; 7]),
            Err(VdsError::WrongBlockSize {
                expected: 64,
                got: 7
            })
        ));
        assert!(matches!(
            c.read_block_into(9_999, &mut buf),
            Err(VdsError::BlockNotFound { lba: 9_999 })
        ));
    }

    #[test]
    fn read_blocks_matches_sequential_reads() {
        let mut c = mirror_cluster();
        for lba in 0..700u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // Reverse order, so result ordering is actually exercised.
        let lbas: Vec<u64> = (0..700u64).rev().collect();
        let blocks = c.read_blocks(&lbas).unwrap();
        assert_eq!(blocks.len(), lbas.len());
        for (got, &lba) in blocks.iter().zip(&lbas) {
            assert_eq!(got, &block(lba as u8, 64), "lba {lba}");
        }
        // Each mirrored read touched exactly one device, also from threads.
        let total_reads: u64 = c
            .device_ids()
            .iter()
            .map(|id| c.device(*id).unwrap().stats().reads)
            .sum();
        assert_eq!(total_reads, lbas.len() as u64);
        // Errors propagate.
        assert!(matches!(
            c.read_blocks(&[0, 10_000]),
            Err(VdsError::BlockNotFound { lba: 10_000 })
        ));
        // Empty batch is fine.
        assert_eq!(c.read_blocks(&[]).unwrap().len(), 0);
    }

    #[test]
    fn large_cluster_routes_through_fast_placement() {
        let mut b = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 });
        for id in 0..FAST_PLACEMENT_MIN_DEVICES as u64 {
            b = b.device(id, 5_000 + id * 13);
        }
        let mut c = b.build().unwrap();
        assert!(
            matches!(c.strategy(), ClusterStrategy::Fast(_)),
            "64-device cluster must use the O(k) strategy"
        );
        let mut placement = Vec::new();
        let mut scratch = Vec::new();
        for lba in 0..300u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
            c.placement_into(lba, &mut placement);
            assert!(all_distinct(&placement, &mut scratch), "distinct devices");
        }
        let lbas: Vec<u64> = (0..300u64).collect();
        for (got, &lba) in c.read_blocks(&lbas).unwrap().iter().zip(&lbas) {
            assert_eq!(got, &block(lba as u8, 64));
        }
        // A small cluster keeps the scan strategy.
        assert!(matches!(
            mirror_cluster().strategy(),
            ClusterStrategy::Scan(_)
        ));
    }

    #[test]
    fn copies_land_on_distinct_devices() {
        let mut c = mirror_cluster();
        let mut placement = Vec::new();
        let mut scratch = Vec::new();
        for lba in 0..500u64 {
            c.write_block(lba, &block(1, 64)).unwrap();
            c.placement_into(lba, &mut placement);
            assert!(all_distinct(&placement, &mut scratch));
        }
    }

    #[test]
    fn degraded_read_after_failure() {
        let mut c = mirror_cluster();
        for lba in 0..300u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        c.fail_device(2).unwrap();
        for lba in 0..300u64 {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
    }

    #[test]
    fn rebuild_restores_full_redundancy() {
        let mut c = mirror_cluster();
        for lba in 0..300u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        c.fail_device(1).unwrap();
        let report = c.rebuild().unwrap();
        assert!(report.shards_reconstructed > 0);
        assert_eq!(c.device_ids(), vec![0, 2, 3]);
        // After rebuild every block is fully replicated again.
        assert_eq!(c.scrub().unwrap(), 0);
        for lba in 0..300u64 {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
    }

    #[test]
    fn double_failure_under_mirroring_loses_data() {
        let mut c = mirror_cluster();
        for lba in 0..200u64 {
            c.write_block(lba, &block(7, 64)).unwrap();
        }
        c.fail_device(0).unwrap();
        c.fail_device(1).unwrap();
        // Some block surely had both copies on devices 0 and 1.
        let result = c.rebuild();
        assert!(matches!(result, Err(VdsError::DataLoss { .. })));
    }

    #[test]
    fn add_device_migrates_proportionally() {
        let mut c = mirror_cluster();
        for lba in 0..2_000u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let report = c.add_device(9, 10_000).unwrap();
        // New device owns 1/5 of the capacity; with k = 2 the paper's bound
        // allows up to ~4ξ movement.
        let frac = report.moved_fraction();
        assert!(frac > 0.10 && frac < 0.65, "moved fraction {frac}");
        // Everything still readable, fully replicated.
        assert_eq!(c.scrub().unwrap(), 0);
        let new_used = c.device(9).unwrap().used_blocks();
        assert!(new_used > 0);
    }

    #[test]
    fn remove_device_drains_it() {
        let mut c = mirror_cluster();
        for lba in 0..1_000u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let report = c.remove_device(3).unwrap();
        assert!(report.shards_moved > 0);
        assert_eq!(c.device_ids(), vec![0, 1, 2]);
        assert_eq!(c.scrub().unwrap(), 0);
        for lba in 0..1_000u64 {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
    }

    #[test]
    fn erasure_coded_cluster_survives_double_failure() {
        let mut c = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Rdp { p: 5 })
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .device(3, 10_000)
            .device(4, 10_000)
            .device(5, 10_000)
            .device(6, 10_000)
            .device(7, 10_000)
            .build()
            .unwrap();
        for lba in 0..200u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        c.fail_device(0).unwrap();
        c.fail_device(4).unwrap();
        for lba in 0..200u64 {
            assert_eq!(
                c.read_block(lba).unwrap(),
                block(lba as u8, 64),
                "lba {lba}"
            );
        }
        let report = c.rebuild().unwrap();
        assert!(report.shards_reconstructed > 0);
        assert_eq!(c.scrub().unwrap(), 0);
    }

    #[test]
    fn heterogeneous_utilization_tracks_capacity() {
        let mut c = StorageCluster::builder()
            .block_size(16)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 5_000)
            .device(1, 10_000)
            .device(2, 15_000)
            .device(3, 20_000)
            .build()
            .unwrap();
        for lba in 0..8_000u64 {
            c.write_block(lba, &block(lba as u8, 16)).unwrap();
        }
        let util = c.utilization();
        let fractions: Vec<f64> = util
            .iter()
            .map(|(_, used, cap)| *used as f64 / *cap as f64)
            .collect();
        // Fairness: all devices should be roughly equally full.
        let avg: f64 = fractions.iter().sum::<f64>() / fractions.len() as f64;
        for (i, f) in fractions.iter().enumerate() {
            assert!(
                (f - avg).abs() / avg < 0.06,
                "device {i} utilisation {f:.4} vs avg {avg:.4}"
            );
        }
    }

    #[test]
    fn mirror_reads_touch_one_device_and_follow_capacity() {
        let mut c = StorageCluster::builder()
            .block_size(16)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 10_000)
            .device(1, 20_000)
            .device(2, 30_000)
            .device(3, 40_000)
            .build()
            .unwrap();
        let blocks = 6_000u64;
        for lba in 0..blocks {
            c.write_block(lba, &block(lba as u8, 16)).unwrap();
        }
        for lba in 0..blocks {
            c.read_block(lba).unwrap();
        }
        let total_reads: u64 = c
            .device_ids()
            .iter()
            .map(|id| c.device(*id).unwrap().stats().reads)
            .sum();
        // One shard read per block read.
        assert_eq!(total_reads, blocks);
        // Read load follows capacity share ("x% of the requests").
        let total_cap = 100_000u64;
        for id in c.device_ids() {
            let dev = c.device(id).unwrap();
            let got = dev.stats().reads as f64 / total_reads as f64;
            let want = dev.capacity_blocks() as f64 / total_cap as f64;
            assert!(
                (got - want).abs() / want < 0.08,
                "device {id}: read share {got:.4} vs capacity share {want:.4}"
            );
        }
    }

    #[test]
    fn erasure_fast_path_skips_parity_reads() {
        let mut c = StorageCluster::builder()
            .block_size(32)
            .redundancy(Redundancy::ReedSolomon { data: 4, parity: 2 })
            .device(0, 1_000)
            .device(1, 1_000)
            .device(2, 1_000)
            .device(3, 1_000)
            .device(4, 1_000)
            .device(5, 1_000)
            .build()
            .unwrap();
        c.write_block(0, &block(3, 32)).unwrap();
        let writes: u64 = c
            .device_ids()
            .iter()
            .map(|id| c.device(*id).unwrap().stats().reads)
            .sum();
        assert_eq!(writes, 0);
        c.read_block(0).unwrap();
        let reads: u64 = c
            .device_ids()
            .iter()
            .map(|id| c.device(*id).unwrap().stats().reads)
            .sum();
        // Healthy read touches exactly the 4 data shards.
        assert_eq!(reads, 4);
    }

    #[test]
    fn repair_restores_injected_losses() {
        let mut c = mirror_cluster();
        for lba in 0..400u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // Latent errors on every 7th block's primary copy.
        let mut injected = 0u64;
        for lba in (0..400u64).step_by(7) {
            assert!(c.inject_shard_loss(lba, 0));
            injected += 1;
        }
        assert!(!c.inject_shard_loss(0, 99), "bad copy index rejected");
        assert_eq!(c.scrub().unwrap(), injected, "scrub counts degraded blocks");
        let repaired = c.repair().unwrap();
        assert_eq!(repaired, injected);
        assert_eq!(c.scrub().unwrap(), 0, "fully repaired");
        assert_eq!(c.repair().unwrap(), 0, "repair is idempotent");
        for lba in 0..400u64 {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
    }

    #[test]
    fn repair_fails_on_unrecoverable_block() {
        let mut c = mirror_cluster();
        c.write_block(0, &block(1, 64)).unwrap();
        assert!(c.inject_shard_loss(0, 0));
        assert!(c.inject_shard_loss(0, 1));
        assert!(matches!(c.repair(), Err(VdsError::DataLoss { lba: 0 })));
    }

    #[test]
    fn makespan_tracks_slowest_device() {
        use crate::profile::DeviceProfile;
        let mut c = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device_with_profile(0, 10_000, DeviceProfile::NVME)
            .device_with_profile(1, 10_000, DeviceProfile::NVME)
            .device_with_profile(2, 10_000, DeviceProfile::HDD)
            .build()
            .unwrap();
        assert_eq!(c.makespan_us(), 0);
        for lba in 0..600u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // The HDD's per-op cost dominates: the makespan must equal its
        // busy time, far above the NVMe devices'.
        let hdd_busy = c.device(2).unwrap().stats().busy_us;
        assert_eq!(c.makespan_us(), hdd_busy);
        let nvme_busy = c.device(0).unwrap().stats().busy_us;
        assert!(hdd_busy > 20 * nvme_busy, "hdd {hdd_busy} nvme {nvme_busy}");
        c.reset_stats();
        assert_eq!(c.makespan_us(), 0);
    }

    #[test]
    fn plan_matches_actual_migration() {
        let mut c = mirror_cluster();
        for lba in 0..1_500u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let plan = c.plan_add_device(9, 10_000).unwrap();
        assert!(plan.moved_fraction() > 0.0);
        // Every planned inflow move targets a real device of the new set.
        for (dev, count) in plan.inflow_per_device() {
            assert!(dev == 9 || c.device(dev).is_some());
            assert!(count > 0);
        }
        let report = c.add_device(9, 10_000).unwrap();
        assert_eq!(
            plan.moves.len() as u64,
            report.shards_moved,
            "dry run must predict the real migration exactly"
        );
        // Planning is validated like the real operation.
        assert!(c.plan_add_device(9, 1).is_err());
        assert!(c.plan_remove_device(999).is_err());
        let removal_plan = c.plan_remove_device(9).unwrap();
        // Everything on device 9 must flow out.
        let outflow = removal_plan.moves.iter().filter(|m| m.from == 9).count() as u64;
        assert_eq!(outflow, c.device(9).unwrap().used_blocks());
    }

    #[test]
    fn lazy_migration_serves_reads_throughout() {
        let mut c = mirror_cluster();
        for lba in 0..1_200u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let pending = c.add_device_lazy(9, 10_000).unwrap();
        assert_eq!(pending, 1_200);
        assert_eq!(c.pending_blocks(), 1_200);
        // Nothing has moved yet; everything still reads correctly.
        assert_eq!(c.device(9).unwrap().used_blocks(), 0);
        for lba in (0..1_200u64).step_by(37) {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
        // Migrate in small steps, reading in between.
        let mut total_moved = 0;
        while c.pending_blocks() > 0 {
            let report = c.migrate_step(100).unwrap();
            total_moved += report.shards_moved;
            let probe = (c.pending_blocks() * 7) % 1_200;
            assert_eq!(c.read_block(probe).unwrap(), block(probe as u8, 64));
        }
        assert!(total_moved > 0);
        assert!(c.device(9).unwrap().used_blocks() > 0);
        assert_eq!(c.scrub().unwrap(), 0);
        // Idempotent when drained.
        let report = c.migrate_step(10).unwrap();
        assert_eq!(report.blocks, 0);
    }

    #[test]
    fn lazy_migration_write_finalizes_block() {
        let mut c = mirror_cluster();
        for lba in 0..200u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        c.add_device_lazy(9, 10_000).unwrap();
        let before = c.pending_blocks();
        // Overwriting a pending block completes its migration.
        c.write_block(5, &block(0xEE, 64)).unwrap();
        assert_eq!(c.pending_blocks(), before - 1);
        assert_eq!(c.read_block(5).unwrap(), block(0xEE, 64));
        // No stale shards linger anywhere: total shards = 2 per block.
        let total: u64 = c
            .device_ids()
            .iter()
            .map(|id| c.device(*id).unwrap().used_blocks())
            .sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn eager_operations_drain_lazy_migration_first() {
        let mut c = mirror_cluster();
        for lba in 0..300u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        c.add_device_lazy(9, 10_000).unwrap();
        assert!(c.pending_blocks() > 0);
        // An eager removal forces the pending migration to finish first.
        c.remove_device(0).unwrap();
        assert_eq!(c.pending_blocks(), 0);
        assert_eq!(c.scrub().unwrap(), 0);
        for lba in (0..300u64).step_by(11) {
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
    }

    #[test]
    fn cache_hit_performs_no_placement_computation() {
        let mut c = mirror_cluster();
        for lba in 0..50u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // The writes populated the cache; warm one block explicitly anyway.
        let first = c.read_block(7).unwrap();
        let computed = c.placements_computed();
        let hits = c.cache_stats().hits;
        // Repeated reads must be pure cache hits: the strategy runs zero
        // additional placements.
        for _ in 0..10 {
            assert_eq!(c.read_block(7).unwrap(), first);
        }
        assert_eq!(
            c.placements_computed(),
            computed,
            "cache hits must not recompute placements"
        );
        assert_eq!(c.cache_stats().hits, hits + 10);
    }

    #[test]
    fn membership_change_invalidates_cache_via_epoch() {
        let mut c = mirror_cluster();
        for lba in 0..300u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let epoch_before = c.placement_epoch();
        // Warm the cache for every block.
        for lba in 0..300u64 {
            c.read_block(lba).unwrap();
        }
        c.add_device(9, 10_000).unwrap();
        assert!(c.placement_epoch() > epoch_before, "epoch must bump");
        // Placements after the change match a freshly built identical
        // cluster (i.e. no stale cache entry leaks through).
        let mut fresh = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .device(3, 10_000)
            .device(9, 10_000)
            .build()
            .unwrap();
        fresh.set_placement_cache(false);
        for lba in 0..300u64 {
            assert_eq!(c.placement(lba), fresh.placement(lba), "lba {lba}");
            assert_eq!(c.read_block(lba).unwrap(), block(lba as u8, 64));
        }
    }

    #[test]
    fn lazy_migration_bypasses_cache_for_pending_blocks() {
        let mut c = mirror_cluster();
        for lba in 0..200u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // Snapshot effective placements, then switch the mapping lazily.
        let old: Vec<Vec<u64>> = (0..200u64).map(|lba| c.placement(lba)).collect();
        c.add_device_lazy(9, 10_000).unwrap();
        // Pending blocks still resolve to their old locations even though
        // the cache holds (stale-epoch) entries from before the change.
        for lba in 0..200u64 {
            assert_eq!(c.placement(lba), old[lba as usize], "pending lba {lba}");
        }
        // Migrate everything; placements now come from the new strategy and
        // are cacheable — repeated lookups are hits, and still correct.
        while c.pending_blocks() > 0 {
            c.migrate_step(50).unwrap();
        }
        let first: Vec<Vec<u64>> = (0..200u64).map(|lba| c.placement(lba)).collect();
        let computed = c.placements_computed();
        for lba in 0..200u64 {
            assert_eq!(c.placement(lba), first[lba as usize]);
        }
        assert_eq!(c.placements_computed(), computed);
        assert_eq!(c.scrub().unwrap(), 0);
    }

    #[test]
    fn disabled_cache_recomputes_every_lookup() {
        let mut c = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .placement_cache(false)
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .build()
            .unwrap();
        c.write_block(3, &block(3, 64)).unwrap();
        let computed = c.placements_computed();
        c.read_block(3).unwrap();
        c.read_block(3).unwrap();
        assert_eq!(
            c.placements_computed(),
            computed + 2,
            "uncached lookups recompute"
        );
        assert_eq!(c.cache_stats().entries, 0);
        // Re-enabling works.
        c.set_placement_cache(true);
        c.read_block(3).unwrap(); // miss, fills cache
        let computed = c.placements_computed();
        c.read_block(3).unwrap(); // hit
        assert_eq!(c.placements_computed(), computed);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            StorageCluster::builder().block_size(0).device(0, 1).build(),
            Err(VdsError::InvalidConfig { .. })
        ));
        // Block size 10 is not divisible by RS(4, 2)'s 4 data shards.
        assert!(matches!(
            StorageCluster::builder()
                .block_size(10)
                .redundancy(Redundancy::ReedSolomon { data: 4, parity: 2 })
                .device(0, 1)
                .device(1, 1)
                .device(2, 1)
                .device(3, 1)
                .device(4, 1)
                .device(5, 1)
                .build(),
            Err(VdsError::InvalidConfig { .. })
        ));
        // Too few devices for the shard count.
        assert!(StorageCluster::builder()
            .redundancy(Redundancy::Mirror { copies: 3 })
            .device(0, 1)
            .device(1, 1)
            .build()
            .is_err());
        // Duplicate device id.
        assert!(matches!(
            StorageCluster::builder().device(0, 1).device(0, 2).build(),
            Err(VdsError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fast_strategy_threshold_knob_selects_engine() {
        // Threshold at (or below) the device count forces the fast engine
        // on a small cluster; usize::MAX pins the scan on a large one.
        let forced_fast = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .fast_strategy_threshold(4)
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .device(3, 10_000)
            .build()
            .unwrap();
        assert!(matches!(forced_fast.strategy(), ClusterStrategy::Fast(_)));
        let mut b = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .fast_strategy_threshold(usize::MAX);
        for id in 0..FAST_PLACEMENT_MIN_DEVICES as u64 {
            b = b.device(id, 5_000);
        }
        let pinned_scan = b.build().unwrap();
        assert!(matches!(pinned_scan.strategy(), ClusterStrategy::Scan(_)));
        // The threshold survives membership changes.
        let mut c = forced_fast;
        c.add_device(9, 10_000).unwrap();
        assert!(matches!(c.strategy(), ClusterStrategy::Fast(_)));
        c.remove_device(9).unwrap();
        assert!(matches!(c.strategy(), ClusterStrategy::Fast(_)));
    }

    #[test]
    fn migrate_batch_matches_migrate_step() {
        let mut serial = mirror_cluster();
        let mut batched = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .migration_threads(2)
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .device(3, 10_000)
            .build()
            .unwrap();
        for lba in 0..1_000u64 {
            serial.write_block(lba, &block(lba as u8, 64)).unwrap();
            batched.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        serial.add_device_lazy(9, 10_000).unwrap();
        batched.add_device_lazy(9, 10_000).unwrap();
        let mut serial_report = MigrationReport::default();
        let mut batched_report = MigrationReport::default();
        while serial.pending_blocks() > 0 {
            serial_report.merge(serial.migrate_step(117).unwrap());
        }
        while batched.pending_blocks() > 0 {
            let before = batched.pending_blocks();
            batched_report.merge(batched.migrate_batch(117).unwrap());
            // The budget is honoured: at most 117 blocks per call.
            assert!(before - batched.pending_blocks() <= 117);
        }
        assert_eq!(serial_report, batched_report);
        // Same placements, same bytes, same per-device occupancy.
        for lba in 0..1_000u64 {
            assert_eq!(serial.placement(lba), batched.placement(lba));
            assert_eq!(batched.read_block(lba).unwrap(), block(lba as u8, 64));
        }
        for id in serial.device_ids() {
            assert_eq!(
                serial.device(id).unwrap().used_blocks(),
                batched.device(id).unwrap().used_blocks(),
                "device {id}"
            );
        }
        assert_eq!(batched.scrub().unwrap(), 0);
        // Idempotent when drained.
        assert_eq!(
            batched.migrate_batch(10).unwrap(),
            MigrationReport::default()
        );
    }

    #[test]
    fn rebalance_drains_everything_at_once() {
        let mut c = mirror_cluster();
        for lba in 0..600u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // No-op without a pending migration.
        assert_eq!(c.rebalance().unwrap(), MigrationReport::default());
        c.add_device_lazy(9, 10_000).unwrap();
        let report = c.rebalance().unwrap();
        assert_eq!(report.blocks, 600);
        assert_eq!(c.pending_blocks(), 0);
        assert!(report.shards_moved > 0);
        assert!(c.device(9).unwrap().used_blocks() > 0);
        assert_eq!(c.scrub().unwrap(), 0);
    }

    #[test]
    fn plan_rebuild_is_empty_without_failures() {
        let mut c = mirror_cluster();
        for lba in 0..400u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        // Satellite: a no-op membership "change" must plan zero moves …
        let plan = c.plan_rebuild().unwrap();
        assert!(plan.moves.is_empty());
        assert_eq!(plan.blocks_planned, 0);
        assert_eq!(plan.blocks_total, 400);
        assert_eq!(plan.competitive_ratio(), 0.0);
        // … and the executed no-op rebuild moves zero shards.
        let report = c.rebuild().unwrap();
        assert_eq!(report.shards_moved, 0);
        assert_eq!(report.shards_reconstructed, 0);
        // With a failure, the plan predicts the rebuild exactly.
        c.fail_device(1).unwrap();
        let plan = c.plan_rebuild().unwrap();
        assert!(plan.fair_min_shards > 0.0);
        assert!(plan.competitive_ratio() >= 1.0);
        let report = c.rebuild().unwrap();
        assert_eq!(plan.moves.len() as u64, report.shards_moved);
    }

    #[test]
    fn plan_accounting_and_device_queues() {
        let mut c = mirror_cluster();
        for lba in 0..2_000u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let plan = c.plan_add_device(9, 10_000).unwrap();
        assert_eq!(plan.blocks_total, 2_000);
        assert_eq!(plan.shards_total, 4_000);
        assert!(plan.blocks_planned > 0);
        assert!(plan.blocks_planned < plan.blocks_total, "skip-unchanged");
        assert!(plan.fair_min_shards > 0.0);
        // Lemma 3.2: the measured competitive ratio stays within 4.
        let ratio = plan.competitive_ratio();
        assert!(ratio > 0.0 && ratio <= 4.0, "ratio {ratio}");
        // Moves are sorted so device queues are contiguous and exhaustive.
        let queues = plan.device_queues();
        let mut seen = std::collections::BTreeSet::new();
        let mut covered = 0usize;
        for (from, to, moves) in queues {
            assert!(seen.insert((from, to)), "queue ({from},{to}) repeated");
            assert!(moves.iter().all(|m| m.from == from && m.to == to));
            covered += moves.len();
        }
        assert_eq!(covered, plan.moves.len());
    }

    #[test]
    fn metrics_count_reads_writes_and_latency() {
        let mut c = mirror_cluster();
        for lba in 0..50u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        for lba in 0..50u64 {
            c.read_block(lba).unwrap();
        }
        assert!(c.read_block(10_000).is_err()); // failed reads record nothing
        let reg = c.metrics_registry().expect("metrics on by default");
        assert_eq!(reg.counter("writes_total", "").get(), 50);
        assert_eq!(reg.counter("reads_total", "").get(), 50);
        assert_eq!(reg.counter("degraded_reads_total", "").get(), 0);
        // Latency is sampled one read in `LATENCY_SAMPLE`: 50 reads
        // sample exactly once (at reads_total == 0).
        let lat = reg.histogram("read_latency_ns", "").snapshot();
        assert_eq!(lat.count, 1, "latency histogram samples 1/{LATENCY_SAMPLE}");
        assert!(lat.sum > 0);
    }

    #[test]
    fn degraded_reads_are_counted_exactly() {
        let mut c = mirror_cluster();
        for lba in 0..100u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        c.fail_device(2).unwrap();
        for lba in 0..100u64 {
            c.read_block(lba).unwrap();
        }
        let reg = c.metrics_registry().unwrap();
        // Exactly the blocks whose preferred copy lived on device 2 fell
        // back to another copy.
        let expected: u64 = (0..100u64)
            .filter(|&lba| {
                let placement = c.placement(lba);
                let preferred = (rshare_hash::stable_hash2(lba, READ_BALANCE_DOMAIN)
                    % placement.len() as u64) as usize;
                placement[preferred] == 2
            })
            .count() as u64;
        assert!(expected > 0, "some preferred copies must be on device 2");
        assert_eq!(reg.counter("degraded_reads_total", "").get(), expected);
        assert_eq!(reg.counter("reads_total", "").get(), 100);
    }

    #[test]
    fn health_snapshot_reports_debts_and_refreshes_gauges() {
        let mut c = mirror_cluster();
        for lba in 0..200u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let healthy = c.health_snapshot();
        assert_eq!(healthy.devices_online, 4);
        assert_eq!(healthy.devices_failed, 0);
        assert_eq!(healthy.blocks, 200);
        assert_eq!(healthy.pending_blocks, 0);
        assert_eq!(healthy.degraded_blocks, 0);
        assert_eq!(healthy.fairness.total_used, 400);
        assert!(healthy.fairness.max_deviation < 0.5);
        c.fail_device(3).unwrap();
        c.add_device_lazy(9, 10_000).unwrap();
        let ailing = c.health_snapshot();
        assert_eq!(ailing.devices_online, 4); // 0, 1, 2 and the new 9
        assert_eq!(ailing.devices_failed, 1);
        assert_eq!(ailing.pending_blocks, 200);
        assert!(ailing.degraded_blocks > 0, "failed device degrades blocks");
        let reg = c.metrics_registry().unwrap();
        assert_eq!(reg.gauge("pending_blocks", "").get(), 200);
        assert_eq!(
            reg.gauge("degraded_blocks", "").get(),
            ailing.degraded_blocks as i64
        );
        assert_eq!(reg.gauge("devices_failed", "").get(), 1);
    }

    #[test]
    fn fairness_report_tracks_capacity_shares() {
        let mut c = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 4_000)
            .device(1, 8_000)
            .device(2, 12_000)
            .device(3, 16_000)
            .build()
            .unwrap();
        for lba in 0..4_000u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let report = c.fairness_report();
        assert_eq!(report.total_used, 8_000);
        assert_eq!(report.total_capacity, 40_000);
        assert_eq!(report.devices.len(), 4);
        // Redundant Share keeps every device within a modest deviation of
        // its fair share even at this small scale.
        assert!(
            report.max_deviation < 0.15,
            "max deviation {}",
            report.max_deviation
        );
        for d in &report.devices {
            assert!((d.share - d.fair_share * (1.0 + d.deviation)).abs() < 1e-9);
        }
    }

    #[test]
    fn migration_metrics_follow_the_reports() {
        let mut c = mirror_cluster();
        for lba in 0..1_000u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        let reg = c.metrics_registry().unwrap();
        let plan = c.plan_add_device(9, 10_000).unwrap();
        assert_eq!(
            reg.counter("migration_moves_planned_total", "").get(),
            plan.moves.len() as u64
        );
        let report = c.add_device(9, 10_000).unwrap();
        assert_eq!(
            reg.counter("migration_moves_executed_total", "").get(),
            report.shards_moved
        );
        // In-place repair after injected shard loss.
        let mut injected = 0u64;
        for lba in (0..1_000u64).step_by(97) {
            if c.inject_shard_loss(lba, 0) {
                injected += 1;
            }
        }
        assert!(injected > 0);
        c.repair().unwrap();
        assert_eq!(reg.counter("repair_blocks_total", "").get(), injected);
    }

    #[test]
    fn metrics_can_be_disabled_and_export_still_works() {
        let mut c = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 10_000)
            .device(1, 10_000)
            .metrics(false)
            .build()
            .unwrap();
        assert!(c.metrics_registry().is_none());
        c.write_block(0, &block(1, 64)).unwrap();
        assert_eq!(c.read_block(0).unwrap(), block(1, 64));
        let text = c.export_prometheus();
        // No registry series (the per-device `device_reads_total` family
        // is computed, not registered), but computed families render.
        assert!(!text.contains("# TYPE reads_total "));
        assert!(text.contains("cluster_blocks 1"));
        assert!(text.contains("fairness_max_deviation"));
        assert!(text.contains("device_used_blocks{device=\"0\"}"));
    }

    #[test]
    fn export_prometheus_renders_all_surfaces() {
        let mut c = mirror_cluster();
        for lba in 0..100u64 {
            c.write_block(lba, &block(lba as u8, 64)).unwrap();
        }
        for lba in 0..100u64 {
            c.read_block(lba).unwrap();
        }
        let text = c.export_prometheus();
        for family in [
            "# TYPE reads_total counter",
            "reads_total 100",
            "writes_total 100",
            "# TYPE read_latency_ns histogram",
            // 100 reads sample the latency histogram at 0 and 64.
            "read_latency_ns_count 2",
            "# TYPE pending_blocks gauge",
            "devices_online 4",
            "cluster_blocks 100",
            "fairness_max_deviation",
            "placement_cache_hits_total",
            "placements_computed_total",
            "device_reads_total{device=\"0\"}",
            "device_capacity_blocks{device=\"3\"} 10000",
            "device_online{device=\"1\"} 1",
            "gf_xor_bytes_total",
            "gf_mul_bytes_total",
            "gf_simd_bytes_total",
            "gf_swar_bytes_total",
            "gf_kernel_calls_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn shared_registry_merges_two_clusters() {
        let registry = Arc::new(Registry::new());
        let mut a = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 1_000)
            .device(1, 1_000)
            .metrics_registry(Arc::clone(&registry))
            .build()
            .unwrap();
        let mut b = StorageCluster::builder()
            .block_size(64)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 1_000)
            .device(1, 1_000)
            .metrics_registry(Arc::clone(&registry))
            .build()
            .unwrap();
        a.write_block(0, &block(1, 64)).unwrap();
        b.write_block(0, &block(2, 64)).unwrap();
        assert_eq!(registry.counter("writes_total", "").get(), 2);
    }
}
