//! Redundancy schemes for blocks: mirroring or erasure coding.
//!
//! A logical block is expanded into a *redundancy group* of `total_shards`
//! shards; shard `i` is stored on the i-th bin returned by the placement
//! strategy — exactly the copy-identity property the paper requires for
//! erasure-coded data ("each sub-block has a different meaning and
//! therefore has to be handled differently").

use rshare_erasure::{ErasureCode, ErasureError, EvenOdd, MatrixCode, Rdp, ReedSolomon, XorParity};

use crate::error::VdsError;

/// The redundancy applied to every logical block of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redundancy {
    /// Plain k-fold mirroring (the paper's running example).
    Mirror {
        /// Number of copies (k ≥ 1).
        copies: usize,
    },
    /// Single XOR parity over `data` sub-blocks (RAID-4/5).
    XorParity {
        /// Number of data sub-blocks.
        data: usize,
    },
    /// EVENODD double-fault tolerance with prime parameter `p`.
    EvenOdd {
        /// The prime parameter (also the number of data sub-blocks).
        p: usize,
    },
    /// Row-Diagonal Parity with prime parameter `p` (`p − 1` data
    /// sub-blocks).
    Rdp {
        /// The prime parameter.
        p: usize,
    },
    /// Reed–Solomon with arbitrary data/parity split.
    ReedSolomon {
        /// Data sub-blocks.
        data: usize,
        /// Parity sub-blocks.
        parity: usize,
    },
    /// A Local Reconstruction Code: per-group XOR parities for cheap
    /// single-shard repairs plus global parities for burst failures.
    LocalReconstruction {
        /// Number of data groups.
        groups: usize,
        /// Data sub-blocks per group.
        group_size: usize,
        /// Global parity sub-blocks.
        global_parity: usize,
    },
}

impl Redundancy {
    /// Total shards per redundancy group (k in placement terms).
    #[must_use]
    pub fn total_shards(&self) -> usize {
        match *self {
            Self::Mirror { copies } => copies,
            Self::XorParity { data } => data + 1,
            Self::EvenOdd { p } => p + 2,
            Self::Rdp { p } => p + 1, // (p - 1) data + row parity + diagonal parity
            Self::ReedSolomon { data, parity } => data + parity,
            Self::LocalReconstruction {
                groups,
                group_size,
                global_parity,
            } => groups * group_size + groups + global_parity,
        }
    }

    /// Number of shard losses every block survives.
    #[must_use]
    pub fn tolerated_failures(&self) -> usize {
        match *self {
            Self::Mirror { copies } => copies.saturating_sub(1),
            Self::XorParity { .. } => 1,
            Self::EvenOdd { .. } | Self::Rdp { .. } => 2,
            Self::ReedSolomon { parity, .. } => parity,
            Self::LocalReconstruction { global_parity, .. } => global_parity + 1,
        }
    }

    /// Builds the erasure codec, or `None` for mirroring.
    pub(crate) fn codec(&self) -> Result<Option<Box<dyn ErasureCode>>, VdsError> {
        Ok(match *self {
            Self::Mirror { copies } => {
                if copies == 0 {
                    return Err(VdsError::InvalidConfig {
                        reason: "mirroring needs at least one copy",
                    });
                }
                None
            }
            Self::XorParity { data } => Some(Box::new(XorParity::new(data)?)),
            Self::EvenOdd { p } => Some(Box::new(EvenOdd::new(p)?)),
            Self::Rdp { p } => Some(Box::new(Rdp::new(p)?)),
            Self::ReedSolomon { data, parity } => Some(Box::new(ReedSolomon::new(data, parity)?)),
            Self::LocalReconstruction {
                groups,
                group_size,
                global_parity,
            } => Some(Box::new(MatrixCode::local_reconstruction(
                groups,
                group_size,
                global_parity,
            )?)),
        })
    }

    /// Splits one logical block into the group's shards.
    ///
    /// For mirroring each shard is a copy of the block; for erasure codes
    /// the block is striped across the data shards (the block size must be
    /// divisible accordingly — the cluster builder validates this) and the
    /// parity shards are computed by the codec.
    pub(crate) fn encode_block(
        &self,
        block: &[u8],
        codec: Option<&dyn ErasureCode>,
    ) -> Result<Vec<Vec<u8>>, VdsError> {
        let mut shards = Vec::new();
        self.encode_block_into(block, codec, &mut shards)?;
        Ok(shards)
    }

    /// Encodes into caller-owned scratch shards, reusing their allocations.
    ///
    /// Identical output to [`Redundancy::encode_block`]; after the first
    /// call the shard buffers are resized in place, so a batch writer can
    /// encode an entire stripe sequence with zero per-block allocation.
    pub(crate) fn encode_block_into(
        &self,
        block: &[u8],
        codec: Option<&dyn ErasureCode>,
        shards: &mut Vec<Vec<u8>>,
    ) -> Result<(), VdsError> {
        match self {
            Self::Mirror { copies } => {
                shards.resize_with(*copies, Vec::new);
                for shard in shards.iter_mut() {
                    shard.clear();
                    shard.extend_from_slice(block);
                }
                Ok(())
            }
            _ => {
                let codec = codec.expect("erasure scheme has a codec");
                let d = codec.data_shards();
                debug_assert_eq!(block.len() % d, 0);
                let shard_len = block.len() / d;
                shards.resize_with(codec.total_shards(), Vec::new);
                for (i, shard) in shards.iter_mut().enumerate() {
                    shard.clear();
                    if i < d {
                        shard.extend_from_slice(&block[i * shard_len..(i + 1) * shard_len]);
                    } else {
                        shard.resize(shard_len, 0);
                    }
                }
                codec.encode(shards)?;
                Ok(())
            }
        }
    }

    /// Reassembles a logical block from (possibly incomplete) shards.
    pub(crate) fn decode_block(
        &self,
        mut shards: Vec<Option<Vec<u8>>>,
        codec: Option<&dyn ErasureCode>,
        lba: u64,
    ) -> Result<Vec<u8>, VdsError> {
        match self {
            Self::Mirror { .. } => shards
                .into_iter()
                .flatten()
                .next()
                .ok_or(VdsError::DataLoss { lba }),
            _ => {
                let codec = codec.expect("erasure scheme has a codec");
                codec.reconstruct(&mut shards).map_err(|e| match e {
                    ErasureError::TooManyErasures { .. } => VdsError::DataLoss { lba },
                    other => VdsError::Erasure(other),
                })?;
                let mut block = Vec::new();
                for shard in shards.into_iter().take(codec.data_shards()) {
                    block.extend_from_slice(&shard.expect("reconstructed"));
                }
                Ok(block)
            }
        }
    }

    /// The divisor the cluster block size must satisfy.
    pub(crate) fn block_multiple(&self, codec: Option<&dyn ErasureCode>) -> usize {
        match self {
            Self::Mirror { .. } => 1,
            _ => {
                let codec = codec.expect("erasure scheme has a codec");
                codec.data_shards() * codec.shard_multiple()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(Redundancy::Mirror { copies: 3 }.total_shards(), 3);
        assert_eq!(Redundancy::Mirror { copies: 3 }.tolerated_failures(), 2);
        assert_eq!(Redundancy::XorParity { data: 4 }.total_shards(), 5);
        assert_eq!(Redundancy::EvenOdd { p: 5 }.total_shards(), 7);
        assert_eq!(Redundancy::Rdp { p: 5 }.total_shards(), 6);
        assert_eq!(
            Redundancy::ReedSolomon { data: 6, parity: 3 }.total_shards(),
            9
        );
        assert_eq!(
            Redundancy::ReedSolomon { data: 6, parity: 3 }.tolerated_failures(),
            3
        );
    }

    #[test]
    fn mirror_roundtrip() {
        let scheme = Redundancy::Mirror { copies: 2 };
        let codec = scheme.codec().unwrap();
        let shards = scheme.encode_block(&[1, 2, 3], codec.as_deref()).unwrap();
        assert_eq!(shards, vec![vec![1, 2, 3], vec![1, 2, 3]]);
        let block = scheme
            .decode_block(vec![None, Some(vec![1, 2, 3])], codec.as_deref(), 0)
            .unwrap();
        assert_eq!(block, vec![1, 2, 3]);
        assert!(matches!(
            scheme.decode_block(vec![None, None], codec.as_deref(), 7),
            Err(VdsError::DataLoss { lba: 7 })
        ));
    }

    #[test]
    fn erasure_roundtrip_with_loss() {
        let scheme = Redundancy::ReedSolomon { data: 4, parity: 2 };
        let codec = scheme.codec().unwrap();
        let block: Vec<u8> = (0..32).collect();
        let shards = scheme.encode_block(&block, codec.as_deref()).unwrap();
        assert_eq!(shards.len(), 6);
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opt[0] = None;
        opt[5] = None;
        let got = scheme.decode_block(opt, codec.as_deref(), 0).unwrap();
        assert_eq!(got, block);
    }

    #[test]
    fn encode_block_into_reuses_scratch() {
        let scheme = Redundancy::ReedSolomon { data: 4, parity: 2 };
        let codec = scheme.codec().unwrap();
        let mut scratch = Vec::new();
        for round in 0..3u8 {
            let block: Vec<u8> = (0..32).map(|b| b ^ round).collect();
            scheme
                .encode_block_into(&block, codec.as_deref(), &mut scratch)
                .unwrap();
            let fresh = scheme.encode_block(&block, codec.as_deref()).unwrap();
            assert_eq!(scratch, fresh);
        }
        // Mirror path too, including shrinking an oversized scratch.
        let mirror = Redundancy::Mirror { copies: 2 };
        mirror
            .encode_block_into(&[1, 2], None, &mut scratch)
            .unwrap();
        assert_eq!(scratch, vec![vec![1, 2], vec![1, 2]]);
    }

    #[test]
    fn rdp_geometry_matches_codec() {
        let scheme = Redundancy::Rdp { p: 5 };
        let codec = scheme.codec().unwrap().unwrap();
        assert_eq!(codec.total_shards(), scheme.total_shards());
        let scheme = Redundancy::EvenOdd { p: 5 };
        let codec = scheme.codec().unwrap().unwrap();
        assert_eq!(codec.total_shards(), scheme.total_shards());
    }

    #[test]
    fn lrc_roundtrip_with_loss() {
        let scheme = Redundancy::LocalReconstruction {
            groups: 2,
            group_size: 2,
            global_parity: 2,
        };
        assert_eq!(scheme.total_shards(), 8);
        assert_eq!(scheme.tolerated_failures(), 3);
        let codec = scheme.codec().unwrap();
        let block: Vec<u8> = (0..32).collect();
        let shards = scheme.encode_block(&block, codec.as_deref()).unwrap();
        assert_eq!(shards.len(), 8);
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opt[0] = None;
        opt[3] = None;
        opt[6] = None;
        let got = scheme.decode_block(opt, codec.as_deref(), 0).unwrap();
        assert_eq!(got, block);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Redundancy::Mirror { copies: 0 }.codec().is_err());
        assert!(Redundancy::EvenOdd { p: 4 }.codec().is_err());
        assert!(Redundancy::Rdp { p: 2 }.codec().is_err());
        assert!(Redundancy::ReedSolomon { data: 0, parity: 1 }
            .codec()
            .is_err());
    }
}
