//! Migration planning and accounting types.
//!
//! A membership change moves data; the paper's adaptivity results (Lemmas
//! 3.2–3.5) bound *how much*. This module holds the vocabulary for that
//! machinery: [`MigrationReport`] measures what an executed migration did,
//! [`MigrationPlan`] is the batched dry-run (what a change *would* move,
//! grouped so each source→target device queue is contiguous), and
//! [`ShardMove`] is the unit both speak in.
//!
//! The plan carries enough accounting — planned vs. total blocks and the
//! fair minimum the change could possibly move — that the measured
//! competitive ratio of Lemma 3.2 falls out of
//! [`MigrationPlan::competitive_ratio`] for free.

use std::collections::BTreeMap;

/// Outcome of a data migration triggered by a membership change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Logical blocks examined.
    pub blocks: u64,
    /// Total shards examined (`blocks × total_shards`).
    pub shards_total: u64,
    /// Shards whose device changed and were copied.
    pub shards_moved: u64,
    /// Shards that had to be reconstructed from redundancy because their
    /// source device was gone.
    pub shards_reconstructed: u64,
}

impl MigrationReport {
    /// The fraction of shards moved — the quantity the paper's
    /// competitiveness results bound.
    #[must_use]
    pub fn moved_fraction(&self) -> f64 {
        if self.shards_total == 0 {
            0.0
        } else {
            self.shards_moved as f64 / self.shards_total as f64
        }
    }

    /// Folds another report into this one — incremental drivers
    /// ([`crate::StorageCluster::migrate_batch`] in a loop) accumulate
    /// their per-call reports into one total.
    pub fn merge(&mut self, other: MigrationReport) {
        self.blocks += other.blocks;
        self.shards_total += other.shards_total;
        self.shards_moved += other.shards_moved;
        self.shards_reconstructed += other.shards_reconstructed;
    }
}

/// One shard relocation in a migration dry-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Logical block address of the redundancy group.
    pub lba: u64,
    /// Copy / shard index within the group.
    pub copy: usize,
    /// Device currently computed to hold the shard.
    pub from: u64,
    /// Device that will hold it after the change.
    pub to: u64,
}

/// A dry-run migration plan: what a membership change *would* move.
///
/// Produced by [`crate::StorageCluster::plan_add_device`],
/// [`crate::StorageCluster::plan_remove_device`] and
/// [`crate::StorageCluster::plan_rebuild`] without touching any data, so
/// operators can inspect the migration volume (per-device inflow,
/// measured competitive ratio) before committing to a change.
///
/// Placements are diffed in bulk with the stride-k batch API and the
/// moves are sorted by `(from, to, lba, copy)`, so every (source device →
/// target device) transfer queue is one contiguous run of the `moves`
/// vector — see [`MigrationPlan::device_queues`].
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    /// Every shard that would change devices, sorted by
    /// `(from, to, lba, copy)`.
    pub moves: Vec<ShardMove>,
    /// Total shards examined.
    pub shards_total: u64,
    /// Total logical blocks examined.
    pub blocks_total: u64,
    /// Blocks with at least one moving shard. Under 2–4-competitive churn
    /// most blocks are unchanged, so `blocks_planned ≪ blocks_total`.
    pub blocks_planned: u64,
    /// The fair minimum number of shards *any* placement strategy must
    /// move for this change: the capacity share of an added device, or
    /// the shards resident on a removed one. Zero when unknown (e.g. a
    /// no-op rebuild), in which case the competitive ratio is undefined.
    pub fair_min_shards: f64,
}

impl MigrationPlan {
    /// Fraction of all shards that would move.
    #[must_use]
    pub fn moved_fraction(&self) -> f64 {
        if self.shards_total == 0 {
            0.0
        } else {
            self.moves.len() as f64 / self.shards_total as f64
        }
    }

    /// The measured competitive ratio: planned moves over the fair
    /// minimum any strategy must move (Lemma 3.2 bounds this by 2–4 for
    /// Redundant Share). Returns 0.0 when the fair minimum is zero —
    /// a no-op change has no meaningful ratio.
    #[must_use]
    pub fn competitive_ratio(&self) -> f64 {
        if self.fair_min_shards <= 0.0 {
            0.0
        } else {
            self.moves.len() as f64 / self.fair_min_shards
        }
    }

    /// Bytes-free view: shards flowing *into* each device, as
    /// `(device, count)` sorted by device id.
    #[must_use]
    pub fn inflow_per_device(&self) -> Vec<(u64, u64)> {
        let mut map = BTreeMap::new();
        for mv in &self.moves {
            *map.entry(mv.to).or_insert(0u64) += 1;
        }
        map.into_iter().collect()
    }

    /// The per-(source, target) transfer queues: contiguous sub-slices of
    /// `moves`, as `(from, to, moves)` in ascending `(from, to)` order.
    /// Each queue is everything one device streams to one other device,
    /// so an executor can hand whole queues to per-device workers.
    #[must_use]
    pub fn device_queues(&self) -> Vec<(u64, u64, &[ShardMove])> {
        let mut queues = Vec::new();
        let mut start = 0;
        while start < self.moves.len() {
            let (from, to) = (self.moves[start].from, self.moves[start].to);
            let mut end = start + 1;
            while end < self.moves.len() && self.moves[end].from == from && self.moves[end].to == to
            {
                end += 1;
            }
            queues.push((from, to, &self.moves[start..end]));
            start = end;
        }
        queues
    }
}

/// The device operations one migrating block expands to — produced by the
/// read-only gather phase of the parallel executor and applied afterwards
/// by per-device writers.
#[derive(Debug, Default)]
pub(crate) struct BlockOps {
    /// Shards to drop from their old device: `(device, lba, copy)`.
    pub removes: Vec<(u64, u64, usize)>,
    /// Shards to land on their new device: `(device, lba, copy, payload)`.
    pub stores: Vec<(u64, u64, usize, Vec<u8>)>,
    /// Shards whose device changed (the paper-bounded movement volume).
    pub moved: u64,
    /// Shards reconstructed from redundancy because their source was gone.
    pub reconstructed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(lba: u64, copy: usize, from: u64, to: u64) -> ShardMove {
        ShardMove {
            lba,
            copy,
            from,
            to,
        }
    }

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = MigrationReport {
            blocks: 1,
            shards_total: 2,
            shards_moved: 1,
            shards_reconstructed: 0,
        };
        a.merge(MigrationReport {
            blocks: 3,
            shards_total: 6,
            shards_moved: 2,
            shards_reconstructed: 1,
        });
        assert_eq!(
            a,
            MigrationReport {
                blocks: 4,
                shards_total: 8,
                shards_moved: 3,
                shards_reconstructed: 1,
            }
        );
        assert!((a.moved_fraction() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn competitive_ratio_handles_noop() {
        let plan = MigrationPlan::default();
        assert_eq!(plan.competitive_ratio(), 0.0);
        let plan = MigrationPlan {
            moves: vec![mv(0, 0, 1, 2), mv(1, 0, 1, 2), mv(2, 1, 3, 2)],
            shards_total: 10,
            blocks_total: 5,
            blocks_planned: 3,
            fair_min_shards: 2.0,
        };
        assert!((plan.competitive_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn device_queues_are_contiguous_and_exhaustive() {
        let plan = MigrationPlan {
            // Already in (from, to, lba, copy) order, as the planner emits.
            moves: vec![
                mv(4, 0, 1, 2),
                mv(9, 1, 1, 2),
                mv(2, 0, 1, 3),
                mv(7, 1, 5, 2),
            ],
            shards_total: 20,
            blocks_total: 10,
            blocks_planned: 4,
            fair_min_shards: 4.0,
        };
        let queues = plan.device_queues();
        assert_eq!(queues.len(), 3);
        assert_eq!(queues[0].0, 1);
        assert_eq!(queues[0].1, 2);
        assert_eq!(queues[0].2.len(), 2);
        assert_eq!(queues[1], (1, 3, &plan.moves[2..3]));
        assert_eq!(queues[2], (5, 2, &plan.moves[3..4]));
        let total: usize = queues.iter().map(|(_, _, q)| q.len()).sum();
        assert_eq!(total, plan.moves.len());
    }
}
