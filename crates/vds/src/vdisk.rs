//! A byte-addressed virtual disk on top of the block cluster.
//!
//! [`VirtualDisk`] gives applications the flat address space the paper's
//! storage virtualization promises — "what appears to be a single storage
//! device" — translating byte ranges into logical blocks, including
//! read-modify-write for unaligned writes, while the cluster underneath
//! spreads the blocks fairly and redundantly over heterogeneous devices.

use crate::cluster::StorageCluster;
use crate::error::VdsError;

/// A flat byte-addressed view of a [`StorageCluster`].
///
/// Unwritten regions read back as zeroes, like a sparse disk.
///
/// # Example
///
/// ```
/// use rshare_vds::{Redundancy, StorageCluster, VirtualDisk};
///
/// let cluster = StorageCluster::builder()
///     .block_size(64)
///     .redundancy(Redundancy::Mirror { copies: 2 })
///     .device(0, 1_000)
///     .device(1, 1_000)
///     .device(2, 1_000)
///     .build()
///     .unwrap();
/// let mut disk = VirtualDisk::new(cluster);
/// disk.write_at(100, b"hello world").unwrap();
/// assert_eq!(disk.read_at(100, 11).unwrap(), b"hello world");
/// ```
#[derive(Debug)]
pub struct VirtualDisk {
    cluster: StorageCluster,
}

impl VirtualDisk {
    /// Wraps a cluster into a byte-addressed disk.
    #[must_use]
    pub fn new(cluster: StorageCluster) -> Self {
        Self { cluster }
    }

    /// The underlying cluster (e.g. to add devices or inspect statistics).
    #[must_use]
    pub fn cluster(&self) -> &StorageCluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster for administrative
    /// operations (device add/remove/fail/rebuild).
    pub fn cluster_mut(&mut self) -> &mut StorageCluster {
        &mut self.cluster
    }

    /// Consumes the disk, returning the cluster.
    #[must_use]
    pub fn into_cluster(self) -> StorageCluster {
        self.cluster
    }

    /// Writes `data` at byte `offset`, spanning blocks as needed.
    ///
    /// # Errors
    ///
    /// Propagates cluster I/O errors; partial writes are possible on error
    /// (as with a real disk, callers decide how to handle torn writes).
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), VdsError> {
        let bs = self.cluster.block_size() as u64;
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let lba = pos / bs;
            let in_block = (pos % bs) as usize;
            let chunk = ((bs as usize) - in_block).min(data.len() - written);
            let mut block = self.read_block_or_zeroes(lba)?;
            block[in_block..in_block + chunk].copy_from_slice(&data[written..written + chunk]);
            self.cluster.write_block(lba, &block)?;
            written += chunk;
        }
        Ok(())
    }

    /// Reads `len` bytes at byte `offset`; unwritten space reads as zeroes.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable-data errors from the cluster.
    pub fn read_at(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, VdsError> {
        let bs = self.cluster.block_size() as u64;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let pos = offset + out.len() as u64;
            let lba = pos / bs;
            let in_block = (pos % bs) as usize;
            let chunk = ((bs as usize) - in_block).min(len - out.len());
            let block = self.read_block_or_zeroes(lba)?;
            out.extend_from_slice(&block[in_block..in_block + chunk]);
        }
        Ok(out)
    }

    fn read_block_or_zeroes(&mut self, lba: u64) -> Result<Vec<u8>, VdsError> {
        match self.cluster.read_block(lba) {
            Ok(block) => Ok(block),
            Err(VdsError::BlockNotFound { .. }) => Ok(vec![0u8; self.cluster.block_size()]),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundancy::Redundancy;

    fn disk() -> VirtualDisk {
        let cluster = StorageCluster::builder()
            .block_size(32)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 10_000)
            .device(1, 10_000)
            .device(2, 10_000)
            .build()
            .unwrap();
        VirtualDisk::new(cluster)
    }

    #[test]
    fn unaligned_write_and_read() {
        let mut d = disk();
        let payload: Vec<u8> = (0..100).collect();
        d.write_at(17, &payload).unwrap();
        assert_eq!(d.read_at(17, 100).unwrap(), payload);
        // Bytes around the write read as zeroes.
        assert_eq!(d.read_at(0, 17).unwrap(), vec![0u8; 17]);
        assert_eq!(d.read_at(117, 10).unwrap(), vec![0u8; 10]);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut d = disk();
        d.write_at(0, &[1u8; 64]).unwrap();
        d.write_at(30, &[2u8; 10]).unwrap();
        let got = d.read_at(0, 64).unwrap();
        assert_eq!(&got[..30], &[1u8; 30]);
        assert_eq!(&got[30..40], &[2u8; 10]);
        assert_eq!(&got[40..], &[1u8; 24]);
    }

    #[test]
    fn sparse_reads_are_zero() {
        let mut d = disk();
        assert_eq!(d.read_at(1_000_000, 5).unwrap(), vec![0u8; 5]);
    }

    #[test]
    fn unrecoverable_data_surfaces_as_error() {
        let mut d = disk();
        d.write_at(0, &[5u8; 64]).unwrap();
        d.cluster_mut().fail_device(0).unwrap();
        d.cluster_mut().fail_device(1).unwrap();
        // Two of three devices gone under 2-way mirroring: some block of
        // the written range is unrecoverable.
        let result = d.read_at(0, 64);
        assert!(
            matches!(result, Err(crate::error::VdsError::DataLoss { .. })) || result.is_ok(),
            "must be either served or an explicit DataLoss"
        );
        // Writing through a half-dead cluster can also fail loudly rather
        // than silently dropping data.
        let write = d.write_at(0, &[1u8; 256]);
        if let Err(e) = write {
            assert!(matches!(
                e,
                crate::error::VdsError::DeviceFailed { .. }
                    | crate::error::VdsError::DataLoss { .. }
            ));
        }
    }

    #[test]
    fn survives_failure_through_cluster_access() {
        let mut d = disk();
        d.write_at(0, &[9u8; 200]).unwrap();
        d.cluster_mut().fail_device(1).unwrap();
        assert_eq!(d.read_at(0, 200).unwrap(), vec![9u8; 200]);
        d.cluster_mut().rebuild().unwrap();
        assert_eq!(d.read_at(0, 200).unwrap(), vec![9u8; 200]);
    }
}
