//! Cluster health: live metric handles, the fairness report behind the
//! paper's Lemma 3.1, and supporting types for the Prometheus surface.
//!
//! The paper's central quantitative claim is *fairness*: every device
//! should hold (and therefore serve) a share of the data proportional to
//! its capacity `b_i / B`. [`FairnessReport`] turns the live per-device
//! utilisation into exactly that comparison — the maximum relative
//! deviation from the fair share is the single number the experiments
//! track. [`HealthSnapshot`] bundles it with the adaptivity-side health
//! signals: migration debt (blocks still awaiting lazy migration) and
//! degraded blocks (groups missing at least one shard).
//!
//! The metric handles themselves ([`ClusterMetrics`]) are plain
//! `rshare-obs` atomics registered once at cluster construction; the hot
//! paths clone nothing and lock nothing — an instrumented read is the
//! uninstrumented read plus a handful of relaxed `fetch_add`s, and one
//! sampled read in a few dozen additionally pays two monotonic clock
//! reads for the latency histogram.

use std::sync::Arc;

use rshare_obs::{Counter, Gauge, Histogram, Registry};

/// Shared handles to every series the cluster maintains, registered once
/// at construction. Cold: built once, cloned never — the cluster owns the
/// only copy and the registry keeps the other `Arc`.
pub(crate) struct ClusterMetrics {
    /// The registry all series live in (owned or shared with other
    /// clusters via [`crate::ClusterBuilder::metrics_registry`]).
    pub(crate) registry: Arc<Registry>,
    /// Successful block reads.
    pub(crate) reads_total: Arc<Counter>,
    /// Successful reads that needed a fallback copy or reconstruction.
    pub(crate) degraded_reads_total: Arc<Counter>,
    /// Successful block writes.
    pub(crate) writes_total: Arc<Counter>,
    /// Latency of successful block reads, in nanoseconds (sampled — see
    /// `LATENCY_SAMPLE` in `cluster.rs`; the read counters stay exact).
    pub(crate) read_latency_ns: Arc<Histogram>,
    /// Shard moves contained in dry-run migration plans.
    pub(crate) migration_moves_planned_total: Arc<Counter>,
    /// Shard moves actually executed by migrations and rebuilds.
    pub(crate) migration_moves_executed_total: Arc<Counter>,
    /// Shards rebuilt from redundancy during migration, rebuild or repair.
    pub(crate) shards_reconstructed_total: Arc<Counter>,
    /// Blocks repaired in place by [`crate::StorageCluster::repair`].
    pub(crate) repair_blocks_total: Arc<Counter>,
    /// Blocks still awaiting lazy migration (refreshed by snapshots).
    pub(crate) pending_blocks: Arc<Gauge>,
    /// Blocks currently missing at least one shard (refreshed by
    /// snapshots).
    pub(crate) degraded_blocks: Arc<Gauge>,
    /// Online device count (refreshed by snapshots).
    pub(crate) devices_online: Arc<Gauge>,
    /// Failed device count (refreshed by snapshots).
    pub(crate) devices_failed: Arc<Gauge>,
}

impl ClusterMetrics {
    /// Registers (or re-attaches to) the cluster's series in `registry`.
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        let r = &registry;
        Self {
            reads_total: r.counter("reads_total", "Successful block reads"),
            degraded_reads_total: r.counter(
                "degraded_reads_total",
                "Successful reads served via a fallback copy or reconstruction",
            ),
            writes_total: r.counter("writes_total", "Successful block writes"),
            read_latency_ns: r.histogram(
                "read_latency_ns",
                "Block read latency in nanoseconds (sampled reads)",
            ),
            migration_moves_planned_total: r.counter(
                "migration_moves_planned_total",
                "Shard moves contained in dry-run migration plans",
            ),
            migration_moves_executed_total: r.counter(
                "migration_moves_executed_total",
                "Shard moves executed by migrations and rebuilds",
            ),
            shards_reconstructed_total: r.counter(
                "shards_reconstructed_total",
                "Shards rebuilt from redundancy during migration, rebuild or repair",
            ),
            repair_blocks_total: r.counter(
                "repair_blocks_total",
                "Blocks repaired in place (missing shards re-stored)",
            ),
            pending_blocks: r.gauge("pending_blocks", "Blocks awaiting lazy migration"),
            degraded_blocks: r.gauge("degraded_blocks", "Blocks missing at least one shard"),
            devices_online: r.gauge("devices_online", "Devices serving I/O"),
            devices_failed: r.gauge("devices_failed", "Devices marked failed"),
            registry,
        }
    }
}

/// One online device's share of the stored data versus its fair share.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLoad {
    /// The device identifier.
    pub device: u64,
    /// Shards currently resident on the device.
    pub used_blocks: u64,
    /// The device's capacity in shard blocks.
    pub capacity_blocks: u64,
    /// Fraction of all stored shards on this device.
    pub share: f64,
    /// The paper's fair share `b_i / B`: capacity over total capacity.
    pub fair_share: f64,
    /// Relative deviation `share / fair_share - 1` (0 when the cluster is
    /// empty).
    pub deviation: f64,
}

/// Live fairness accounting over the online devices: actual shard shares
/// against the capacity-proportional fair shares of Lemma 3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Per-device loads, ascending by device id.
    pub devices: Vec<DeviceLoad>,
    /// Total shards resident on online devices.
    pub total_used: u64,
    /// Total capacity of online devices, in shard blocks.
    pub total_capacity: u64,
    /// Largest absolute relative deviation over all devices — the single
    /// fairness number the experiments track (0 for an empty cluster).
    pub max_deviation: f64,
}

impl FairnessReport {
    /// Builds the report from `(id, used, capacity)` rows of the online
    /// devices.
    pub(crate) fn compute(rows: &[(u64, u64, u64)]) -> Self {
        let total_used: u64 = rows.iter().map(|&(_, used, _)| used).sum();
        let total_capacity: u64 = rows.iter().map(|&(_, _, cap)| cap).sum();
        let mut max_deviation = 0.0f64;
        let devices = rows
            .iter()
            .map(|&(device, used_blocks, capacity_blocks)| {
                let fair_share = if total_capacity == 0 {
                    0.0
                } else {
                    capacity_blocks as f64 / total_capacity as f64
                };
                let share = if total_used == 0 {
                    0.0
                } else {
                    used_blocks as f64 / total_used as f64
                };
                let deviation = if total_used == 0 || fair_share == 0.0 {
                    0.0
                } else {
                    share / fair_share - 1.0
                };
                max_deviation = max_deviation.max(deviation.abs());
                DeviceLoad {
                    device,
                    used_blocks,
                    capacity_blocks,
                    share,
                    fair_share,
                    deviation,
                }
            })
            .collect();
        Self {
            devices,
            total_used,
            total_capacity,
            max_deviation,
        }
    }
}

/// A point-in-time health summary of the cluster: device counts, the
/// adaptivity debts, and the fairness report.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Devices serving I/O.
    pub devices_online: usize,
    /// Devices marked failed (contents lost, awaiting rebuild).
    pub devices_failed: usize,
    /// Logical blocks stored.
    pub blocks: u64,
    /// Blocks still awaiting lazy migration (the migration debt bounded by
    /// the paper's competitive lemmas).
    pub pending_blocks: u64,
    /// Blocks currently missing at least one shard.
    pub degraded_blocks: u64,
    /// Fairness of the current data distribution over online devices.
    pub fairness: FairnessReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_of_perfectly_fair_rows_is_zero() {
        let report = FairnessReport::compute(&[(0, 100, 1000), (1, 200, 2000), (2, 300, 3000)]);
        assert_eq!(report.total_used, 600);
        assert_eq!(report.total_capacity, 6000);
        assert!(report.max_deviation.abs() < 1e-12);
        assert_eq!(report.devices.len(), 3);
        assert!((report.devices[1].share - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.devices[1].fair_share - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_flags_the_overloaded_device() {
        // Device 1 holds double its fair share.
        let report = FairnessReport::compute(&[(0, 100, 1500), (1, 200, 1500)]);
        let dev1 = &report.devices[1];
        assert!((dev1.fair_share - 0.5).abs() < 1e-12);
        assert!((dev1.share - 2.0 / 3.0).abs() < 1e-12);
        assert!((dev1.deviation - (4.0 / 3.0 - 1.0)).abs() < 1e-12);
        assert!((report.max_deviation - dev1.deviation).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_has_zero_deviation() {
        let report = FairnessReport::compute(&[(0, 0, 100), (1, 0, 200)]);
        assert_eq!(report.total_used, 0);
        assert_eq!(report.max_deviation, 0.0);
        assert!(report.devices.iter().all(|d| d.deviation == 0.0));
        let empty = FairnessReport::compute(&[]);
        assert_eq!(empty.max_deviation, 0.0);
    }
}
