//! Error type of the storage virtualization layer.

use rshare_core::PlacementError;
use rshare_erasure::ErasureError;

/// Errors raised by the virtualized storage cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VdsError {
    /// The placement layer rejected the configuration.
    Placement(PlacementError),
    /// The erasure code rejected the shards.
    Erasure(ErasureError),
    /// The named device does not exist.
    UnknownDevice {
        /// The device identifier looked up.
        id: u64,
    },
    /// The operation targets a device that is marked failed.
    DeviceFailed {
        /// The failed device.
        id: u64,
    },
    /// A device ran out of physical capacity.
    OutOfSpace {
        /// The full device.
        id: u64,
    },
    /// The logical block has never been written.
    BlockNotFound {
        /// The logical block address.
        lba: u64,
    },
    /// Too many shards of a redundancy group are unavailable to serve or
    /// rebuild it.
    DataLoss {
        /// The logical block address.
        lba: u64,
    },
    /// A write had the wrong length for the cluster's block size.
    WrongBlockSize {
        /// Expected block size in bytes.
        expected: usize,
        /// Provided payload size.
        got: usize,
    },
    /// The cluster configuration is invalid (e.g. zero block size).
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An internal invariant did not hold. Returned (instead of
    /// panicking) from public read/migrate/repair paths when a state the
    /// constructor is supposed to rule out is observed anyway — seeing
    /// this is a bug in this crate, not in the caller.
    Internal {
        /// Which invariant was violated.
        reason: &'static str,
    },
}

impl std::fmt::Display for VdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Placement(e) => write!(f, "placement error: {e}"),
            Self::Erasure(e) => write!(f, "erasure coding error: {e}"),
            Self::UnknownDevice { id } => write!(f, "no device with id {id}"),
            Self::DeviceFailed { id } => write!(f, "device {id} has failed"),
            Self::OutOfSpace { id } => write!(f, "device {id} is out of space"),
            Self::BlockNotFound { lba } => write!(f, "logical block {lba} was never written"),
            Self::DataLoss { lba } => {
                write!(
                    f,
                    "logical block {lba} is unrecoverable (too many shards lost)"
                )
            }
            Self::WrongBlockSize { expected, got } => {
                write!(
                    f,
                    "payload of {got} bytes does not match block size {expected}"
                )
            }
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::Internal { reason } => {
                write!(
                    f,
                    "internal invariant violated (bug in rshare-vds): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for VdsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Placement(e) => Some(e),
            Self::Erasure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlacementError> for VdsError {
    fn from(e: PlacementError) -> Self {
        Self::Placement(e)
    }
}

impl From<ErasureError> for VdsError {
    fn from(e: ErasureError) -> Self {
        Self::Erasure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: VdsError = PlacementError::ZeroReplication.into();
        assert!(matches!(e, VdsError::Placement(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: VdsError = ErasureError::ShardLengthMismatch.into();
        assert!(matches!(e, VdsError::Erasure(_)));
        assert!(VdsError::OutOfSpace { id: 3 }.to_string().contains('3'));
        assert!(VdsError::DataLoss { lba: 9 }
            .to_string()
            .contains("unrecoverable"));
    }
}
