//! End-to-end failure lifecycle: `fail_device` → degraded reads →
//! `rebuild`, and shard loss → `repair`, with exact metric accounting.
//!
//! These tests pin the *semantics* of the observability series, not just
//! their existence: `degraded_reads_total` must advance by exactly the
//! number of reads whose preferred copy was lost, `repair_blocks_total`
//! by exactly the number of blocks repaired, and both must stay flat once
//! the cluster is healthy again. Data parity is asserted at every stage —
//! the metrics are only trustworthy if the answers they describe are.

use rshare_obs::Metric;
use rshare_vds::{Redundancy, StorageCluster};

const BLOCK_SIZE: usize = 64;

fn payload(lba: u64) -> Vec<u8> {
    (0..BLOCK_SIZE)
        .map(|i| (lba as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

/// Reads a counter's current value out of the cluster's registry.
fn counter(c: &StorageCluster, name: &str) -> u64 {
    match c
        .metrics_registry()
        .expect("metrics are on by default")
        .get(name)
    {
        Some(Metric::Counter(ctr)) => ctr.get(),
        other => panic!("expected counter '{name}', found {other:?}"),
    }
}

#[test]
fn mirror_failure_lifecycle_counts_degraded_reads_exactly() {
    const BLOCKS: u64 = 200;
    const FAILED: u64 = 2;

    let mut cluster = StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .device(0, 4_000)
        .device(1, 6_000)
        .device(FAILED, 5_000)
        .device(3, 5_000)
        .build()
        .unwrap();

    for lba in 0..BLOCKS {
        cluster.write_block(lba, &payload(lba)).unwrap();
    }
    assert_eq!(counter(&cluster, "writes_total"), BLOCKS);

    // Healthy reads: all data back, none degraded.
    for lba in 0..BLOCKS {
        assert_eq!(cluster.read_block(lba).unwrap(), payload(lba));
    }
    assert_eq!(counter(&cluster, "reads_total"), BLOCKS);
    assert_eq!(counter(&cluster, "degraded_reads_total"), 0);

    // A read is degraded exactly when the load-balanced *preferred* copy
    // sat on the failed device and the mirror path fell through to
    // another copy. The preferred choice is an internal hash, so pin the
    // exact per-read semantics instead: each read increments the counter
    // by at most one, and never for a block with no copy on the failed
    // device.
    cluster.fail_device(FAILED).unwrap();
    let mut observed_degraded = 0u64;
    for lba in 0..BLOCKS {
        let before = counter(&cluster, "degraded_reads_total");
        assert_eq!(cluster.read_block(lba).unwrap(), payload(lba));
        let delta = counter(&cluster, "degraded_reads_total") - before;
        assert!(delta <= 1, "one read advances the counter at most once");
        if !cluster.placement(lba).contains(&FAILED) {
            assert_eq!(delta, 0, "untouched block {lba} cannot read degraded");
        }
        observed_degraded += delta;
    }
    assert_eq!(counter(&cluster, "reads_total"), 2 * BLOCKS);
    assert!(
        observed_degraded > 0,
        "some preferred copies must have sat on device {FAILED}"
    );
    let expect_degraded = counter(&cluster, "degraded_reads_total");
    assert_eq!(expect_degraded, observed_degraded);

    // The health surface sees the failure and the redundancy debt.
    let ailing = cluster.health_snapshot();
    assert_eq!(ailing.devices_failed, 1);
    assert!(ailing.degraded_blocks > 0);

    // Rebuild re-protects every block; its reconstruction work lands in
    // the migration counters, one for one with the returned report.
    let moved_before = counter(&cluster, "migration_moves_executed_total");
    let recon_before = counter(&cluster, "shards_reconstructed_total");
    let report = cluster.rebuild().unwrap();
    assert!(report.shards_reconstructed > 0);
    assert_eq!(
        counter(&cluster, "migration_moves_executed_total") - moved_before,
        report.shards_moved
    );
    assert_eq!(
        counter(&cluster, "shards_reconstructed_total") - recon_before,
        report.shards_reconstructed
    );

    // Healthy again: parity holds and the degraded counter stays flat.
    for lba in 0..BLOCKS {
        assert_eq!(cluster.read_block(lba).unwrap(), payload(lba));
    }
    assert_eq!(counter(&cluster, "degraded_reads_total"), expect_degraded);
    let healthy = cluster.health_snapshot();
    assert_eq!(healthy.degraded_blocks, 0);
    assert_eq!(cluster.degraded_block_count(), 0);
}

#[test]
fn erasure_repair_counts_repaired_blocks_exactly() {
    const BLOCKS: u64 = 60;

    let mut cluster = StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(Redundancy::ReedSolomon { data: 2, parity: 1 })
        .device(0, 4_000)
        .device(1, 4_000)
        .device(2, 6_000)
        .device(3, 5_000)
        .device(4, 5_000)
        .build()
        .unwrap();

    for lba in 0..BLOCKS {
        cluster.write_block(lba, &payload(lba)).unwrap();
    }

    // Knock out one data shard on a handful of blocks.
    let victims: &[u64] = &[3, 17, 29, 41, 58];
    for &lba in victims {
        assert!(cluster.inject_shard_loss(lba, 0));
    }
    assert_eq!(cluster.degraded_block_count(), victims.len() as u64);

    // Reading a damaged block reconstructs — and says so, once per read.
    assert_eq!(cluster.read_block(victims[0]).unwrap(), payload(victims[0]));
    assert_eq!(counter(&cluster, "degraded_reads_total"), 1);

    // Repair re-stores the missing shards: the block counter advances by
    // exactly the number of damaged blocks, and each repaired block
    // reconstructed at least its one lost shard.
    let recon_before = counter(&cluster, "shards_reconstructed_total");
    let repaired = cluster.repair().unwrap();
    assert_eq!(repaired, victims.len() as u64);
    assert_eq!(counter(&cluster, "repair_blocks_total"), repaired);
    assert!(counter(&cluster, "shards_reconstructed_total") - recon_before >= victims.len() as u64);

    // Fully healthy: parity everywhere, no more degraded reads.
    assert_eq!(cluster.degraded_block_count(), 0);
    for lba in 0..BLOCKS {
        assert_eq!(cluster.read_block(lba).unwrap(), payload(lba));
    }
    assert_eq!(counter(&cluster, "degraded_reads_total"), 1);
    assert_eq!(cluster.health_snapshot().degraded_blocks, 0);
}
