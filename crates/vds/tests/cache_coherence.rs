//! Property-based coherence tests for the epoch-versioned placement cache.
//!
//! The cache is an invisible optimisation: after *any* sequence of
//! membership changes (eager adds/removals, failures with rebuild, lazy
//! adds with partial migration) and I/O, cached lookups must be
//! bit-identical to the placements of a freshly constructed cluster over
//! the same device set — and a cache miss followed by a hit must return
//! the same answer.

use proptest::prelude::*;
use rshare_vds::{Redundancy, StorageCluster, VdsError};

const BLOCKS: u64 = 120;
const BLOCK_SIZE: usize = 64;

fn payload(lba: u64, salt: u8) -> Vec<u8> {
    (0..BLOCK_SIZE)
        .map(|i| (lba as u8).wrapping_add(i as u8).wrapping_add(salt))
        .collect()
}

fn base_cluster(cache: bool) -> StorageCluster {
    StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .placement_cache(cache)
        .device(0, 8_000)
        .device(1, 10_000)
        .device(2, 12_000)
        .device(3, 9_000)
        .build()
        .unwrap()
}

/// Applies one membership / I/O operation, keeping the cluster valid.
fn apply_op(c: &mut StorageCluster, op: u8, next_id: &mut u64, seed: u64) -> Result<(), VdsError> {
    match op % 5 {
        0 => {
            c.add_device(*next_id, 7_000 + seed % 5_000)?;
            *next_id += 1;
        }
        1 => {
            let ids = c.device_ids();
            if ids.len() > 3 {
                c.remove_device(*ids.last().expect("non-empty"))?;
            }
        }
        2 => {
            let ids = c.device_ids();
            if ids.len() > 3 {
                c.fail_device(ids[0])?;
                c.rebuild()?;
            }
        }
        3 => {
            c.add_device_lazy(*next_id, 9_000)?;
            *next_id += 1;
            // Migrate only part of the blocks, so later operations (and the
            // final check) see a cluster mid-migration at some point.
            c.migrate_step(BLOCKS / 3)?;
        }
        _ => {
            // I/O churn: reads warm the cache, a write goes through the
            // target placement path.
            for lba in (0..BLOCKS).step_by(7) {
                c.read_block(lba)?;
            }
            c.write_block(seed % BLOCKS, &payload(seed % BLOCKS, 0xA5))?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any operation sequence, cached placements equal those of a
    /// freshly built cluster over the same devices, and a miss and the
    /// following hit agree.
    #[test]
    fn cached_placements_match_fresh_cluster(
        ops in prop::collection::vec(0u8..5, 1..8),
        seed in any::<u64>(),
    ) {
        let mut c = base_cluster(true);
        for lba in 0..BLOCKS {
            c.write_block(lba, &payload(lba, 0)).unwrap();
        }
        let mut next_id = 10u64;
        for &op in &ops {
            apply_op(&mut c, op, &mut next_id, seed).unwrap();
        }
        // Drain any in-flight lazy migration so the effective placement is
        // the target strategy's everywhere (what a fresh cluster computes).
        while c.pending_blocks() > 0 {
            c.migrate_step(u64::MAX).unwrap();
        }
        let mut builder = StorageCluster::builder()
            .block_size(BLOCK_SIZE)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .placement_cache(false);
        for id in c.device_ids() {
            builder = builder.device(id, c.device(id).unwrap().capacity_blocks());
        }
        let fresh = builder.build().unwrap();
        for lba in 0..BLOCKS {
            let miss_or_hit = c.placement(lba);
            let hit = c.placement(lba);
            prop_assert_eq!(&miss_or_hit, &hit, "miss/hit disagree at lba {}", lba);
            prop_assert_eq!(
                miss_or_hit,
                fresh.placement(lba),
                "cached placement diverges from fresh strategy at lba {}",
                lba
            );
        }
    }

    /// End-to-end: a cached and an uncached cluster fed the same writes and
    /// membership changes serve identical block contents.
    #[test]
    fn cached_and_uncached_clusters_serve_identical_data(
        ops in prop::collection::vec(0u8..5, 1..6),
        seed in any::<u64>(),
    ) {
        let mut cached = base_cluster(true);
        let mut uncached = base_cluster(false);
        for lba in 0..BLOCKS {
            cached.write_block(lba, &payload(lba, 1)).unwrap();
            uncached.write_block(lba, &payload(lba, 1)).unwrap();
        }
        let (mut id_a, mut id_b) = (10u64, 10u64);
        for &op in &ops {
            apply_op(&mut cached, op, &mut id_a, seed).unwrap();
            apply_op(&mut uncached, op, &mut id_b, seed).unwrap();
        }
        let lbas: Vec<u64> = (0..BLOCKS).collect();
        let a = cached.read_blocks(&lbas).unwrap();
        let b = uncached.read_blocks(&lbas).unwrap();
        prop_assert_eq!(&a, &b);
        // A second pass is served from the cache the first pass warmed
        // (batched migration leaves the cache cold on purpose: one epoch
        // bump per plan, no per-block traffic) and must serve the same.
        let warm = cached.read_blocks(&lbas).unwrap();
        prop_assert_eq!(&a, &warm);
        prop_assert!(cached.cache_stats().hits > 0);
        prop_assert_eq!(uncached.cache_stats().hits, 0);
    }
}
