//! Property-based parity tests for the fused stripe pipeline.
//!
//! `write_blocks` is an allocation optimisation, not a semantic change:
//! after any prelude of membership churn (including a half-finished lazy
//! migration, so batch writes complete pending moves), a batch write must
//! leave the cluster bit-identical — blocks, placements, per-device
//! contents *and I/O counters* — to calling `write_block` once per block.
//! Likewise `read_block_into` must agree with `read_block` on healthy and
//! degraded clusters.

use proptest::prelude::*;
use rshare_vds::{Redundancy, StorageCluster};

const BLOCK_SIZE: usize = 64;

fn payload(lba: u64, salt: u8) -> Vec<u8> {
    (0..BLOCK_SIZE)
        .map(|i| {
            (lba as u8)
                .wrapping_add(i as u8)
                .wrapping_mul(31)
                .wrapping_add(salt)
        })
        .collect()
}

fn build(redundancy: Redundancy) -> StorageCluster {
    StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(redundancy)
        .device(0, 8_000)
        .device(1, 10_000)
        .device(2, 12_000)
        .device(3, 9_000)
        .device(4, 11_000)
        .device(5, 10_500)
        .device(6, 9_500)
        .build()
        .unwrap()
}

fn redundancy_for(kind: u8) -> Redundancy {
    match kind % 3 {
        0 => Redundancy::Mirror { copies: 2 },
        1 => Redundancy::ReedSolomon { data: 4, parity: 2 },
        _ => Redundancy::XorParity { data: 4 },
    }
}

/// Asserts the two clusters are observably identical.
fn assert_same_state(fused: &StorageCluster, looped: &StorageCluster, lbas: &[u64]) {
    assert_eq!(fused.block_count(), looped.block_count());
    assert_eq!(fused.pending_blocks(), looped.pending_blocks());
    assert_eq!(fused.device_ids(), looped.device_ids());
    for id in fused.device_ids() {
        let (f, l) = (
            fused.device(id).expect("device"),
            looped.device(id).expect("device"),
        );
        assert_eq!(f.used_blocks(), l.used_blocks(), "device {id} occupancy");
        assert_eq!(f.stats(), l.stats(), "device {id} I/O counters");
    }
    for &lba in lbas {
        assert_eq!(fused.placement(lba), looped.placement(lba), "lba {lba}");
        assert_eq!(
            fused.read_block(lba).expect("read"),
            looped.read_block(lba).expect("read"),
            "lba {lba}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `write_blocks` == repeated `write_block`, including batches that
    /// overwrite existing blocks and complete lazy migrations.
    #[test]
    fn write_blocks_equals_write_block_loop(
        kind in any::<u8>(),
        count in 1usize..=80,
        salt in any::<u8>(),
        lazy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let redundancy = redundancy_for(kind);
        let mut fused = build(redundancy);
        let mut looped = build(redundancy);
        // Shared prelude on both clusters: seed some blocks, optionally
        // leave a lazy migration half-finished so the batch write has
        // pending moves to complete.
        let prelude: Vec<u64> = (0..40u64).collect();
        for c in [&mut fused, &mut looped] {
            for &lba in &prelude {
                c.write_block(lba, &payload(lba, 0)).unwrap();
            }
            if lazy {
                c.add_device_lazy(100, 9_000).unwrap();
                c.migrate_step(10).unwrap();
            }
        }
        // The batch overlaps the prelude (overwrites + fresh blocks) and
        // may repeat an lba within the batch.
        let lbas: Vec<u64> = (0..count as u64)
            .map(|i| (seed.rotate_left(i as u32) % 60).wrapping_add(i % 3))
            .collect();
        let mut data = Vec::with_capacity(lbas.len() * BLOCK_SIZE);
        for (i, &lba) in lbas.iter().enumerate() {
            data.extend_from_slice(&payload(lba, salt.wrapping_add(i as u8)));
        }
        fused.write_blocks(&lbas, &data).unwrap();
        for (&lba, chunk) in lbas.iter().zip(data.chunks_exact(BLOCK_SIZE)) {
            looped.write_block(lba, chunk).unwrap();
        }
        let mut all: Vec<u64> = prelude.iter().chain(&lbas).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_same_state(&fused, &looped, &all);
    }

    /// `read_block_into` returns exactly what `read_block` returns, on
    /// healthy clusters and degraded ones (mirror copy loss / erasure
    /// reconstruction), without touching bytes beyond the block.
    #[test]
    fn read_block_into_equals_read_block(
        kind in any::<u8>(),
        degrade in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let redundancy = redundancy_for(kind);
        let mut c = build(redundancy);
        let lbas: Vec<u64> = (0..50u64).collect();
        for &lba in &lbas {
            c.write_block(lba, &payload(lba, 7)).unwrap();
        }
        if degrade {
            // Fail one device (within every scheme's tolerance) so some
            // reads go through the degraded path.
            let ids = c.device_ids();
            c.fail_device(ids[(seed % ids.len() as u64) as usize]).unwrap();
        }
        let mut buf = vec![0xEEu8; BLOCK_SIZE];
        for &lba in &lbas {
            let want = c.read_block(lba).expect("read_block");
            c.read_block_into(lba, &mut buf).expect("read_block_into");
            prop_assert_eq!(&buf, &want, "lba {}", lba);
        }
    }
}
