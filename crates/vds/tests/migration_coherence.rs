//! Property-based tests for the batched migration path.
//!
//! Mirrors `cache_coherence.rs`, but for the rebalance engine: after any
//! sequence of membership churn (eager adds/removals, failures with
//! rebuild, lazy adds drained by `migrate_batch`) followed by a final
//! `rebalance`, every block's served bytes are identical to what was
//! written, and every placement matches a freshly built cluster over the
//! same device set. A second property pins the paper's Lemma 3.2 bound:
//! the planned migration for a single-device add or remove moves at most
//! 4× the fair minimum.

use std::collections::HashMap;

use proptest::prelude::*;
use rshare_vds::{Redundancy, StorageCluster, VdsError};

const BLOCKS: u64 = 96;
const BLOCK_SIZE: usize = 64;

fn payload(lba: u64, salt: u8) -> Vec<u8> {
    (0..BLOCK_SIZE)
        .map(|i| (lba as u8).wrapping_add(i as u8).wrapping_add(salt))
        .collect()
}

fn base_cluster(threads: usize) -> StorageCluster {
    StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .migration_threads(threads)
        .device(0, 8_000)
        .device(1, 10_000)
        .device(2, 12_000)
        .device(3, 9_000)
        .build()
        .unwrap()
}

/// Applies one membership / I/O operation, updating the shadow `model` of
/// expected block contents.
fn apply_op(
    c: &mut StorageCluster,
    model: &mut HashMap<u64, Vec<u8>>,
    op: u8,
    next_id: &mut u64,
    seed: u64,
) -> Result<(), VdsError> {
    match op % 6 {
        0 => {
            c.add_device(*next_id, 7_000 + seed % 5_000)?;
            *next_id += 1;
        }
        1 => {
            let ids = c.device_ids();
            if ids.len() > 3 {
                c.remove_device(*ids.last().expect("non-empty"))?;
            }
        }
        2 => {
            let ids = c.device_ids();
            if ids.len() > 3 {
                c.fail_device(ids[0])?;
                c.rebuild()?;
            }
        }
        3 => {
            // Lazy add drained part-way by the batched executor, so later
            // operations see a cluster mid-migration.
            c.add_device_lazy(*next_id, 9_000)?;
            *next_id += 1;
            c.migrate_batch(BLOCKS / 3)?;
        }
        4 => {
            // Lazy add drained by a mix of the serial and batched paths:
            // the two must compose on the same pending set.
            c.add_device_lazy(*next_id, 8_000)?;
            *next_id += 1;
            c.migrate_step(BLOCKS / 5)?;
            c.migrate_batch(BLOCKS / 5)?;
        }
        _ => {
            // I/O churn: overwrite a few blocks (tracked in the model).
            for i in 0..3u64 {
                let lba = (seed.wrapping_add(i * 31)) % BLOCKS;
                let data = payload(lba, 0xA5u8.wrapping_add(i as u8));
                c.write_block(lba, &data)?;
                model.insert(lba, data);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// After random membership churn and a final `rebalance`, served data
    /// is byte-identical to what was written and every placement matches
    /// a freshly built (strategy-only) cluster over the same devices.
    #[test]
    fn rebalance_preserves_data_and_matches_fresh_strategy(
        ops in prop::collection::vec(0u8..6, 1..8),
        seed in any::<u64>(),
        threads in 0usize..3,
    ) {
        let mut c = base_cluster(threads);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for lba in 0..BLOCKS {
            let data = payload(lba, 0);
            c.write_block(lba, &data).unwrap();
            model.insert(lba, data);
        }
        let mut next_id = 10u64;
        for &op in &ops {
            apply_op(&mut c, &mut model, op, &mut next_id, seed).unwrap();
        }
        // Drain whatever lazy migration is still in flight.
        c.rebalance().unwrap();
        prop_assert_eq!(c.pending_blocks(), 0);
        // Byte-identical service for every block.
        let lbas: Vec<u64> = (0..BLOCKS).collect();
        for (got, &lba) in c.read_blocks(&lbas).unwrap().iter().zip(&lbas) {
            prop_assert_eq!(got, &model[&lba], "data diverged at lba {}", lba);
        }
        // Placements equal a fresh cluster's over the same device set.
        let mut builder = StorageCluster::builder()
            .block_size(BLOCK_SIZE)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .placement_cache(false);
        for id in c.device_ids() {
            builder = builder.device(id, c.device(id).unwrap().capacity_blocks());
        }
        let fresh = builder.build().unwrap();
        for lba in 0..BLOCKS {
            prop_assert_eq!(
                c.placement(lba),
                fresh.placement(lba),
                "placement diverged from fresh strategy at lba {}",
                lba
            );
        }
        // Full redundancy everywhere: nothing latent left behind.
        prop_assert_eq!(c.scrub().unwrap(), 0);
    }

    /// Lemma 3.2: a single-device add or remove plans at most 4× the fair
    /// minimum movement (the paper measures ≈1.5 for adds, ≈2.5 for
    /// removals; 4 is the proven bound).
    #[test]
    fn single_device_churn_is_four_competitive(
        caps in prop::collection::vec(6_000u64..14_000, 4..8),
        new_cap in 6_000u64..14_000,
        seed in any::<u64>(),
    ) {
        let mut builder = StorageCluster::builder()
            .block_size(BLOCK_SIZE)
            .redundancy(Redundancy::Mirror { copies: 2 });
        for (id, &cap) in caps.iter().enumerate() {
            builder = builder.device(id as u64, cap);
        }
        let mut c = builder.build().unwrap();
        for lba in 0..1_500u64 {
            c.write_block(lba, &payload(lba, seed as u8)).unwrap();
        }
        let add = c.plan_add_device(99, new_cap).unwrap();
        prop_assert!(add.fair_min_shards > 0.0);
        let add_ratio = add.competitive_ratio();
        prop_assert!(
            add_ratio <= 4.0,
            "add ratio {} exceeds the Lemma 3.2 bound", add_ratio
        );
        // Moves are necessary at all: something flows onto the new device.
        prop_assert!(add.moves.iter().any(|m| m.to == 99));
        let victim = seed % caps.len() as u64;
        let remove = c.plan_remove_device(victim).unwrap();
        prop_assert!(remove.fair_min_shards > 0.0);
        let remove_ratio = remove.competitive_ratio();
        prop_assert!(
            (1.0..=4.0).contains(&remove_ratio),
            "remove ratio {} outside [1, 4]", remove_ratio
        );
    }
}
