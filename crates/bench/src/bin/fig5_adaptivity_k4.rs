//! Figure 5: adaptivity of k = 4 replication on homogeneous bins as the
//! system grows from 4 to 60 bins.
//!
//! The paper adds one bin either as the biggest (head of the list) or the
//! smallest (tail) and plots `replaced blocks / blocks on the new bin`
//! against the number of bins. Adding at the head is nearly constant;
//! adding at the tail grows with n but stays far below the k² = 16 bound
//! of Lemma 3.5.

use rshare_bench::{f, print_table, section};
use rshare_core::RedundantShare;
use rshare_workload::movement::measure_movement;
use rshare_workload::scenario::{adaptivity_pair, homogeneous_bins, ChangeKind};

fn main() {
    let balls = 60_000u64;
    let k = 4;
    section("Figure 5: adaptivity of k = 4 replication, homogeneous bins, n = 4..60");
    let mut rows = Vec::new();
    let mut n = 4usize;
    while n <= 60 {
        let base = homogeneous_bins(n);
        let mut cells = vec![n.to_string()];
        for kind in [ChangeKind::AddBiggest, ChangeKind::AddSmallest] {
            let (before, after, affected) = adaptivity_pair(&base, kind);
            let a = RedundantShare::new(&before, k).unwrap();
            let b = RedundantShare::new(&after, k).unwrap();
            let report = measure_movement(&a, &b, affected, balls);
            cells.push(f(report.factor()));
        }
        rows.push(cells);
        n += 8;
    }
    print_table(&["bins", "add as biggest", "add as smallest"], &rows);
    println!(
        "\npaper (Figure 5): 'for adding bins at the beginning of the list we get\n\
         nearly a constant factor … the more disks are inside the environment,\n\
         the worse the competitiveness becomes [for the smallest]' — upper\n\
         bound k² = 16, with 'a much lower bound at least for this example'."
    );
}
