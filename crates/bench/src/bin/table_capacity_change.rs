//! Table T-H: adaptivity under *capacity* changes.
//!
//! The paper's adaptivity criterion (Section 1.1) covers "any change in
//! the set of data blocks, storage devices, **or their capacities**". This
//! experiment resizes one bin of the heterogeneous base system (a device
//! swapped for a bigger/smaller model under the same name) and measures
//! the replaced copies against the optimal movement: the change in the
//! bin's fair share of copies.

use rshare_bench::{f, print_table, section};
use rshare_core::{BinSet, PlacementStrategy, RedundantShare, TableBased};
use rshare_workload::scenario::heterogeneous_bins;

fn optimal_moves(before: &BinSet, after: &BinSet, k: usize, m: u64) -> u64 {
    let mut table = TableBased::new(before, k, m).expect("fits");
    table.rebalance(after).expect("rebalance").moved
}

fn measured_moves(before: &BinSet, after: &BinSet, k: usize, m: u64) -> u64 {
    let a = RedundantShare::new(before, k).unwrap();
    let b = RedundantShare::new(after, k).unwrap();
    let mut moved = 0u64;
    let (mut va, mut vb) = (Vec::new(), Vec::new());
    for ball in 0..m {
        a.place_into(ball, &mut va);
        b.place_into(ball, &mut vb);
        moved += va.iter().zip(&vb).filter(|(x, y)| x != y).count() as u64;
    }
    moved
}

fn main() {
    let k = 2usize;
    let m = 100_000u64;
    let base = heterogeneous_bins(8);
    section("Table T-H: capacity-change adaptivity (k = 2, 8 heterogeneous bins)");
    let mut rows = Vec::new();
    // Resize the biggest (last id 1007, capacity 1.2M) and the smallest
    // (id 1000, 0.5M) up and down by 50 %.
    let cases = [
        ("grow smallest +50%", 1_000u64, 750_000u64),
        ("shrink smallest -50%", 1_000, 250_000),
        ("grow biggest +50%", 1_007, 1_800_000),
        ("shrink biggest -50%", 1_007, 600_000),
    ];
    for (label, id, new_cap) in cases {
        let after = base.with_capacity(id.into(), new_cap).unwrap();
        let opt = optimal_moves(&base, &after, k, m);
        let got = measured_moves(&base, &after, k, m);
        rows.push(vec![
            label.to_string(),
            opt.to_string(),
            got.to_string(),
            f(got as f64 / opt as f64),
        ]);
    }
    print_table(
        &["change", "optimal moves", "redundant share moves", "ratio"],
        &rows,
    );
    println!(
        "\npaper (Section 1.1): adaptivity covers capacity changes. A resize\n\
         that keeps the bin's rank behaves like the insertion cases\n\
         (factors ≈1.4–2.6); a resize that *reorders* the scan (shrinking\n\
         the biggest bin by half drops it several ranks) is equivalent to a\n\
         removal plus an insertion, so its cost is bounded by the sum of\n\
         the two Lemma 3.2 bounds (8 for k = 2) rather than a single one —\n\
         visible as the larger ratio in the last row."
    );
}
