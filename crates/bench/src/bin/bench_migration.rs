//! Adaptivity fast-path report: migration drain throughput and measured
//! competitive ratios.
//!
//! Three measurements on the rebalance engine:
//!
//! 1. **Migration drain** — blocks/s to drain a lazy single-device add,
//!    `migrate_step` (serial, one block at a time) vs `migrate_batch`
//!    with one worker ("planned": batched diffing, skip-unchanged) vs
//!    `migrate_batch` with all cores ("parallel").
//! 2. **Planner engine sweep** — `plan_add_device` throughput with the
//!    `fast_strategy_threshold` knob forcing the O(k) fast engine vs the
//!    O(n) scan, on the same cluster.
//! 3. **Competitive ratios** — planned moves over the fair minimum for
//!    adding/removing the largest and smallest device, against the
//!    paper's proven 2–4 bound (measured ≈1.5 for adds, ≈2.5 for
//!    removals in the paper's experiments).
//!
//! Prints tables and writes the raw numbers to `BENCH_migration.json`
//! (CI smoke-checks that the file parses). Pass `--smoke` (or `--quick`)
//! to shrink the workload for CI; the report shape is identical.

use std::hint::black_box;
use std::time::Instant;

use rshare_bench::{f, print_table, records_json, section, Record};
use rshare_vds::{MigrationPlan, Redundancy, StorageCluster};

/// Timing repetitions per cell; the best (minimum) time is reported.
const REPS: usize = 3;

/// Devices in the drain cluster — above the fast-placement threshold, so
/// both the serial and batched paths query the O(k) engine and the
/// comparison isolates the per-block orchestration overhead.
const DEVICES: u64 = 96;

/// Blocks drained per `migrate_step`/`migrate_batch` call: both paths pay
/// the same incremental-call cadence.
const BUDGET: u64 = 2_048;

const BLOCK_SIZE: usize = 64;

struct Cell {
    bench: &'static str,
    mode: &'static str,
    items: u64,
    unit: &'static str,
    elapsed_ns: u128,
}

impl Cell {
    fn per_s(&self) -> f64 {
        self.items as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// A measured competitive-ratio row.
struct Ratio {
    change: &'static str,
    ratio: f64,
    moved_fraction: f64,
    fair_min_shards: f64,
    moves: usize,
    blocks_planned: u64,
    blocks_total: u64,
}

fn drain_cluster(blocks: u64, threads: usize) -> StorageCluster {
    let mut b = StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .migration_threads(threads);
    for id in 0..DEVICES {
        b = b.device(id, 40_000 + id * 500);
    }
    let mut c = b.build().expect("valid cluster");
    let data = vec![0x5Au8; BLOCK_SIZE];
    for lba in 0..blocks {
        c.write_block(lba, &data).expect("write");
    }
    c
}

/// Capacity of the lazily added device in the drain benchmark. Small on
/// purpose — incremental expansion — so most pending blocks are
/// *unchanged* and the drain measures how cheaply each path can verify
/// and skip a block (the planner's bulk diff vs the serial per-block
/// placement-cache probes).
const DRAIN_ADD_CAPACITY: u64 = 4_000;

/// Blocks/s to drain a lazy small-device add, per mode.
fn bench_drain(blocks: u64, cells: &mut Vec<Cell>) {
    let modes: [(&'static str, usize, bool); 3] = [
        ("serial", 1, false),  // migrate_step, one block at a time
        ("planned", 1, true),  // migrate_batch, single worker
        ("parallel", 0, true), // migrate_batch, all cores
    ];
    for (mode, threads, batched) in modes {
        let mut best = u128::MAX;
        for _ in 0..REPS {
            // Setup outside the timed region: the drain itself is timed.
            let mut c = drain_cluster(blocks, threads);
            let pending = c
                .add_device_lazy(DEVICES, DRAIN_ADD_CAPACITY)
                .expect("lazy add");
            assert_eq!(pending, blocks);
            let start = Instant::now();
            while c.pending_blocks() > 0 {
                if batched {
                    black_box(c.migrate_batch(BUDGET).expect("migrate_batch"));
                } else {
                    black_box(c.migrate_step(BUDGET).expect("migrate_step"));
                }
            }
            best = best.min(start.elapsed().as_nanos());
        }
        cells.push(Cell {
            bench: "migration_drain",
            mode,
            items: blocks,
            unit: "blocks",
            elapsed_ns: best,
        });
    }
}

/// `plan_add_device` throughput with the placement engine pinned either
/// way by the `fast_strategy_threshold` builder knob.
fn bench_plan_sweep(blocks: u64, cells: &mut Vec<Cell>) {
    let sweeps: [(&'static str, usize); 2] = [
        ("fast_engine", 1),          // always the precomputed O(k) engine
        ("scan_engine", usize::MAX), // always the O(n) scan
    ];
    for (mode, threshold) in sweeps {
        let mut b = StorageCluster::builder()
            .block_size(BLOCK_SIZE)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .fast_strategy_threshold(threshold);
        for id in 0..DEVICES {
            b = b.device(id, 40_000 + id * 500);
        }
        let mut c = b.build().expect("valid cluster");
        let data = vec![0xC3u8; BLOCK_SIZE];
        for lba in 0..blocks {
            c.write_block(lba, &data).expect("write");
        }
        let mut best = u128::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            black_box(c.plan_add_device(DEVICES, 60_000).expect("plan"));
            best = best.min(start.elapsed().as_nanos());
        }
        cells.push(Cell {
            bench: "plan_add",
            mode,
            items: blocks,
            unit: "blocks",
            elapsed_ns: best,
        });
    }
}

/// Measured competitive ratios for single-device churn on a heterogeneous
/// cluster: add/remove of the largest and smallest device.
fn bench_competitive(blocks: u64) -> Vec<Ratio> {
    let caps: [u64; 8] = [5_000, 7_000, 8_000, 9_000, 11_000, 13_000, 16_000, 19_000];
    let mut b = StorageCluster::builder()
        .block_size(BLOCK_SIZE)
        .redundancy(Redundancy::Mirror { copies: 2 });
    for (id, &cap) in caps.iter().enumerate() {
        b = b.device(id as u64, cap * 4);
    }
    let mut c = b.build().expect("valid cluster");
    let data = vec![0x96u8; BLOCK_SIZE];
    for lba in 0..blocks {
        c.write_block(lba, &data).expect("write");
    }
    let largest_cap = caps.iter().max().copied().expect("non-empty") * 4;
    let smallest_cap = caps.iter().min().copied().expect("non-empty") * 4;
    let largest_id = (caps.len() - 1) as u64; // caps ascend with id
    let smallest_id = 0u64;
    let row = |change: &'static str, plan: MigrationPlan| Ratio {
        change,
        ratio: plan.competitive_ratio(),
        moved_fraction: plan.moved_fraction(),
        fair_min_shards: plan.fair_min_shards,
        moves: plan.moves.len(),
        blocks_planned: plan.blocks_planned,
        blocks_total: plan.blocks_total,
    };
    vec![
        row(
            "add_largest",
            c.plan_add_device(99, largest_cap).expect("plan"),
        ),
        row(
            "add_smallest",
            c.plan_add_device(99, smallest_cap).expect("plan"),
        ),
        row(
            "remove_largest",
            c.plan_remove_device(largest_id).expect("plan"),
        ),
        row(
            "remove_smallest",
            c.plan_remove_device(smallest_id).expect("plan"),
        ),
    ]
}

fn speedup(cells: &[Cell], bench: &str, fast: &str, slow: &str) -> f64 {
    let rate = |mode: &str| {
        cells
            .iter()
            .find(|c| c.bench == bench && c.mode == mode)
            .expect("cell present")
            .per_s()
    };
    rate(fast) / rate(slow)
}

/// Hand-rolled JSON (no serde in the dependency set).
fn to_json(cells: &[Cell], ratios: &[Ratio], smoke: bool, blocks: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"smoke\": {smoke}, \"reps\": {REPS}, \"devices\": {DEVICES}, \"blocks\": {blocks}, \"budget\": {BUDGET}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"mode\": \"{}\", \"items\": {}, \"unit\": \"{}\", \"elapsed_ns\": {}, \"per_s\": {:.1}}}{}\n",
            c.bench,
            c.mode,
            c.items,
            c.unit,
            c.elapsed_ns,
            c.per_s(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"competitive\": [\n");
    for (i, r) in ratios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"change\": \"{}\", \"ratio\": {:.3}, \"moved_fraction\": {:.5}, \"fair_min_shards\": {:.1}, \"moves\": {}, \"blocks_planned\": {}, \"blocks_total\": {}}}{}\n",
            r.change,
            r.ratio,
            r.moved_fraction,
            r.fair_min_shards,
            r.moves,
            r.blocks_planned,
            r.blocks_total,
            if i + 1 == ratios.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&records_json(&records(cells, ratios)));
    s.push_str(",\n");
    let max_ratio = ratios.iter().map(|r| r.ratio).fold(0.0f64, f64::max);
    s.push_str(&format!(
        "  \"summary\": {{\"planned_vs_serial_speedup\": {:.2}, \"parallel_vs_serial_speedup\": {:.2}, \"fast_vs_scan_plan_speedup\": {:.2}, \"max_competitive_ratio\": {:.3}, \"paper_bound\": 4.0}}\n",
        speedup(cells, "migration_drain", "planned", "serial"),
        speedup(cells, "migration_drain", "parallel", "serial"),
        speedup(cells, "plan_add", "fast_engine", "scan_engine"),
        max_ratio,
    ));
    s.push('}');
    s.push('\n');
    s
}

/// The unified cross-binary records: one throughput entry per cell with
/// the serial / scan-engine variant as the baseline, plus one ratio entry
/// per membership change measured against the paper's proven bound of 4.
fn records(cells: &[Cell], ratios: &[Ratio]) -> Vec<Record> {
    let mut out: Vec<Record> = cells
        .iter()
        .map(|c| {
            let name = format!("{}_{}", c.bench, c.mode);
            let unit: &'static str = match c.unit {
                "blocks" => "blocks_per_s",
                _ => "plans_per_s",
            };
            let slow = match (c.bench, c.mode) {
                ("migration_drain", "planned" | "parallel") => Some("serial"),
                ("plan_add", "fast_engine") => Some("scan_engine"),
                _ => None,
            };
            match slow {
                Some(slow_mode) => {
                    let base = cells
                        .iter()
                        .find(|s| s.bench == c.bench && s.mode == slow_mode)
                        .expect("baseline cell present");
                    Record::with_baseline(name, unit, c.per_s(), base.per_s())
                }
                None => Record::new(name, unit, c.per_s()),
            }
        })
        .collect();
    out.extend(ratios.iter().map(|r| {
        Record::with_baseline(
            format!("competitive_ratio_{}", r.change),
            "ratio",
            r.ratio,
            4.0,
        )
    }));
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    let blocks: u64 = if smoke { 12_000 } else { 120_000 };
    section(&format!(
        "Adaptivity fast path — batched migration + competitive ratios{}",
        if smoke { " (smoke mode)" } else { "" }
    ));

    let mut cells = Vec::new();
    bench_drain(blocks, &mut cells);
    bench_plan_sweep(blocks, &mut cells);
    let ratios = bench_competitive(blocks.min(24_000));

    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            c.bench.to_string(),
            c.mode.to_string(),
            c.items.to_string(),
            format!("{:.3} M{}/s", c.per_s() / 1e6, &c.unit[..c.unit.len() - 1]),
        ]);
    }
    print_table(&["bench", "mode", "items", "rate"], &rows);

    println!();
    let mut rows = Vec::new();
    for r in &ratios {
        rows.push(vec![
            r.change.to_string(),
            f(r.ratio),
            f(r.moved_fraction),
            format!("{}/{}", r.blocks_planned, r.blocks_total),
        ]);
    }
    print_table(
        &[
            "change",
            "competitive ratio",
            "moved fraction",
            "blocks planned",
        ],
        &rows,
    );

    println!(
        "\nspeedups vs serial migrate_step: planned {}x, parallel {}x; max ratio {} (paper bound 4.0)",
        f(speedup(&cells, "migration_drain", "planned", "serial")),
        f(speedup(&cells, "migration_drain", "parallel", "serial")),
        f(ratios.iter().map(|r| r.ratio).fold(0.0f64, f64::max)),
    );

    let json = to_json(&cells, &ratios, smoke, blocks);
    std::fs::write("BENCH_migration.json", &json).expect("write BENCH_migration.json");
    println!(
        "wrote BENCH_migration.json ({} result rows, {} ratio rows)",
        cells.len(),
        ratios.len()
    );
}
