//! Figure 1 / Section 2.2: the trivial replication strategy wastes
//! capacity on heterogeneous bins.
//!
//! The paper's example: bins (2, 1, 1), k = 2. A perfectly fair mirror
//! puts the first copy of *every* ball on the big bin; the trivial
//! strategy (two independent fair draws) misses the big bin with
//! probability `(1 − 1/2) · (1 − 1/3) = 1/6`, wasting 1/6 of the big bin
//! and therefore 1/12 of the total capacity. This binary measures both
//! analytically relevant numbers and contrasts them with Redundant Share.

use rshare_bench::{f, pct, print_table, section};
use rshare_core::{BinSet, LinMirror, PlacementStrategy, TrivialReplication};

fn main() {
    let bins = BinSet::from_capacities([2_000, 1_000, 1_000]).unwrap();
    let balls = 400_000u64;

    section("Figure 1: trivial strategy on bins (2, 1, 1), k = 2");
    let trivial = TrivialReplication::new(&bins, 2).unwrap();
    let mirror = LinMirror::new(&bins).unwrap();
    let big = trivial.bin_ids()[0];

    let mut rows = Vec::new();
    for (name, hits) in [
        (
            "trivial (Def. 2.3)",
            (0..balls)
                .filter(|&b| trivial.place(b).contains(&big))
                .count() as u64,
        ),
        (
            "Redundant Share",
            (0..balls)
                .filter(|&b| {
                    let (p, s) = mirror.place_pair(b);
                    p == big || s == big
                })
                .count() as u64,
        ),
    ] {
        let hit_rate = hits as f64 / balls as f64;
        let miss_rate = 1.0 - hit_rate;
        // The big bin should hold 1 copy per ball; each miss wastes one
        // unit of its capacity. Big bin = 1/2 of total capacity.
        let capacity_waste = miss_rate / 2.0;
        rows.push(vec![
            name.to_string(),
            f(hit_rate),
            f(miss_rate),
            pct(capacity_waste),
        ]);
    }
    print_table(
        &["strategy", "P[big bin hit]", "P[missed]", "capacity wasted"],
        &rows,
    );
    println!(
        "\npaper: trivial misses w.p. 1/6 ≈ {:.4}, wasting 1/12 ≈ {} of the system;",
        1.0 / 6.0,
        pct(1.0 / 12.0)
    );
    println!("       an optimal strategy hits the big bin on every ball.");
}
