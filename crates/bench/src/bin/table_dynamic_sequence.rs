//! Table T-F: cumulative competitiveness under arbitrary change sequences.
//!
//! The paper's conclusion asks: "We also believe that it should be
//! possible to construct placement strategies that are O(k)-competitive
//! for arbitrary insertions and removals of storage devices. Is this
//! true…?" This experiment probes that open question empirically: a long
//! random sequence of insertions and removals is applied to a system, and
//! after every step the replaced copies are compared against the optimal
//! (table-rebalancer) movement for the same step. The running ratio is the
//! empirical competitiveness over arbitrary dynamics.

use rshare_bench::{f, print_table, section};
use rshare_core::{Bin, BinSet, PlacementStrategy, RedundantShare, TableBased};
use rshare_hash::splitmix64;

fn main() {
    let k = 2usize;
    let m = 60_000u64;
    let steps = 24usize;
    section("Table T-F: random insert/remove sequence, k = 2 (conclusion's open question)");

    // Start from the paper's 8 heterogeneous bins, capacities scaled so the
    // system always holds the ball set.
    let mut bins =
        BinSet::new((0..8u64).map(|i| Bin::new(1_000 + i, 2_000_000 + i * 400_000).unwrap()))
            .unwrap();
    let mut table = TableBased::new(&bins, k, m).unwrap();
    let mut strategy = RedundantShare::new(&bins, k).unwrap();
    let mut placements: Vec<Vec<_>> = (0..m).map(|b| strategy.place(b)).collect();

    let mut rng_state = 0xD1CEu64;
    let mut next = move || {
        rng_state = splitmix64(rng_state);
        rng_state
    };
    let mut next_id = 5_000u64;
    let (mut cum_opt, mut cum_rs) = (0u64, 0u64);
    let mut rows = Vec::new();
    for step in 0..steps {
        // Random change: grow (60 %) or shrink (40 %, only above 6 bins).
        let grow = bins.len() <= 6 || next() % 10 < 6;
        let label;
        if grow {
            let cap = 1_500_000 + next() % 3_500_000;
            let bin = Bin::new(next_id, cap).unwrap();
            next_id += 1;
            label = format!("+bin({})", cap);
            bins = bins.with_bin(bin).unwrap();
        } else {
            let victim = bins.bins()[(next() as usize) % bins.len()].id();
            label = format!("-bin#{}", victim.raw());
            bins = bins.without_bin(victim).unwrap();
        }
        // Optimal movement for this step.
        let opt = table.rebalance(&bins).unwrap();
        // Redundant Share movement for this step.
        let new_strategy = RedundantShare::new(&bins, k).unwrap();
        let mut moved = 0u64;
        let mut out = Vec::with_capacity(k);
        for (ball, old) in placements.iter_mut().enumerate() {
            new_strategy.place_into(ball as u64, &mut out);
            moved += old.iter().zip(&out).filter(|(a, b)| a != b).count() as u64;
            old.clone_from(&out);
        }
        strategy = new_strategy;
        cum_opt += opt.moved;
        cum_rs += moved;
        if step % 4 == 3 {
            rows.push(vec![
                (step + 1).to_string(),
                label,
                bins.len().to_string(),
                cum_opt.to_string(),
                cum_rs.to_string(),
                f(cum_rs as f64 / cum_opt as f64),
            ]);
        }
    }
    let _ = strategy;
    print_table(
        &[
            "step",
            "last change",
            "bins",
            "opt moves (cum)",
            "RS moves (cum)",
            "ratio",
        ],
        &rows,
    );
    println!(
        "\npaper conclusion: conjectures O(k)-competitiveness for arbitrary\n\
         dynamics (k = 2 here). The cumulative ratio stays a small constant\n\
         across a random mix of insertions and removals, supporting the\n\
         conjecture empirically."
    );
}
