//! Table T-I: performance fairness — bulk-load makespan versus device
//! performance mix.
//!
//! Capacity-proportional placement balances *completion time* exactly when
//! device throughput scales with capacity. This experiment bulk-loads a
//! mirrored cluster under three hardware mixes and reports each device's
//! simulated busy time and the resulting makespan (slowest device):
//!
//! 1. homogeneous SSDs — placement fairness ⇒ time fairness;
//! 2. throughput ∝ capacity (bigger devices are proportionally faster,
//!    the usual generational pattern) — still balanced;
//! 3. a capacity-heavy but *slow* HDD in an SSD pool — the capacity-fair
//!    placement overloads it in time, quantifying how far a purely
//!    capacity-based weighting (the paper's model) is from a
//!    performance-aware one.

use rshare_bench::{f, print_table, section};
use rshare_vds::{DeviceProfile, Redundancy, StorageCluster};

fn run(label: &str, devices: &[(u64, u64, DeviceProfile)]) {
    let mut builder = StorageCluster::builder()
        .block_size(4_096)
        .redundancy(Redundancy::Mirror { copies: 2 });
    for (id, cap, profile) in devices {
        builder = builder.device_with_profile(*id, *cap, *profile);
    }
    let mut cluster = builder.build().expect("valid cluster");
    let blocks = 20_000u64;
    let payload = vec![0xEEu8; 4_096];
    for lba in 0..blocks {
        cluster.write_block(lba, &payload).expect("space");
    }
    section(&format!("Table T-I: bulk-load makespan — {label}"));
    let makespan = cluster.makespan_us();
    let mut rows = Vec::new();
    for (id, _, _) in devices {
        let dev = cluster.device(*id).expect("device");
        rows.push(vec![
            id.to_string(),
            dev.capacity_blocks().to_string(),
            format!("{}/{}", dev.profile().per_op_us, dev.profile().mbytes_per_s),
            dev.stats().writes.to_string(),
            (dev.stats().busy_us / 1_000).to_string(),
            f(dev.stats().busy_us as f64 / makespan as f64),
        ]);
    }
    print_table(
        &[
            "device",
            "capacity",
            "us/op / MB/s",
            "writes",
            "busy ms",
            "of makespan",
        ],
        &rows,
    );
    println!("makespan: {} ms", makespan / 1_000);
}

fn main() {
    let ssd = DeviceProfile::SSD;
    run(
        "homogeneous SSDs",
        &[
            (0, 30_000, ssd),
            (1, 30_000, ssd),
            (2, 30_000, ssd),
            (3, 30_000, ssd),
        ],
    );
    run(
        "throughput (IOPS and bandwidth) proportional to capacity",
        &[
            (0, 20_000, DeviceProfile::new(240, 200)),
            (1, 40_000, DeviceProfile::new(120, 400)),
            (2, 60_000, DeviceProfile::new(80, 600)),
            (3, 80_000, DeviceProfile::new(60, 800)),
        ],
    );
    run(
        "big slow HDD among SSDs",
        &[
            (0, 20_000, ssd),
            (1, 20_000, ssd),
            (2, 20_000, ssd),
            (3, 60_000, DeviceProfile::HDD),
        ],
    );
    println!(
        "\ncapacity-fair placement balances busy time when throughput scales\n\
         with capacity (rows 1–2); a slow high-capacity device becomes the\n\
         bottleneck (row 3) — the paper's model weights by capacity only,\n\
         and this table quantifies the cost of that assumption on mixed\n\
         hardware."
    );
}
