//! Table T-K: durability of redundancy schemes under placed failures.
//!
//! Monte-Carlo missions over the actual Redundant Share placement: devices
//! fail with exponential inter-arrival times and rebuild after a fixed
//! window; a mission loses data when some redundancy group has more shards
//! on simultaneously-failed devices than it tolerates. The failure rate is
//! deliberately pessimistic (MTBF 30k hours ≈ 3.4 years, 48-hour rebuilds)
//! so differences are visible within a feasible number of trials.

use rshare_bench::{f, print_table, section};
use rshare_core::{BinSet, RedundantShare};
use rshare_workload::reliability::{simulate, ReliabilityConfig};

fn main() {
    let bins = BinSet::from_capacities((0..12u64).map(|i| 800_000 + i * 50_000)).unwrap();
    let base = ReliabilityConfig {
        blocks: 50_000,
        tolerated: 0, // set per scheme below
        device_mtbf_hours: 30_000.0,
        rebuild_hours: 48.0,
        mission_hours: 5.0 * 8_766.0, // 5 years
    };
    let trials = 200;
    section("Table T-K: 5-year data-loss probability, 12 devices, pessimistic MTBF");
    let schemes: Vec<(&str, usize, usize)> = vec![
        // (label, k shards, tolerated losses)
        ("no redundancy (k=1)", 1, 0),
        ("2-way mirror", 2, 1),
        ("3-way mirror", 3, 2),
        ("RS(4,2)-like (k=6,t=2)", 6, 2),
        ("RS(8,3)-like (k=11,t=3)", 11, 3),
    ];
    let mut rows = Vec::new();
    for (label, k, tolerated) in schemes {
        let strat = RedundantShare::new(&bins, k).unwrap();
        let config = ReliabilityConfig { tolerated, ..base };
        let report = simulate(&strat, config, trials, 0xD15C);
        rows.push(vec![
            label.to_string(),
            k.to_string(),
            tolerated.to_string(),
            format!("{:.1}", report.mean_failures),
            format!("{}/{}", report.losses, report.trials),
            f(report.loss_probability()),
            report
                .mean_hours_to_loss
                .map_or("—".to_string(), |h| format!("{:.0}", h / 24.0)),
        ]);
    }
    print_table(
        &[
            "scheme",
            "k",
            "tolerated",
            "failures/mission",
            "lost missions",
            "P(loss)",
            "days to loss",
        ],
        &rows,
    );
    println!(
        "\nshape: every added tolerated failure cuts the loss probability by\n\
         orders of magnitude; wide codes pay more rebuild exposure (more\n\
         devices per group) but tolerate more overlap. This is the quantified\n\
         version of the paper's motivation for redundant placement."
    );
}
