//! Table T-G: request fairness on the storage stack.
//!
//! The paper's fairness definition covers both sides: "every storage
//! device with x% of the available capacity gets x% of the data *and the
//! requests*". This experiment bulk-loads a mirrored cluster on the
//! paper's heterogeneous bins and fires uniform and Zipf read workloads,
//! comparing each device's share of served shard reads to its capacity
//! share.

use rshare_bench::{f, pct, print_table, section};
use rshare_vds::{Redundancy, StorageCluster};
use rshare_workload::generator::ZipfRequests;

fn run_workload(label: &str, zipf_exponent: Option<f64>) {
    // The paper's 8 bins, scaled 1/100.
    let mut builder = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 });
    let mut total_cap = 0u64;
    for i in 0..8u64 {
        let cap = 5_000 + i * 1_000;
        total_cap += cap;
        builder = builder.device(i, cap);
    }
    let mut cluster = builder.build().expect("valid cluster");
    let blocks = 15_000u64;
    let payload = [0x5Au8; 16];
    for lba in 0..blocks {
        cluster.write_block(lba, &payload).expect("space");
    }
    // Reset-by-subtraction: remember the write-time stats.
    let base_reads: Vec<u64> = (0..8u64)
        .map(|id| cluster.device(id).unwrap().stats().reads)
        .collect();

    let requests = 120_000u64;
    match zipf_exponent {
        None => {
            for r in 0..requests {
                let lba = (r * 2_654_435_761) % blocks; // uniform-ish sweep
                cluster.read_block(lba).expect("readable");
            }
        }
        Some(s) => {
            let mut zipf = ZipfRequests::new(blocks, s, 7);
            for _ in 0..requests {
                cluster.read_block(zipf.sample()).expect("readable");
            }
        }
    }

    section(&format!("Table T-G: request fairness — {label}"));
    let mut rows = Vec::new();
    let mut served_total = 0u64;
    let mut served: Vec<u64> = Vec::new();
    for id in 0..8u64 {
        let s = cluster.device(id).unwrap().stats().reads - base_reads[id as usize];
        served_total += s;
        served.push(s);
    }
    let mut worst = 0.0f64;
    for id in 0..8u64 {
        let dev = cluster.device(id).unwrap();
        let got = served[id as usize] as f64 / served_total as f64;
        let want = dev.capacity_blocks() as f64 / total_cap as f64;
        worst = worst.max((got - want).abs() / want);
        rows.push(vec![
            id.to_string(),
            pct(want),
            pct(got),
            f((got - want).abs() / want),
        ]);
    }
    print_table(
        &["device", "capacity share", "request share", "rel deviation"],
        &rows,
    );
    println!("worst relative deviation: {}", f(worst));
}

fn main() {
    run_workload("uniform reads", None);
    run_workload("Zipf(0.9) reads", Some(0.9));
    println!(
        "\npaper (Section 1): a fair placement gives every device x% of the\n\
         requests for x% of the capacity. Uniform workloads match closely;\n\
         Zipf workloads concentrate on few blocks, so the per-device shares\n\
         wander with which devices happen to hold the hottest blocks —\n\
         the motivation for copy-rotation on reads."
    );
}
