//! Strategy head-to-head: Redundant Share versus every baseline.
//!
//! Complements the criterion micro-benchmarks (time efficiency) with the
//! quality dimensions of the paper's criteria list: fairness, redundancy
//! and adaptivity, for all strategies in the workspace — including RUSH
//! (Section 1.2's prior work) and the systematic-PPS oracle.

use rshare_bench::{f, print_table, section};
use rshare_core::{
    Bin, FastRedundantShare, PlacementStrategy, RedundantShare, SystematicPps, TrivialReplication,
};
use rshare_rush::{RushP, SubCluster};
use rshare_workload::measure_fairness;
use rshare_workload::movement::measure_movement;
use rshare_workload::scenario::heterogeneous_bins;

fn main() {
    let k = 2usize;
    let balls = 150_000u64;
    let base = heterogeneous_bins(8);
    let new_bin = Bin::new(1u64, 1_300_000).unwrap();
    let grown = base.with_bin(new_bin).unwrap();
    let affected = new_bin.id();

    section("Strategy comparison: 8 heterogeneous bins, k = 2, add biggest bin");
    let mut rows = Vec::new();

    let mut eval =
        |name: &str, before: Box<dyn PlacementStrategy>, after: Box<dyn PlacementStrategy>| {
            let fairness = measure_fairness(before.as_ref(), balls);
            let movement = measure_movement(before.as_ref(), after.as_ref(), affected, balls);
            rows.push(vec![
                name.to_string(),
                f(fairness.max_relative_deviation()),
                f(movement.replaced_fraction()),
                f(movement.factor()),
            ]);
        };

    eval(
        "Redundant Share (O(n))",
        Box::new(RedundantShare::new(&base, k).unwrap()),
        Box::new(RedundantShare::new(&grown, k).unwrap()),
    );
    eval(
        "Redundant Share (O(k))",
        Box::new(FastRedundantShare::new(&base, k).unwrap()),
        Box::new(FastRedundantShare::new(&grown, k).unwrap()),
    );
    eval(
        "trivial k-draws",
        Box::new(TrivialReplication::new(&base, k).unwrap()),
        Box::new(TrivialReplication::new(&grown, k).unwrap()),
    );
    eval(
        "systematic PPS",
        Box::new(SystematicPps::new(&base, k).unwrap()),
        Box::new(SystematicPps::new(&grown, k).unwrap()),
    );
    // RUSH models the same growth as appending a sub-cluster: the 8
    // heterogeneous bins become 8 single-disk sub-clusters, and the growth
    // adds one more.
    let rush_clusters: Vec<SubCluster> = base
        .bins()
        .iter()
        .rev() // addition order: smallest first, like the scenario ids
        .map(|b| SubCluster::new(1, b.capacity() as f64).unwrap())
        .collect();
    let rush_before = RushP::new(rush_clusters.clone(), k).unwrap();
    let rush_after = rush_before
        .grown(SubCluster::new(1, 1_300_000.0).unwrap())
        .unwrap();
    // The new disk's id in RUSH's own namespace is the 9th disk (index 8).
    let fairness = measure_fairness(&rush_before, balls);
    let movement = measure_movement(&rush_before, &rush_after, rshare_core::BinId(8), balls);
    rows.push(vec![
        "RUSH_P-style".to_string(),
        f(fairness.max_relative_deviation()),
        f(movement.replaced_fraction()),
        f(movement.factor()),
    ]);

    print_table(
        &["strategy", "max rel dev", "replaced frac", "replaced/used"],
        &rows,
    );
    println!(
        "\nexpected shape (paper): Redundant Share is fair AND low-movement;\n\
         the trivial strategy is unfair on heterogeneous bins (Lemma 2.4);\n\
         systematic PPS is fair but moves far more data; RUSH moves little\n\
         but its fairness depends on its sub-cluster constraints."
    );
}
