//! Figure 4: fairness of k-replication with k = 4 on the Figure 2
//! scenario.
//!
//! Same experiment as Figure 2, but each block is stored four times. The
//! paper: "all tests resulted in completely fair distributions".

use rshare_bench::{f, print_table, section};
use rshare_core::RedundantShare;
use rshare_workload::measure_fairness;
use rshare_workload::scenario::paper_scenario;

fn main() {
    let balls = 200_000u64;
    section("Figure 4: k = 4 replication usage per bin across scenario stages");
    println!("(values are bin usage relative to the stage mean; 1.0 = perfectly fair)\n");
    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for stage in paper_scenario() {
        let strat = RedundantShare::new(&stage.bins, 4).unwrap();
        let report = measure_fairness(&strat, balls);
        let caps: Vec<u64> = stage.bins.bins().iter().map(|b| b.capacity()).collect();
        let usage = report.usage_fractions(&caps);
        let mean: f64 = usage.iter().sum::<f64>() / usage.len() as f64;
        let rel: Vec<f64> = usage.iter().map(|u| u / mean).collect();
        let max_dev = rel.iter().map(|r| (r - 1.0).abs()).fold(0.0, f64::max);
        worst = worst.max(max_dev);
        // The figure's bars: per-bin relative usage at this stage.
        let bars: Vec<String> = stage
            .bins
            .bins()
            .iter()
            .zip(&rel)
            .map(|(b, r)| format!("{}:{:.3}", b.id().raw(), r))
            .collect();
        println!("{:>18}  {}", stage.label, bars.join("  "));
        rows.push(vec![
            stage.label.to_string(),
            stage.bins.len().to_string(),
            f(rel.iter().cloned().fold(f64::MAX, f64::min)),
            f(rel.iter().cloned().fold(f64::MIN, f64::max)),
            f(max_dev),
        ]);
    }
    print_table(
        &[
            "stage",
            "bins",
            "min rel use",
            "max rel use",
            "max deviation",
        ],
        &rows,
    );
    println!(
        "\npaper (Figure 4): 'all tests resulted in completely fair distributions'.\n\
         measured worst deviation: {}",
        f(worst)
    );
}
