//! Table T-B (Section 3.1 in-text): LinMirror competitive ratios for
//! n = 4..60 bins.
//!
//! "Therefor we added a bin to 4 up to 60 bins and measured the factor of
//! replaced blocks divided by the block used on the newest disk. … Again,
//! we get nearly constant competitive ratios of about 1.5 for adding the
//! biggest disk and 2.5 for adding the smallest disk."

use rshare_bench::{f, print_table, section};
use rshare_core::LinMirror;
use rshare_workload::movement::measure_movement;
use rshare_workload::scenario::{adaptivity_pair, homogeneous_bins, ChangeKind};

fn main() {
    let balls = 80_000u64;
    section("Table T-B: LinMirror competitive ratios, homogeneous bins, n = 4..60");
    let mut rows = Vec::new();
    let (mut sum_big, mut sum_small, mut count) = (0.0, 0.0, 0u32);
    let mut n = 4usize;
    while n <= 60 {
        let base = homogeneous_bins(n);
        let mut cells = vec![n.to_string()];
        for (kind, acc) in [
            (ChangeKind::AddBiggest, &mut sum_big),
            (ChangeKind::AddSmallest, &mut sum_small),
        ] {
            let (before, after, affected) = adaptivity_pair(&base, kind);
            let a = LinMirror::new(&before).unwrap();
            let b = LinMirror::new(&after).unwrap();
            let factor = measure_movement(&a, &b, affected, balls).factor();
            *acc += factor;
            cells.push(f(factor));
        }
        count += 1;
        rows.push(cells);
        n += 8;
    }
    print_table(&["bins", "add as biggest", "add as smallest"], &rows);
    println!(
        "\nmean factors: biggest {} / smallest {}\n\
         paper: 'nearly constant competitive ratios of about 1.5 for adding\n\
         the biggest disk and 2.5 for adding the smallest disk'.",
        f(sum_big / f64::from(count)),
        f(sum_small / f64::from(count))
    );
}
