//! Figure 3: adaptivity of LinMirror — used versus replaced blocks for
//! eight change scenarios.
//!
//! The paper removes/adds a bin at either end of the (heterogeneous or
//! homogeneous) bin list and reports the blocks placed on the affected bin
//! ("used") next to the number of replaced blocks. Changing the biggest
//! bin costs a factor of about 1.5, changing the smallest about 2.5 —
//! both within the 4-competitiveness of Lemma 3.2.

use rshare_bench::{f, print_table, section};
use rshare_core::LinMirror;
use rshare_workload::movement::measure_movement;
use rshare_workload::scenario::{
    adaptivity_pair, heterogeneous_bins, homogeneous_bins, ChangeKind,
};

fn main() {
    let balls = 200_000u64;
    section("Figure 3: adaptivity of LinMirror (k = 2), 8 base bins");
    let mut rows = Vec::new();
    for (population, base) in [
        ("heterogeneous", heterogeneous_bins(8)),
        ("homogeneous", homogeneous_bins(8)),
    ] {
        for kind in ChangeKind::ALL {
            let (before, after, affected) = adaptivity_pair(&base, kind);
            let a = LinMirror::new(&before).unwrap();
            let b = LinMirror::new(&after).unwrap();
            let report = measure_movement(&a, &b, affected, balls);
            rows.push(vec![
                population.to_string(),
                kind.label().to_string(),
                report.used_on_affected.to_string(),
                report.replaced.to_string(),
                f(report.factor()),
            ]);
        }
    }
    print_table(
        &["bins", "change", "used on bin", "replaced", "replaced/used"],
        &rows,
    );
    println!(
        "\npaper (Figure 3): ≈1.5 when the biggest bin changes, ≈2.5 when the\n\
         smallest changes; Lemma 3.2 bounds the factor by 4."
    );
}
