//! Table T-A (in-text claims of Sections 2.1/2.2): capacity efficiency.
//!
//! For a set of adversarial capacity vectors this binary reports:
//! * the naive bound `⌊B / k⌋`,
//! * the true maximum `B_max` from Lemma 2.2 (adjusted capacities),
//! * that the greedy construction of Lemma 2.1 achieves `B_max` but not
//!   `B_max + 1`, and
//! * the *effective* capacity achieved by the trivial strategy versus
//!   Redundant Share, measured as the number of balls storable before any
//!   bin overflows its expected share (capacity-efficiency in practice).

use rshare_bench::{f, print_table, section};
use rshare_core::capacity::{greedy_pack, max_balls};
use rshare_core::{BinSet, PlacementStrategy, RedundantShare, TrivialReplication};

/// Effective storable balls: with loads `L_i` after `m` balls and bin
/// capacities `b_i`, the placement fills the system until the *fullest*
/// bin (relative to capacity) overflows — so the achievable ball count
/// scales by `min_i b_i / L_i · m`.
fn effective_capacity(strategy: &dyn PlacementStrategy, caps: &[u64], balls: u64) -> f64 {
    let mut counts = vec![0u64; caps.len()];
    let mut out = Vec::new();
    for ball in 0..balls {
        strategy.place_into(ball, &mut out);
        for id in &out {
            let pos = strategy.bin_ids().iter().position(|b| b == id).unwrap();
            counts[pos] += 1;
        }
    }
    caps.iter()
        .zip(&counts)
        .filter(|(_, &c)| c > 0)
        .map(|(&cap, &c)| cap as f64 / c as f64 * balls as f64)
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let cases: Vec<(&str, Vec<u64>, usize)> = vec![
        ("paper Fig.1 (2,1,1)", vec![2_000, 1_000, 1_000], 2),
        ("dominant bin", vec![10_000, 2_000, 1_000], 2),
        ("two dominant, k=3", vec![10_000, 10_000, 1_000, 100], 3),
        ("balanced 6 bins", vec![600, 500, 400, 300, 200, 100], 2),
        (
            "near-uniform, k=4",
            vec![1_050, 1_020, 1_000, 990, 980, 950],
            4,
        ),
    ];
    section("Table T-A: capacity efficiency (Lemmas 2.1 / 2.2)");
    let mut rows = Vec::new();
    for (name, caps, k) in &cases {
        let naive = caps.iter().sum::<u64>() / *k as u64;
        let bmax = max_balls(caps, *k);
        let greedy_ok = greedy_pack(caps, *k, bmax).is_some();
        let greedy_tight = greedy_pack(caps, *k, bmax + 1).is_none();
        let bins = BinSet::from_capacities(caps.iter().copied()).unwrap();
        let rs = RedundantShare::new(&bins, *k).unwrap();
        let trivial = TrivialReplication::new(&bins, *k).unwrap();
        let rs_eff = effective_capacity(&rs, caps, 200_000) / bmax as f64;
        let tr_eff = effective_capacity(&trivial, caps, 200_000) / bmax as f64;
        rows.push(vec![
            (*name).to_string(),
            k.to_string(),
            naive.to_string(),
            bmax.to_string(),
            format!("{greedy_ok}/{greedy_tight}"),
            f(rs_eff),
            f(tr_eff),
        ]);
    }
    print_table(
        &[
            "capacities",
            "k",
            "naive B/k",
            "B_max (L2.2)",
            "greedy ok/tight",
            "RS eff.",
            "trivial eff.",
        ],
        &rows,
    );
    println!(
        "\n'eff.' = achievable balls / B_max (1.0 = capacity efficient).\n\
         paper: Redundant Share is capacity efficient on every vector; the\n\
         trivial strategy falls short whenever bins are heterogeneous\n\
         (Lemma 2.4), e.g. by 1/12 on the Figure 1 vector."
    );
}
