//! Table T-J: where each sub-block role lives.
//!
//! The paper stresses that Redundant Share identifies the i-th of k copies
//! because erasure codes give every sub-block a distinct meaning. The flip
//! side: each copy index has its *own* distribution over the devices — the
//! scan places early copies on big bins more often — so with an erasure
//! code the "data" role and the "parity" role load devices differently,
//! which matters for read traffic (reads touch data shards only).
//!
//! This binary prints the analytic per-copy distributions for an RS(4, 2)
//! layout over heterogeneous devices, cross-checked against a sampled
//! placement, plus the implied read-amplification profile.

use rshare_bench::{f, print_table, section};
use rshare_core::{BinSet, PlacementStrategy, RedundantShare};

fn main() {
    // 8 heterogeneous devices, RS(4, 2): copies 0..3 are data shards,
    // copies 4..5 are parity shards.
    let bins = BinSet::from_capacities((0..8u64).map(|i| 500_000 + i * 100_000)).unwrap();
    let k = 6;
    let data_shards = 4;
    let strat = RedundantShare::new(&bins, k).unwrap();

    section("Table T-J: per-copy (sub-block role) distribution, RS(4,2) on 8 bins");
    let dists: Vec<Vec<f64>> = (0..k).map(|t| strat.copy_distribution(t)).collect();
    let mut rows = Vec::new();
    for (i, bin) in bins.bins().iter().enumerate() {
        let mut cells = vec![bin.id().raw().to_string(), bin.capacity().to_string()];
        for dist in &dists {
            cells.push(f(dist[i]));
        }
        let data_load: f64 = dists[..data_shards].iter().map(|d| d[i]).sum();
        let parity_load: f64 = dists[data_shards..].iter().map(|d| d[i]).sum();
        cells.push(f(data_load));
        cells.push(f(parity_load));
        rows.push(cells);
    }
    print_table(
        &[
            "bin",
            "capacity",
            "copy0",
            "copy1",
            "copy2",
            "copy3",
            "par0",
            "par1",
            "data Σ",
            "parity Σ",
        ],
        &rows,
    );

    // Cross-check the analytics against sampling.
    let balls = 200_000u64;
    let mut sampled = vec![vec![0u64; bins.len()]; k];
    let mut out = Vec::new();
    for ball in 0..balls {
        strat.place_into(ball, &mut out);
        for (t, id) in out.iter().enumerate() {
            let pos = strat.bin_ids().iter().position(|b| b == id).unwrap();
            sampled[t][pos] += 1;
        }
    }
    let mut worst = 0.0f64;
    for (t, dist) in dists.iter().enumerate() {
        for (i, want) in dist.iter().enumerate() {
            let got = sampled[t][i] as f64 / balls as f64;
            worst = worst.max((got - want).abs());
        }
    }
    println!(
        "\nanalytic vs sampled (200k balls): worst absolute gap {}",
        f(worst)
    );
    println!(
        "\nreading a block touches its 4 data shards only: the 'data Σ' column\n\
         is each device's share of read traffic. The scan loads early copies\n\
         onto big devices, so data shards skew big — by design, since big\n\
         devices must absorb proportionally more of every role to stay fair\n\
         overall (the total per-bin share is exactly k·c_i)."
    );
}
