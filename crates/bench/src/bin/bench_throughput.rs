//! Placement-engine throughput report: scalar vs batch vs parallel.
//!
//! Measures end-to-end placement throughput (placements per second) of the
//! three query paths over [`RedundantShare`] — per-ball `place_into`, flat
//! `place_batch_into`, and the multi-threaded [`PlacementEngine`] — for
//! k ∈ {2, 3, 4} and n ∈ {16, 256, 4096}, prints a table, and writes the
//! raw numbers to `BENCH_throughput.json` for machine consumption (CI
//! smoke-checks that the file parses).
//!
//! Pass `--quick` to shrink the workload ~8× (CI smoke mode); the numbers
//! get noisier but the report shape is identical.

use std::hint::black_box;
use std::time::Instant;

use rshare_bench::{f, print_table, records_json, section, Record};
use rshare_core::{BinId, BinSet, PlacementEngine, PlacementStrategy, RedundantShare};

/// Timing repetitions per cell; the best (minimum) time is reported.
const REPS: usize = 3;

struct Cell {
    n: usize,
    k: usize,
    mode: &'static str,
    balls: usize,
    elapsed_ns: u128,
}

impl Cell {
    fn placements_per_s(&self) -> f64 {
        self.balls as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

fn heterogeneous(n: usize) -> BinSet {
    BinSet::from_capacities((0..n as u64).map(|i| 500_000 + i * 100_000)).expect("valid bins")
}

/// Workload size per configuration: the O(n) scan means fewer balls at
/// large n keep the total runtime bounded while each cell still runs for
/// tens of milliseconds.
fn balls_for(n: usize, quick: bool) -> usize {
    let full = match n {
        0..=31 => 400_000,
        32..=1023 => 100_000,
        _ => 24_576,
    };
    if quick {
        (full / 8).max(4_096)
    } else {
        full
    }
}

/// Best-of-[`REPS`] wall-clock time of `run`, which must consume the whole
/// ball set once per call.
fn time_best<F: FnMut()>(mut run: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

fn measure(n: usize, k: usize, quick: bool, threads: usize) -> Vec<Cell> {
    let strat = RedundantShare::new(&heterogeneous(n), k).expect("valid strategy");
    let engine = PlacementEngine::with_threads(strat.clone(), threads);
    let count = balls_for(n, quick);
    let balls: Vec<u64> = (0..count as u64).map(|b| b.wrapping_mul(0x9E37)).collect();
    let mut out: Vec<BinId> = Vec::with_capacity(count * k);
    let mut cells = Vec::new();

    let scalar = time_best(|| {
        let mut group = Vec::with_capacity(k);
        for &ball in &balls {
            strat.place_into(black_box(ball), &mut group);
            black_box(&group);
        }
    });
    cells.push(Cell {
        n,
        k,
        mode: "scalar",
        balls: count,
        elapsed_ns: scalar,
    });

    let batch = time_best(|| {
        strat.place_batch_into(black_box(&balls), &mut out);
        black_box(&out);
    });
    cells.push(Cell {
        n,
        k,
        mode: "batch",
        balls: count,
        elapsed_ns: batch,
    });

    let parallel = time_best(|| {
        engine.place_batch_into(black_box(&balls), &mut out);
        black_box(&out);
    });
    cells.push(Cell {
        n,
        k,
        mode: "parallel",
        balls: count,
        elapsed_ns: parallel,
    });
    cells
}

/// Hand-rolled JSON (no serde in the dependency set): the report is flat
/// enough that string assembly stays readable.
fn to_json(cells: &[Cell], threads: usize, quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"threads\": {threads}, \"quick\": {quick}, \"reps\": {REPS}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"n\": {}, \"k\": {}, \"mode\": \"{}\", \"balls\": {}, \"elapsed_ns\": {}, \"placements_per_s\": {:.1}}}{}\n",
            c.n,
            c.k,
            c.mode,
            c.balls,
            c.elapsed_ns,
            c.placements_per_s(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&records_json(&records(cells)));
    s.push_str("\n}\n");
    s
}

/// The unified cross-binary records: one throughput entry per cell, the
/// scalar path of the same `(n, k)` as the baseline.
fn records(cells: &[Cell]) -> Vec<Record> {
    cells
        .iter()
        .map(|c| {
            let name = format!("placements_{}_n{}_k{}", c.mode, c.n, c.k);
            let scalar = cells
                .iter()
                .find(|s| s.n == c.n && s.k == c.k && s.mode == "scalar")
                .expect("scalar cell present");
            if c.mode == "scalar" {
                Record::new(name, "placements_per_s", c.placements_per_s())
            } else {
                Record::with_baseline(
                    name,
                    "placements_per_s",
                    c.placements_per_s(),
                    scalar.placements_per_s(),
                )
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    section(&format!(
        "Placement throughput — scalar vs batch vs parallel ({threads} thread(s){})",
        if quick { ", quick mode" } else { "" }
    ));

    let mut cells = Vec::new();
    for k in [2usize, 3, 4] {
        for n in [16usize, 256, 4096] {
            cells.extend(measure(n, k, quick, threads));
        }
    }

    let mut rows = Vec::new();
    for chunk in cells.chunks(3) {
        let (scalar, batch, parallel) = (&chunk[0], &chunk[1], &chunk[2]);
        rows.push(vec![
            scalar.n.to_string(),
            scalar.k.to_string(),
            format!("{:.2}", scalar.placements_per_s() / 1e6),
            format!("{:.2}", batch.placements_per_s() / 1e6),
            format!("{:.2}", parallel.placements_per_s() / 1e6),
            f(batch.placements_per_s() / scalar.placements_per_s()),
            f(parallel.placements_per_s() / scalar.placements_per_s()),
        ]);
    }
    print_table(
        &[
            "n",
            "k",
            "scalar M/s",
            "batch M/s",
            "parallel M/s",
            "batch x",
            "parallel x",
        ],
        &rows,
    );

    let json = to_json(&cells, threads, quick);
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!(
        "\nwrote BENCH_throughput.json ({} result rows)",
        cells.len()
    );
}
