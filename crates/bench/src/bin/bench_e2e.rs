//! End-to-end I/O path report: placement cache and erasure kernels.
//!
//! Three measurements on the fast path a block read/write traverses:
//!
//! 1. **Placement lookups** — `placement_into` throughput on a repeated
//!    working set, cached (epoch-versioned placement cache) vs uncached
//!    (every lookup re-runs the Redundant Share scan).
//! 2. **Block reads** — `read_blocks` throughput over the same working
//!    set, cached vs uncached cluster.
//! 3. **Reed–Solomon encode** — MB/s of the table-driven GF(256) kernels
//!    vs the byte-wise log/exp reference kernel on 64 KiB shards.
//!
//! Prints tables and writes the raw numbers to `BENCH_e2e.json` (CI
//! smoke-checks that the file parses). Pass `--quick` to shrink the
//! workload for CI; the report shape is identical.

use std::hint::black_box;
use std::time::Instant;

use rshare_bench::{f, print_table, records_json, section, Record};
use rshare_erasure::{gf256, ErasureCode, MatrixCode, ReedSolomon};
use rshare_vds::{Redundancy, StorageCluster};

/// Timing repetitions per cell; the best (minimum) time is reported.
const REPS: usize = 5;

/// Devices in the benchmark cluster — below the fast-placement threshold,
/// so an uncached lookup pays the full O(n) Algorithm-4 scan, as a small
/// real deployment would.
const DEVICES: u64 = 48;

struct Cell {
    bench: &'static str,
    mode: &'static str,
    items: u64,
    unit: &'static str,
    elapsed_ns: u128,
}

impl Cell {
    fn per_s(&self) -> f64 {
        self.items as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Best-of-[`REPS`] wall-clock time of `run`.
fn time_best<F: FnMut()>(mut run: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

fn cluster(block_size: usize, cache: bool) -> StorageCluster {
    let mut b = StorageCluster::builder()
        .block_size(block_size)
        .redundancy(Redundancy::Mirror { copies: 3 })
        .placement_cache(cache);
    for id in 0..DEVICES {
        b = b.device(id, 1_000_000 + id * 10_000);
    }
    b.build().expect("valid cluster")
}

/// Placement-lookup throughput over `working_set` blocks, `rounds` passes.
fn bench_placement(quick: bool, cells: &mut Vec<Cell>) {
    let working_set: u64 = if quick { 1_024 } else { 8_192 };
    let rounds: u64 = if quick { 8 } else { 24 };
    let lookups = working_set * rounds;
    let mut out = Vec::new();
    for (mode, cached) in [("uncached", false), ("cached", true)] {
        let mut c = cluster(64, cached);
        for lba in 0..working_set {
            c.write_block(lba, &[0u8; 64]).expect("write");
        }
        // Warm: the first pass fills the cache (or does nothing, uncached).
        for lba in 0..working_set {
            c.placement_into(lba, &mut out);
        }
        let elapsed = time_best(|| {
            for _ in 0..rounds {
                for lba in 0..working_set {
                    c.placement_into(black_box(lba), &mut out);
                    black_box(&out);
                }
            }
        });
        cells.push(Cell {
            bench: "placement_lookup",
            mode,
            items: lookups,
            unit: "lookups",
            elapsed_ns: elapsed,
        });
    }
}

/// End-to-end `read_blocks` throughput over a repeated working set.
fn bench_reads(quick: bool, cells: &mut Vec<Cell>) {
    let working_set: u64 = if quick { 512 } else { 4_096 };
    let rounds: u64 = if quick { 4 } else { 8 };
    let block_size = 4_096;
    let lbas: Vec<u64> = (0..working_set).collect();
    for (mode, cached) in [("uncached", false), ("cached", true)] {
        let mut c = cluster(block_size, cached);
        let data = vec![0xABu8; block_size];
        for &lba in &lbas {
            c.write_block(lba, &data).expect("write");
        }
        let elapsed = time_best(|| {
            for _ in 0..rounds {
                black_box(c.read_blocks(black_box(&lbas)).expect("read"));
            }
        });
        cells.push(Cell {
            bench: "block_read",
            mode,
            items: working_set * rounds,
            unit: "blocks",
            elapsed_ns: elapsed,
        });
    }
}

/// RS(8, 4) parity generation over 64 KiB shards: table-driven kernels vs
/// the byte-wise log/exp reference.
fn bench_rs_encode(quick: bool, cells: &mut Vec<Cell>) {
    const DATA: usize = 8;
    const PARITY: usize = 4;
    const SHARD: usize = 64 * 1024;
    let encodes: usize = if quick { 8 } else { 48 };
    let code = ReedSolomon::new(DATA, PARITY).expect("valid code");
    let matrix = MatrixCode::reed_solomon(DATA, PARITY).expect("valid code");
    let data: Vec<Vec<u8>> = (0..DATA)
        .map(|i| (0..SHARD).map(|j| (i * 83 + j * 7) as u8).collect())
        .collect();
    let mut shards: Vec<Vec<u8>> = data.clone();
    shards.extend(std::iter::repeat_with(|| vec![0u8; SHARD]).take(PARITY));
    let data_bytes = (DATA * SHARD * encodes) as u64;

    // Sanity: both kernels produce identical codewords before timing.
    code.encode(&mut shards).expect("encode");
    for (row_idx, got) in shards.iter().enumerate().skip(DATA) {
        let row = matrix.generator().row(row_idx);
        let mut want = vec![0u8; SHARD];
        for (j, shard) in data.iter().enumerate() {
            gf256::mul_acc_bytewise(&mut want, shard, row[j]);
        }
        assert_eq!(*got, want, "kernel mismatch on parity {row_idx}");
    }

    let table = time_best(|| {
        for _ in 0..encodes {
            code.encode(black_box(&mut shards)).expect("encode");
        }
        black_box(&shards);
    });
    cells.push(Cell {
        bench: "rs_encode",
        mode: "table",
        items: data_bytes,
        unit: "bytes",
        elapsed_ns: table,
    });

    let mut parity = vec![vec![0u8; SHARD]; PARITY];
    let bytewise = time_best(|| {
        for _ in 0..encodes {
            for (p, out) in parity.iter_mut().enumerate() {
                out.fill(0);
                let row = matrix.generator().row(DATA + p);
                for (j, shard) in data.iter().enumerate() {
                    gf256::mul_acc_bytewise(black_box(out), black_box(shard), row[j]);
                }
            }
        }
        black_box(&parity);
    });
    cells.push(Cell {
        bench: "rs_encode",
        mode: "bytewise",
        items: data_bytes,
        unit: "bytes",
        elapsed_ns: bytewise,
    });
}

fn speedup(cells: &[Cell], bench: &str, fast: &str, slow: &str) -> f64 {
    let rate = |mode: &str| {
        cells
            .iter()
            .find(|c| c.bench == bench && c.mode == mode)
            .expect("cell present")
            .per_s()
    };
    rate(fast) / rate(slow)
}

/// Hand-rolled JSON (no serde in the dependency set).
fn to_json(cells: &[Cell], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"reps\": {REPS}, \"devices\": {DEVICES}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"mode\": \"{}\", \"items\": {}, \"unit\": \"{}\", \"elapsed_ns\": {}, \"per_s\": {:.1}}}{}\n",
            c.bench,
            c.mode,
            c.items,
            c.unit,
            c.elapsed_ns,
            c.per_s(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&records_json(&records(cells)));
    s.push_str(",\n");
    s.push_str(&format!(
        "  \"summary\": {{\"cached_lookup_speedup\": {:.2}, \"cached_read_speedup\": {:.2}, \"table_encode_speedup\": {:.2}}}\n",
        speedup(cells, "placement_lookup", "cached", "uncached"),
        speedup(cells, "block_read", "cached", "uncached"),
        speedup(cells, "rs_encode", "table", "bytewise"),
    ));
    s.push('}');
    s.push('\n');
    s
}

/// The unified cross-binary records: one throughput entry per cell, the
/// slow variant of the same benchmark as the baseline.
fn records(cells: &[Cell]) -> Vec<Record> {
    cells
        .iter()
        .map(|c| {
            let name = format!("{}_{}", c.bench, c.mode);
            let unit: &'static str = match c.unit {
                "lookups" => "lookups_per_s",
                "blocks" => "blocks_per_s",
                _ => "bytes_per_s",
            };
            let slow = match c.mode {
                "cached" => Some("uncached"),
                "table" => Some("bytewise"),
                _ => None,
            };
            match slow {
                Some(slow_mode) => {
                    let base = cells
                        .iter()
                        .find(|s| s.bench == c.bench && s.mode == slow_mode)
                        .expect("baseline cell present");
                    Record::with_baseline(name, unit, c.per_s(), base.per_s())
                }
                None => Record::new(name, unit, c.per_s()),
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    section(&format!(
        "End-to-end I/O path — placement cache + erasure kernels{}",
        if quick { " (quick mode)" } else { "" }
    ));

    let mut cells = Vec::new();
    bench_placement(quick, &mut cells);
    bench_reads(quick, &mut cells);
    bench_rs_encode(quick, &mut cells);

    let mut rows = Vec::new();
    for c in &cells {
        let rate = match c.bench {
            "rs_encode" => format!("{:.1} MB/s", c.per_s() / 1e6),
            _ => format!("{:.3} M{}/s", c.per_s() / 1e6, &c.unit[..c.unit.len() - 1]),
        };
        rows.push(vec![
            c.bench.to_string(),
            c.mode.to_string(),
            c.items.to_string(),
            rate,
        ]);
    }
    print_table(&["bench", "mode", "items", "rate"], &rows);

    println!(
        "\nspeedups: cached lookups {}x, cached reads {}x, table encode {}x",
        f(speedup(&cells, "placement_lookup", "cached", "uncached")),
        f(speedup(&cells, "block_read", "cached", "uncached")),
        f(speedup(&cells, "rs_encode", "table", "bytewise")),
    );

    let json = to_json(&cells, quick);
    std::fs::write("BENCH_e2e.json", &json).expect("write BENCH_e2e.json");
    println!("wrote BENCH_e2e.json ({} result rows)", cells.len());
}
