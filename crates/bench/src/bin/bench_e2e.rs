//! End-to-end I/O path report: placement cache, erasure kernels and the
//! fused stripe pipeline.
//!
//! Five measurements on the fast path a block read/write traverses:
//!
//! 1. **Placement lookups** — `placement_into` throughput on a repeated
//!    working set, cached (epoch-versioned placement cache) vs uncached
//!    (every lookup re-runs the Redundant Share scan).
//! 2. **Block reads** — `read_blocks` throughput over the same working
//!    set, cached vs uncached cluster.
//! 3. **Reed–Solomon encode** — MB/s of each GF(256) kernel tier (SIMD,
//!    SWAR, flat-table) vs the byte-wise log/exp reference on 64 KiB
//!    shards, forced per tier through `set_kernel_tier`.
//! 4. **Stripe writes** — the fused `write_blocks` batch pipeline vs a
//!    `write_block` loop over the same overwrite working set.
//! 5. **Repair** — fused `repair()` (scan → gather → reconstruct → store
//!    only the missing shards) vs the oracle-free per-block recipe: read
//!    every block (degraded reads reconstruct) and write it back. Both
//!    sides discover the damage themselves; rates are per damaged block.
//!
//! Prints tables and writes the raw numbers to `BENCH_e2e.json` (CI
//! smoke-checks that the file parses). Pass `--quick` to shrink the
//! workload for CI; the report shape is identical.

use std::hint::black_box;
use std::time::Instant;

use rshare_bench::{f, print_table, records_json, section, Record};
use rshare_erasure::gf256::KernelTier;
use rshare_erasure::{gf256, ErasureCode, MatrixCode, ReedSolomon};
use rshare_vds::{Redundancy, StorageCluster};

/// Timing repetitions per cell; the best (minimum) time is reported.
const REPS: usize = 5;

/// Devices in the benchmark cluster — below the fast-placement threshold,
/// so an uncached lookup pays the full O(n) Algorithm-4 scan, as a small
/// real deployment would.
const DEVICES: u64 = 48;

struct Cell {
    bench: &'static str,
    mode: &'static str,
    items: u64,
    unit: &'static str,
    elapsed_ns: u128,
}

impl Cell {
    fn per_s(&self) -> f64 {
        self.items as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Best-of-[`REPS`] wall-clock time of `run`.
fn time_best<F: FnMut()>(mut run: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

/// Best-of-[`REPS`] for two bodies measured as an interleaved pair: each
/// rep times `a` then `b` back to back, so a machine-load phase slower
/// than one rep hits both sides equally instead of skewing whichever
/// side's measurement window it landed in. Each timed run is preceded by
/// an untimed run of the same body — the comparison is steady-state, and
/// the alternation would otherwise let each side evict the other's
/// working set between reps.
fn time_best_pair<A: FnMut(), B: FnMut()>(mut a: A, mut b: B) -> (u128, u128) {
    let (mut best_a, mut best_b) = (u128::MAX, u128::MAX);
    for _ in 0..REPS {
        a();
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_nanos());
        b();
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_nanos());
    }
    (best_a, best_b)
}

fn cluster(block_size: usize, cache: bool) -> StorageCluster {
    let mut b = StorageCluster::builder()
        .block_size(block_size)
        .redundancy(Redundancy::Mirror { copies: 3 })
        .placement_cache(cache);
    for id in 0..DEVICES {
        b = b.device(id, 1_000_000 + id * 10_000);
    }
    b.build().expect("valid cluster")
}

/// Placement-lookup throughput over `working_set` blocks, `rounds` passes.
fn bench_placement(quick: bool, cells: &mut Vec<Cell>) {
    let working_set: u64 = if quick { 1_024 } else { 8_192 };
    let rounds: u64 = if quick { 8 } else { 24 };
    let lookups = working_set * rounds;
    let mut out = Vec::new();
    for (mode, cached) in [("uncached", false), ("cached", true)] {
        let mut c = cluster(64, cached);
        for lba in 0..working_set {
            c.write_block(lba, &[0u8; 64]).expect("write");
        }
        // Warm: the first pass fills the cache (or does nothing, uncached).
        for lba in 0..working_set {
            c.placement_into(lba, &mut out);
        }
        let elapsed = time_best(|| {
            for _ in 0..rounds {
                for lba in 0..working_set {
                    c.placement_into(black_box(lba), &mut out);
                    black_box(&out);
                }
            }
        });
        cells.push(Cell {
            bench: "placement_lookup",
            mode,
            items: lookups,
            unit: "lookups",
            elapsed_ns: elapsed,
        });
    }
}

/// End-to-end `read_blocks` throughput over a repeated working set.
fn bench_reads(quick: bool, cells: &mut Vec<Cell>) {
    let working_set: u64 = if quick { 512 } else { 4_096 };
    let rounds: u64 = if quick { 4 } else { 8 };
    let block_size = 4_096;
    let lbas: Vec<u64> = (0..working_set).collect();
    for (mode, cached) in [("uncached", false), ("cached", true)] {
        let mut c = cluster(block_size, cached);
        let data = vec![0xABu8; block_size];
        for &lba in &lbas {
            c.write_block(lba, &data).expect("write");
        }
        let elapsed = time_best(|| {
            for _ in 0..rounds {
                black_box(c.read_blocks(black_box(&lbas)).expect("read"));
            }
        });
        cells.push(Cell {
            bench: "block_read",
            mode,
            items: working_set * rounds,
            unit: "blocks",
            elapsed_ns: elapsed,
        });
    }
}

/// A Reed–Solomon cluster for the write/repair pipeline benches; erasure
/// coding (rather than mirroring) so every write exercises the GF(256)
/// encode path.
fn rs_cluster(block_size: usize) -> StorageCluster {
    let mut b = StorageCluster::builder()
        .block_size(block_size)
        .redundancy(Redundancy::ReedSolomon { data: 4, parity: 2 })
        .placement_cache(true);
    for id in 0..DEVICES {
        b = b.device(id, 1_000_000 + id * 10_000);
    }
    b.build().expect("valid cluster")
}

/// RS(8, 4) parity generation over 64 KiB shards: every kernel tier
/// (forced via `set_kernel_tier`; on hardware without SSSE3 the `simd`
/// row measures the documented SWAR fallback) vs the byte-wise log/exp
/// reference.
fn bench_rs_encode(quick: bool, cells: &mut Vec<Cell>) {
    const DATA: usize = 8;
    const PARITY: usize = 4;
    const SHARD: usize = 64 * 1024;
    let encodes: usize = if quick { 8 } else { 48 };
    let code = ReedSolomon::new(DATA, PARITY).expect("valid code");
    let matrix = MatrixCode::reed_solomon(DATA, PARITY).expect("valid code");
    let data: Vec<Vec<u8>> = (0..DATA)
        .map(|i| (0..SHARD).map(|j| (i * 83 + j * 7) as u8).collect())
        .collect();
    let mut shards: Vec<Vec<u8>> = data.clone();
    shards.extend(std::iter::repeat_with(|| vec![0u8; SHARD]).take(PARITY));
    let data_bytes = (DATA * SHARD * encodes) as u64;

    // Sanity: both kernels produce identical codewords before timing.
    code.encode(&mut shards).expect("encode");
    for (row_idx, got) in shards.iter().enumerate().skip(DATA) {
        let row = matrix.generator().row(row_idx);
        let mut want = vec![0u8; SHARD];
        for (j, shard) in data.iter().enumerate() {
            gf256::mul_acc_bytewise(&mut want, shard, row[j]);
        }
        assert_eq!(*got, want, "kernel mismatch on parity {row_idx}");
    }

    let prior = gf256::kernel_tier();
    for (mode, tier) in [
        ("simd", KernelTier::Simd),
        ("swar", KernelTier::Swar),
        ("table", KernelTier::Table),
    ] {
        gf256::set_kernel_tier(tier);
        let elapsed = time_best(|| {
            for _ in 0..encodes {
                code.encode(black_box(&mut shards)).expect("encode");
            }
            black_box(&shards);
        });
        cells.push(Cell {
            bench: "rs_encode",
            mode,
            items: data_bytes,
            unit: "bytes",
            elapsed_ns: elapsed,
        });
    }
    gf256::set_kernel_tier(prior);

    let mut parity = vec![vec![0u8; SHARD]; PARITY];
    let bytewise = time_best(|| {
        for _ in 0..encodes {
            for (p, out) in parity.iter_mut().enumerate() {
                out.fill(0);
                let row = matrix.generator().row(DATA + p);
                for (j, shard) in data.iter().enumerate() {
                    gf256::mul_acc_bytewise(black_box(out), black_box(shard), row[j]);
                }
            }
        }
        black_box(&parity);
    });
    cells.push(Cell {
        bench: "rs_encode",
        mode: "bytewise",
        items: data_bytes,
        unit: "bytes",
        elapsed_ns: bytewise,
    });
}

/// Steady-state stripe writes over an RS(4, 2) cluster: the fused
/// `write_blocks` pipeline (hoisted encode scratch, device-side buffer
/// reuse) vs calling `write_block` once per block. The working set is
/// pre-written so every timed round is an overwrite — the allocation
/// pattern the fused path eliminates. Blocks are the canonical 4 KiB
/// (matching the repair bench), so the per-block copy/alloc savings are
/// measured at a realistic shard size rather than being drowned by
/// fixed per-block bookkeeping.
fn bench_stripe_writes(quick: bool, cells: &mut Vec<Cell>) {
    let working_set: u64 = if quick { 512 } else { 4_096 };
    let rounds: u64 = if quick { 2 } else { 4 };
    let block_size = 4_096;
    let lbas: Vec<u64> = (0..working_set).collect();
    let mut data = Vec::with_capacity(lbas.len() * block_size);
    for &lba in &lbas {
        data.extend((0..block_size).map(|i| (lba as usize * 37 + i * 11) as u8));
    }
    let mut c_loop = rs_cluster(block_size);
    c_loop.write_blocks(&lbas, &data).expect("pre-write");
    let mut c_fused = rs_cluster(block_size);
    c_fused.write_blocks(&lbas, &data).expect("pre-write");
    let (loop_ns, fused_ns) = time_best_pair(
        || {
            for _ in 0..rounds {
                for (&lba, chunk) in lbas.iter().zip(data.chunks_exact(block_size)) {
                    c_loop
                        .write_block(black_box(lba), black_box(chunk))
                        .expect("write");
                }
            }
        },
        || {
            for _ in 0..rounds {
                c_fused
                    .write_blocks(black_box(&lbas), black_box(&data))
                    .expect("write");
            }
        },
    );
    for (mode, elapsed) in [("loop", loop_ns), ("fused", fused_ns)] {
        cells.push(Cell {
            bench: "stripe_write",
            mode,
            items: working_set * rounds,
            unit: "blocks",
            elapsed_ns: elapsed,
        });
    }
}

/// Degraded-stripe repair on an RS(4, 2) cluster: one data shard is lost
/// from every fourth block, then full redundancy is restored either by
/// the fused `repair()` pipeline (placement-cached damage scan → gather →
/// reconstruct → store only the missing shard) or by the per-block
/// recipe available without a batch API: no damage oracle exists outside
/// the cluster, so the loop reads *every* block (degraded reads
/// reconstruct transparently) and writes it back. Rates are per damaged
/// block — both modes restore the same set. Loss injection runs inside
/// the timed region for both modes and is a hash-map remove — negligible
/// next to reconstruction.
fn bench_repair(quick: bool, cells: &mut Vec<Cell>) {
    let working_set: u64 = if quick { 512 } else { 2_048 };
    let damage_stride: u64 = 4;
    let block_size = 4_096;
    let lbas: Vec<u64> = (0..working_set).collect();
    let mut data = Vec::with_capacity(lbas.len() * block_size);
    for &lba in &lbas {
        data.extend((0..block_size).map(|i| (lba as usize * 59 + i * 3) as u8));
    }
    let damaged = working_set.div_ceil(damage_stride);
    let mut c_loop = rs_cluster(block_size);
    c_loop.write_blocks(&lbas, &data).expect("pre-write");
    let mut c_fused = rs_cluster(block_size);
    c_fused.write_blocks(&lbas, &data).expect("pre-write");
    let (loop_ns, fused_ns) = time_best_pair(
        || {
            for lba in (0..working_set).step_by(damage_stride as usize) {
                assert!(c_loop.inject_shard_loss(black_box(lba), 0), "loss injected");
            }
            for lba in 0..working_set {
                let block = c_loop.read_block(black_box(lba)).expect("degraded read");
                c_loop.write_block(lba, &block).expect("rewrite");
            }
        },
        || {
            for lba in (0..working_set).step_by(damage_stride as usize) {
                assert!(
                    c_fused.inject_shard_loss(black_box(lba), 0),
                    "loss injected"
                );
            }
            black_box(c_fused.repair().expect("repair"));
        },
    );
    for (mode, elapsed) in [("loop", loop_ns), ("fused", fused_ns)] {
        cells.push(Cell {
            bench: "repair",
            mode,
            items: damaged,
            unit: "blocks",
            elapsed_ns: elapsed,
        });
    }
}

fn speedup(cells: &[Cell], bench: &str, fast: &str, slow: &str) -> f64 {
    let rate = |mode: &str| {
        cells
            .iter()
            .find(|c| c.bench == bench && c.mode == mode)
            .expect("cell present")
            .per_s()
    };
    rate(fast) / rate(slow)
}

/// Hand-rolled JSON (no serde in the dependency set).
fn to_json(cells: &[Cell], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"reps\": {REPS}, \"devices\": {DEVICES}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"mode\": \"{}\", \"items\": {}, \"unit\": \"{}\", \"elapsed_ns\": {}, \"per_s\": {:.1}}}{}\n",
            c.bench,
            c.mode,
            c.items,
            c.unit,
            c.elapsed_ns,
            c.per_s(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&records_json(&records(cells)));
    s.push_str(",\n");
    s.push_str(&format!(
        "  \"summary\": {{\"cached_lookup_speedup\": {:.2}, \"cached_read_speedup\": {:.2}, \"table_encode_speedup\": {:.2}, \"simd_encode_speedup\": {:.2}, \"fused_write_speedup\": {:.2}, \"fused_repair_speedup\": {:.2}}}\n",
        speedup(cells, "placement_lookup", "cached", "uncached"),
        speedup(cells, "block_read", "cached", "uncached"),
        speedup(cells, "rs_encode", "table", "bytewise"),
        speedup(cells, "rs_encode", "simd", "table"),
        speedup(cells, "stripe_write", "fused", "loop"),
        speedup(cells, "repair", "fused", "loop"),
    ));
    s.push('}');
    s.push('\n');
    s
}

/// The unified cross-binary records: one throughput entry per cell, the
/// slow variant of the same benchmark as the baseline. The fused-pipeline
/// cells are renamed to the loop they replace (`write_blocks_fused` vs
/// `write_block_loop`, `repair_fused` vs `repair_block_loop`); the kernel
/// tiers baseline against the flat-table tier they supersede.
fn records(cells: &[Cell]) -> Vec<Record> {
    cells
        .iter()
        .map(|c| {
            let (name, slow) = match (c.bench, c.mode) {
                ("stripe_write", "fused") => ("write_blocks_fused".to_string(), Some("loop")),
                ("stripe_write", "loop") => ("write_block_loop".to_string(), None),
                ("repair", "fused") => ("repair_fused".to_string(), Some("loop")),
                ("repair", "loop") => ("repair_block_loop".to_string(), None),
                (_, "cached") => (format!("{}_{}", c.bench, c.mode), Some("uncached")),
                (_, "simd" | "swar") => (format!("{}_{}", c.bench, c.mode), Some("table")),
                (_, "table") => (format!("{}_{}", c.bench, c.mode), Some("bytewise")),
                _ => (format!("{}_{}", c.bench, c.mode), None),
            };
            let unit: &'static str = match c.unit {
                "lookups" => "lookups_per_s",
                "blocks" => "blocks_per_s",
                _ => "bytes_per_s",
            };
            match slow {
                Some(slow_mode) => {
                    let base = cells
                        .iter()
                        .find(|s| s.bench == c.bench && s.mode == slow_mode)
                        .expect("baseline cell present");
                    Record::with_baseline(name, unit, c.per_s(), base.per_s())
                }
                None => Record::new(name, unit, c.per_s()),
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    section(&format!(
        "End-to-end I/O path — placement cache + erasure kernels{}",
        if quick { " (quick mode)" } else { "" }
    ));

    let mut cells = Vec::new();
    bench_placement(quick, &mut cells);
    bench_reads(quick, &mut cells);
    bench_rs_encode(quick, &mut cells);
    bench_stripe_writes(quick, &mut cells);
    bench_repair(quick, &mut cells);

    let mut rows = Vec::new();
    for c in &cells {
        let rate = match c.bench {
            "rs_encode" => format!("{:.1} MB/s", c.per_s() / 1e6),
            _ => format!("{:.3} M{}/s", c.per_s() / 1e6, &c.unit[..c.unit.len() - 1]),
        };
        rows.push(vec![
            c.bench.to_string(),
            c.mode.to_string(),
            c.items.to_string(),
            rate,
        ]);
    }
    print_table(&["bench", "mode", "items", "rate"], &rows);

    println!(
        "\nspeedups: cached lookups {}x, cached reads {}x, table encode {}x, \
         simd over table {}x, fused writes {}x, fused repair {}x",
        f(speedup(&cells, "placement_lookup", "cached", "uncached")),
        f(speedup(&cells, "block_read", "cached", "uncached")),
        f(speedup(&cells, "rs_encode", "table", "bytewise")),
        f(speedup(&cells, "rs_encode", "simd", "table")),
        f(speedup(&cells, "stripe_write", "fused", "loop")),
        f(speedup(&cells, "repair", "fused", "loop")),
    );

    let json = to_json(&cells, quick);
    std::fs::write("BENCH_e2e.json", &json).expect("write BENCH_e2e.json");
    println!("wrote BENCH_e2e.json ({} result rows)", cells.len());
}
