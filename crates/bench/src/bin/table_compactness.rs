//! Table T-E: compactness and *true* competitive ratios.
//!
//! Section 1 motivates hash-based placement with "table-based methods are
//! not scalable", and Section 1.1 defines competitiveness against "the
//! number of copies an optimal strategy would need". This experiment makes
//! both concrete:
//!
//! * **memory** — placement-state bytes of the explicit table (`Θ(m·k)`)
//!   versus Redundant Share (`O(k·n)`) versus the O(k) variant
//!   (`O(k·n²)`), as the number of stored blocks grows;
//! * **true competitiveness** — Redundant Share's movement on a membership
//!   change divided by the *optimal* movement, measured by actually running
//!   the optimal (table-based) rebalancer on the same change.

use rshare_bench::{f, print_table, section};
use rshare_core::{Bin, BinSet, FastRedundantShare, PlacementStrategy, RedundantShare, TableBased};

fn main() {
    let k = 2usize;

    section("Table T-E (a): placement-state memory vs stored blocks (8 bins, k = 2)");
    let bins = BinSet::from_capacities((0..8u64).map(|i| 4_000_000 + i * 500_000)).unwrap();
    let scan = RedundantShare::new(&bins, k).unwrap();
    let fast = FastRedundantShare::new(&bins, k).unwrap();
    let mut rows = Vec::new();
    for m in [10_000u64, 100_000, 1_000_000] {
        let table = TableBased::new(&bins, k, m).unwrap();
        rows.push(vec![
            m.to_string(),
            table.memory_bytes().to_string(),
            scan.memory_bytes().to_string(),
            fast.memory_bytes().to_string(),
        ]);
    }
    print_table(
        &[
            "blocks m",
            "table bytes",
            "redundant share bytes",
            "O(k) variant bytes",
        ],
        &rows,
    );
    println!(
        "\nthe table grows with the data (Θ(m·k)); the hash strategies do not\n\
         ('compact' in the paper's criteria: state depends on n, not m)."
    );

    section("Table T-E (b): true competitive ratio vs the optimal rebalancer");
    let m = 200_000u64;
    let mut rows = Vec::new();
    for (label, new_cap) in [("add biggest", 8_000_000u64), ("add smallest", 2_000_000)] {
        let new_id = if new_cap > 4_000_000 { 100u64 } else { 1_000 };
        let grown = bins.with_bin(Bin::new(new_id, new_cap).unwrap()).unwrap();
        // Optimal movement: rebalance the explicit table.
        let mut table = TableBased::new(&bins, k, m).unwrap();
        let optimal = table.rebalance(&grown).unwrap();
        // Redundant Share movement on the same change, same ball set.
        let before = RedundantShare::new(&bins, k).unwrap();
        let after = RedundantShare::new(&grown, k).unwrap();
        let mut moved = 0u64;
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for ball in 0..m {
            before.place_into(ball, &mut va);
            after.place_into(ball, &mut vb);
            moved += va.iter().zip(&vb).filter(|(a, b)| a != b).count() as u64;
        }
        rows.push(vec![
            label.to_string(),
            optimal.moved.to_string(),
            moved.to_string(),
            f(moved as f64 / optimal.moved as f64),
        ]);
    }
    print_table(
        &[
            "change",
            "optimal moves",
            "redundant share moves",
            "competitive ratio",
        ],
        &rows,
    );
    println!(
        "\npaper (Lemma 3.2): LinMirror is 4-competitive in the expected case;\n\
         measured true ratios should sit well inside that bound."
    );
}
