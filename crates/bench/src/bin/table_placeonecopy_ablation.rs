//! Table T-D (ablation): the choice of `placeOneCopy` strategy.
//!
//! The paper leaves the fair single-copy subroutine pluggable, naming
//! consistent hashing \[8\] and Share \[2\] as candidates. This ablation runs
//! LinMirror over the Figure 2 bins with three different selectors and
//! compares fairness (max relative deviation) and adaptivity (movement
//! factor when the biggest bin is added), plus each selector's raw k = 1
//! fairness.

use rshare_bench::{f, print_table, section};
use rshare_core::LinMirror;
use rshare_hash::{
    LinearMethod, LogarithmicMethod, Rendezvous, Share, Sieve, SingleCopySelector,
    StatelessConsistent,
};
use rshare_workload::measure_fairness;
use rshare_workload::movement::measure_movement;
use rshare_workload::scenario::{adaptivity_pair, heterogeneous_bins, ChangeKind};

fn run<S: SingleCopySelector + Clone>(name: &str, selector: S, rows: &mut Vec<Vec<String>>) {
    let base = heterogeneous_bins(8);
    let balls = 120_000u64;
    let mirror = LinMirror::with_selector(&base, selector.clone()).unwrap();
    let fairness = measure_fairness(&mirror, balls);
    let (before, after, affected) = adaptivity_pair(&base, ChangeKind::AddBiggest);
    let a = LinMirror::with_selector(&before, selector.clone()).unwrap();
    let b = LinMirror::with_selector(&after, selector).unwrap();
    let movement = measure_movement(&a, &b, affected, balls);
    rows.push(vec![
        name.to_string(),
        f(fairness.max_relative_deviation()),
        format!("{:.1}", fairness.chi_square()),
        f(movement.factor()),
    ]);
}

fn main() {
    section("Table T-D: placeOneCopy ablation (LinMirror over the Figure 2 bins)");
    let mut rows = Vec::new();
    run("weighted rendezvous", Rendezvous::new(), &mut rows);
    run("Share (stretch 8)", Share::new(8.0).unwrap(), &mut rows);
    run(
        "consistent hashing (64 vnodes/unit)",
        StatelessConsistent::new(64),
        &mut rows,
    );
    run("Sieve (rejection sampling)", Sieve::default(), &mut rows);
    run(
        "logarithmic method (64 points)",
        LogarithmicMethod::with_points(64),
        &mut rows,
    );
    run(
        "linear method (64 points)",
        LinearMethod::with_points(64),
        &mut rows,
    );
    print_table(
        &[
            "placeOneCopy",
            "max rel deviation",
            "chi^2",
            "move factor (add biggest)",
        ],
        &rows,
    );
    println!(
        "\nrendezvous and Sieve are exactly fair in expectation (the paper's\n\
         analysis assumes a perfectly fair subroutine), at different\n\
         adaptivity costs — Sieve's rejection rounds re-roll on changes.\n\
         Share, consistent hashing and the geometric methods of [11] carry\n\
         per-instance position variance; at 64 ring points that variance\n\
         dominates, hiding the linear method's systematic bias (which the\n\
         unit tests of rshare-hash::weighted_dht isolate in expectation)."
    );
}
