//! Observability report: instrumentation overhead and live fairness.
//!
//! Two measurements on the `rshare-obs` wiring:
//!
//! 1. **Instrumentation overhead** — cached-read throughput of the same
//!    cluster with metrics on vs off. The instrumented path adds a few
//!    relaxed atomic increments and one monotonic clock read per block
//!    read; the acceptance bar is < 5% overhead.
//! 2. **Live fairness** — a 100-device heterogeneous cluster after one
//!    million block placements: `fairness_report().max_deviation` is the
//!    paper's Lemma 3.1 number, measured on the *stored* distribution
//!    the health surface reports (bar: ≤ 2%).
//!
//! A third, smaller cell times `export_prometheus` renders, so scrape
//! cost is on record too. Prints tables and writes `BENCH_obs.json`
//! in the unified `{name, unit, value, baseline?}` record schema (CI
//! smoke-checks that the file parses). Pass `--quick` to shrink the
//! workload for CI; the report shape is identical.

use std::hint::black_box;
use std::time::Instant;

use rshare_bench::{f, pct, print_table, records_json, section, Record};
use rshare_obs::Metric;
use rshare_vds::{Redundancy, StorageCluster};

/// Timing repetitions per cell; the best (minimum) time is reported.
const REPS: usize = 5;

/// Devices in the overhead cluster — matches `bench_e2e`'s read cell so
/// the two reports stay comparable.
const DEVICES: u64 = 48;

/// Devices in the fairness cluster (the experiment's 100-device claim).
const FAIRNESS_DEVICES: u64 = 100;

/// Best-of-[`REPS`] wall-clock time of `run`.
fn time_best<F: FnMut()>(mut run: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

fn read_cluster(metrics: bool, block_size: usize) -> StorageCluster {
    let mut b = StorageCluster::builder()
        .block_size(block_size)
        .redundancy(Redundancy::Mirror { copies: 3 })
        .metrics(metrics);
    for id in 0..DEVICES {
        b = b.device(id, 1_000_000 + id * 10_000);
    }
    b.build().expect("valid cluster")
}

/// Cached-read throughput (blocks/s), metrics on vs off, plus the export
/// render rate of the instrumented cluster.
///
/// The two clusters are built, written and warmed *before* any timing,
/// and the timed repetitions alternate between them — measuring one
/// configuration to completion first bakes allocator and page-cache
/// warm-up into whichever ran first and can dwarf the few atomic
/// increments under measurement.
fn bench_overhead(quick: bool) -> (f64, f64, f64) {
    let working_set: u64 = if quick { 512 } else { 4_096 };
    let rounds: u64 = if quick { 4 } else { 8 };
    let block_size = 4_096;
    let lbas: Vec<u64> = (0..working_set).collect();
    let data = vec![0xA5u8; block_size];
    let mut clusters: Vec<StorageCluster> = [false, true]
        .into_iter()
        .map(|metrics| {
            let mut c = read_cluster(metrics, block_size);
            for &lba in &lbas {
                c.write_block(lba, &data).expect("write");
            }
            c
        })
        .collect();
    for c in &clusters {
        black_box(c.read_blocks(&lbas).expect("warm-up read"));
    }

    let mut best = [u128::MAX; 2];
    for _ in 0..REPS {
        for (slot, c) in clusters.iter().enumerate() {
            let start = Instant::now();
            for _ in 0..rounds {
                black_box(c.read_blocks(black_box(&lbas)).expect("read"));
            }
            best[slot] = best[slot].min(start.elapsed().as_nanos());
        }
    }
    let rate = |ns: u128| (working_set * rounds) as f64 / (ns as f64 / 1e9);

    // Sanity: "metrics on" must actually be instrumenting.
    let instrumented = clusters.pop().expect("two clusters");
    let registry = instrumented.metrics_registry().expect("metrics on");
    match registry.get("reads_total") {
        Some(Metric::Counter(reads)) => {
            assert!(reads.get() >= working_set * rounds, "reads were counted")
        }
        other => panic!("expected reads_total counter, found {other:?}"),
    }
    let renders: u64 = if quick { 32 } else { 256 };
    let elapsed = time_best(|| {
        for _ in 0..renders {
            black_box(instrumented.export_prometheus());
        }
    });
    let export_rate = renders as f64 / (elapsed as f64 / 1e9);
    (rate(best[1]), rate(best[0]), export_rate)
}

/// Writes `blocks` blocks onto a 100-device heterogeneous cluster and
/// returns the live fairness report's `(max, mean-absolute)` deviation.
fn bench_fairness(blocks: u64) -> (f64, f64) {
    let mut b = StorageCluster::builder()
        .block_size(16)
        .redundancy(Redundancy::Mirror { copies: 2 });
    for id in 0..FAIRNESS_DEVICES {
        b = b.device(id, 40_000 + id * 300);
    }
    let mut c = b.build().expect("valid cluster");
    let data = [0x3Cu8; 16];
    for lba in 0..blocks {
        c.write_block(lba, &data).expect("write");
    }
    let report = c.fairness_report();
    assert_eq!(report.devices.len(), FAIRNESS_DEVICES as usize);
    assert_eq!(report.total_used, 2 * blocks);
    let mean_abs = report
        .devices
        .iter()
        .map(|d| d.deviation.abs())
        .sum::<f64>()
        / report.devices.len() as f64;
    (report.max_deviation, mean_abs)
}

/// Hand-rolled JSON (no serde in the dependency set).
fn to_json(records: &[Record], quick: bool, blocks: u64, overhead: f64, max_dev: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"reps\": {REPS}, \"devices\": {DEVICES}, \"fairness_devices\": {FAIRNESS_DEVICES}, \"fairness_blocks\": {blocks}}},\n"
    ));
    s.push_str(&records_json(records));
    s.push_str(",\n");
    s.push_str(&format!(
        "  \"summary\": {{\"metrics_overhead_pct\": {:.2}, \"fairness_max_deviation\": {:.5}}}\n",
        overhead * 100.0,
        max_dev
    ));
    s.push('}');
    s.push('\n');
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    section(&format!(
        "Observability — instrumentation overhead + live fairness{}",
        if quick { " (quick mode)" } else { "" }
    ));

    let (on_rate, off_rate, export_rate) = bench_overhead(quick);
    let overhead = (off_rate - on_rate) / off_rate;
    let blocks: u64 = if quick { 100_000 } else { 1_000_000 };
    let (max_dev, mean_dev) = bench_fairness(blocks);

    print_table(
        &["measure", "value", "baseline", "bar"],
        &[
            vec![
                "cached reads, metrics on".into(),
                format!("{:.3} Mblocks/s", on_rate / 1e6),
                format!("{:.3} Mblocks/s off", off_rate / 1e6),
                "-".into(),
            ],
            vec![
                "instrumentation overhead".into(),
                pct(overhead),
                "-".into(),
                "< 5%".into(),
            ],
            vec![
                "export_prometheus".into(),
                format!("{:.1} renders/s", export_rate),
                "-".into(),
                "-".into(),
            ],
            vec![
                format!("fairness max deviation ({blocks} blocks)"),
                pct(max_dev),
                format!("{} mean", pct(mean_dev)),
                "<= 2%".into(),
            ],
        ],
    );
    println!(
        "\noverhead {} (bar 5%), fairness max deviation {} (bar 2%)",
        pct(overhead),
        f(max_dev)
    );

    let records = vec![
        Record::with_baseline("cached_read_metrics_on", "blocks_per_s", on_rate, off_rate),
        Record::new("cached_read_metrics_off", "blocks_per_s", off_rate),
        Record::with_baseline("metrics_overhead", "percent", overhead * 100.0, 5.0),
        Record::new("export_render", "renders_per_s", export_rate),
        Record::with_baseline("fairness_max_deviation", "ratio", max_dev, 0.02),
        Record::new("fairness_mean_abs_deviation", "ratio", mean_dev),
    ];
    let json = to_json(&records, quick, blocks, overhead, max_dev);
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} records)", records.len());
}
