//! Shared helpers for the experiment binaries that regenerate the paper's
//! figures and tables.
//!
//! Every binary in `src/bin/` reproduces one evaluation artifact of the
//! ICDCS 2007 paper (see `DESIGN.md`'s experiment index) and prints a
//! plain-text table to stdout; `EXPERIMENTS.md` records paper-claim versus
//! measured values. Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a section header for an experiment report.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned text table: a header row followed by data rows.
///
/// Column widths are derived from the widest cell per column.
///
/// # Example
///
/// ```
/// rshare_bench::print_table(
///     &["bin", "share"],
///     &[vec!["0".into(), "0.50".into()], vec!["1".into(), "0.25".into()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = w));
        }
        println!("{out}");
    };
    line(headers.to_vec());
    let seps: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(seps.iter().map(String::as_str).collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// One observation in the unified cross-binary record schema.
///
/// Every `bench_*` binary emits a `"records"` array of these alongside
/// its binary-specific tables, so downstream tooling can diff runs
/// without knowing each report's shape: a named scalar, its unit, and —
/// when the binary also measured a reference configuration (serial,
/// uncached, metrics-off, …) — that baseline value for the same quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Series name, `snake_case`, unique within one report.
    pub name: String,
    /// Unit of `value` (e.g. `blocks_per_s`, `percent`, `ratio`).
    pub unit: &'static str,
    /// The measured value.
    pub value: f64,
    /// The same quantity in the reference configuration, if one exists.
    pub baseline: Option<f64>,
}

impl Record {
    /// A record with no reference configuration.
    #[must_use]
    pub fn new(name: impl Into<String>, unit: &'static str, value: f64) -> Self {
        Self {
            name: name.into(),
            unit,
            value,
            baseline: None,
        }
    }

    /// A record measured against a reference configuration.
    #[must_use]
    pub fn with_baseline(
        name: impl Into<String>,
        unit: &'static str,
        value: f64,
        baseline: f64,
    ) -> Self {
        Self {
            name: name.into(),
            unit,
            value,
            baseline: Some(baseline),
        }
    }
}

/// Renders the unified `"records": [...]` JSON fragment (hand-rolled —
/// no serde in the dependency set), indented for the two-space report
/// layout the `bench_*` binaries share. The fragment carries no trailing
/// comma or newline; callers splice it between other top-level keys.
#[must_use]
pub fn records_json(records: &[Record]) -> String {
    let mut s = String::from("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"value\": {:.4}",
            r.name, r.unit, r.value
        ));
        if let Some(b) = r.baseline {
            s.push_str(&format!(", \"baseline\": {b:.4}"));
        }
        s.push('}');
        if i + 1 != records.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]");
    s
}

/// Formats a float with 4 decimal places (the precision used throughout
/// the experiment reports).
#[must_use]
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a percentage with 2 decimal places.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f(0.123456), "0.1235");
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn records_render_the_unified_schema() {
        let records = [
            Record::with_baseline("cached_reads", "blocks_per_s", 2.0, 1.0),
            Record::new("overhead", "percent", 3.25),
        ];
        let json = records_json(&records);
        assert!(json.starts_with("  \"records\": [\n"));
        assert!(json.ends_with("  ]"));
        assert!(json.contains(
            "{\"name\": \"cached_reads\", \"unit\": \"blocks_per_s\", \
             \"value\": 2.0000, \"baseline\": 1.0000},"
        ));
        assert!(
            json.contains("{\"name\": \"overhead\", \"unit\": \"percent\", \"value\": 3.2500}\n")
        );
        assert_eq!(records_json(&[]), "  \"records\": [\n  ]");
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
