//! Shared helpers for the experiment binaries that regenerate the paper's
//! figures and tables.
//!
//! Every binary in `src/bin/` reproduces one evaluation artifact of the
//! ICDCS 2007 paper (see `DESIGN.md`'s experiment index) and prints a
//! plain-text table to stdout; `EXPERIMENTS.md` records paper-claim versus
//! measured values. Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a section header for an experiment report.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned text table: a header row followed by data rows.
///
/// Column widths are derived from the widest cell per column.
///
/// # Example
///
/// ```
/// rshare_bench::print_table(
///     &["bin", "share"],
///     &[vec!["0".into(), "0.50".into()], vec!["1".into(), "0.25".into()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = w));
        }
        println!("{out}");
    };
    line(headers.to_vec());
    let seps: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(seps.iter().map(String::as_str).collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// Formats a float with 4 decimal places (the precision used throughout
/// the experiment reports).
#[must_use]
pub fn f(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a percentage with 2 decimal places.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f(0.123456), "0.1235");
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn table_does_not_panic() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
