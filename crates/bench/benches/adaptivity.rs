//! Adaptivity benchmarks: the cost of a membership change.
//!
//! Measures (a) strategy reconstruction after adding a bin and (b) the
//! end-to-end migration of a loaded storage cluster when a device joins —
//! the operation whose data volume Lemmas 3.2/3.5 bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rshare_core::{Bin, BinSet, RedundantShare};
use rshare_vds::{Redundancy, StorageCluster};
use std::hint::black_box;

fn heterogeneous(n: usize) -> BinSet {
    BinSet::from_capacities((0..n as u64).map(|i| 500_000 + i * 100_000)).expect("valid bins")
}

/// Rebuilding the strategy after membership changes (the control-plane
/// cost of adaptivity; the data-plane cost is the migration itself).
fn strategy_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_rebuild_k3");
    for n in [8usize, 64, 256] {
        let bins = heterogeneous(n);
        let grown = bins
            .with_bin(Bin::new(100_000u64, 2_000_000).unwrap())
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(RedundantShare::new(&grown, 3).unwrap()));
        });
    }
    group.finish();
}

/// End-to-end device addition on a loaded mirrored cluster.
fn cluster_scale_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_add_device");
    group.sample_size(10);
    for blocks in [2_000u64, 8_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                b.iter_batched(
                    || {
                        let mut cluster = StorageCluster::builder()
                            .block_size(16)
                            .redundancy(Redundancy::Mirror { copies: 2 })
                            .device(0, 200_000)
                            .device(1, 200_000)
                            .device(2, 200_000)
                            .device(3, 200_000)
                            .build()
                            .unwrap();
                        let payload = [7u8; 16];
                        for lba in 0..blocks {
                            cluster.write_block(lba, &payload).unwrap();
                        }
                        cluster
                    },
                    |mut cluster| {
                        black_box(cluster.add_device(9, 200_000).unwrap());
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// Lazy migration: the cost of the placement switch itself (instant) and
/// the amortised per-step migration, versus the eager all-at-once path.
fn lazy_vs_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_vs_eager_add_device");
    group.sample_size(10);
    let blocks = 4_000u64;
    let build = || {
        let mut cluster = StorageCluster::builder()
            .block_size(16)
            .redundancy(Redundancy::Mirror { copies: 2 })
            .device(0, 200_000)
            .device(1, 200_000)
            .device(2, 200_000)
            .device(3, 200_000)
            .build()
            .unwrap();
        let payload = [7u8; 16];
        for lba in 0..blocks {
            cluster.write_block(lba, &payload).unwrap();
        }
        cluster
    };
    group.bench_function("eager", |b| {
        b.iter_batched(
            build,
            |mut cluster| {
                black_box(cluster.add_device(9, 200_000).unwrap());
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("lazy_switch_only", |b| {
        b.iter_batched(
            build,
            |mut cluster| {
                black_box(cluster.add_device_lazy(9, 200_000).unwrap());
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("lazy_step_100_blocks", |b| {
        b.iter_batched(
            || {
                let mut cluster = build();
                cluster.add_device_lazy(9, 200_000).unwrap();
                cluster
            },
            |mut cluster| {
                black_box(cluster.migrate_step(100).unwrap());
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = strategy_rebuild, cluster_scale_out, lazy_vs_eager
}
criterion_main!(benches);
