//! Time-efficiency benchmarks (Table T-C).
//!
//! The paper claims O(n) placement for the scan strategies and O(k) for
//! the precomputed variant (Section 3.3). These benches measure per-ball
//! placement cost across strategies, system sizes and replication degrees,
//! plus construction cost (the price the O(k) variant pays up front).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rshare_core::{
    BinSet, FastRedundantShare, LinMirror, PlacementStrategy, RedundantShare, SystematicPps,
    TrivialReplication,
};
use rshare_rush::{RushP, SubCluster};
use std::hint::black_box;

fn heterogeneous(n: usize) -> BinSet {
    BinSet::from_capacities((0..n as u64).map(|i| 500_000 + i * 100_000)).expect("valid bins")
}

/// Per-ball placement cost of every strategy on 8 heterogeneous bins.
fn placement_throughput(c: &mut Criterion) {
    let bins = heterogeneous(8);
    let k = 3;
    let mut group = c.benchmark_group("placement_throughput_n8_k3");
    group.throughput(Throughput::Elements(1));
    let strategies: Vec<(&str, Box<dyn PlacementStrategy>)> = vec![
        (
            "redundant_share",
            Box::new(RedundantShare::new(&bins, k).unwrap()),
        ),
        (
            "fast_redundant_share",
            Box::new(FastRedundantShare::new(&bins, k).unwrap()),
        ),
        (
            "trivial",
            Box::new(TrivialReplication::new(&bins, k).unwrap()),
        ),
        (
            "systematic_pps",
            Box::new(SystematicPps::new(&bins, k).unwrap()),
        ),
        (
            "rush_p",
            Box::new(
                RushP::new(
                    (0..8)
                        .map(|i| SubCluster::new(1, 500_000.0 + f64::from(i) * 100_000.0).unwrap()),
                    k,
                )
                .unwrap(),
            ),
        ),
    ];
    for (name, strat) in &strategies {
        group.bench_function(*name, |b| {
            let mut out = Vec::with_capacity(k);
            let mut ball = 0u64;
            b.iter(|| {
                ball = ball.wrapping_add(1);
                strat.place_into(black_box(ball), &mut out);
                black_box(&out);
            });
        });
    }
    // LinMirror (k = 2) on the same bins for reference.
    let mirror = LinMirror::new(&bins).unwrap();
    group.bench_function("linmirror_k2", |b| {
        let mut ball = 0u64;
        b.iter(|| {
            ball = ball.wrapping_add(1);
            black_box(mirror.place_pair(black_box(ball)));
        });
    });
    group.finish();
}

/// O(n) scan versus O(k) precomputed variant as the system grows.
fn scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_n_k3");
    group.throughput(Throughput::Elements(1));
    for n in [8usize, 32, 128, 512] {
        let bins = heterogeneous(n);
        let scan = RedundantShare::new(&bins, 3).unwrap();
        let fast = FastRedundantShare::new(&bins, 3).unwrap();
        group.bench_with_input(BenchmarkId::new("scan_O(n)", n), &n, |b, _| {
            let mut out = Vec::with_capacity(3);
            let mut ball = 0u64;
            b.iter(|| {
                ball = ball.wrapping_add(1);
                scan.place_into(black_box(ball), &mut out);
                black_box(&out);
            });
        });
        group.bench_with_input(BenchmarkId::new("fast_O(k)", n), &n, |b, _| {
            let mut out = Vec::with_capacity(3);
            let mut ball = 0u64;
            b.iter(|| {
                ball = ball.wrapping_add(1);
                fast.place_into(black_box(ball), &mut out);
                black_box(&out);
            });
        });
    }
    group.finish();
}

/// Placement cost as the replication degree grows (n = 64).
fn scaling_k(c: &mut Criterion) {
    let bins = heterogeneous(64);
    let mut group = c.benchmark_group("scaling_k_n64");
    group.throughput(Throughput::Elements(1));
    for k in [1usize, 2, 4, 8] {
        let scan = RedundantShare::new(&bins, k).unwrap();
        let fast = FastRedundantShare::new(&bins, k).unwrap();
        group.bench_with_input(BenchmarkId::new("scan_O(n)", k), &k, |b, _| {
            let mut out = Vec::with_capacity(k);
            let mut ball = 0u64;
            b.iter(|| {
                ball = ball.wrapping_add(1);
                scan.place_into(black_box(ball), &mut out);
                black_box(&out);
            });
        });
        group.bench_with_input(BenchmarkId::new("fast_O(k)", k), &k, |b, _| {
            let mut out = Vec::with_capacity(k);
            let mut ball = 0u64;
            b.iter(|| {
                ball = ball.wrapping_add(1);
                fast.place_into(black_box(ball), &mut out);
                black_box(&out);
            });
        });
    }
    group.finish();
}

/// Construction (precomputation) cost: what the O(k) query time costs up
/// front, and the scan strategy's calibration cost.
fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_k3");
    for n in [8usize, 64, 256] {
        let bins = heterogeneous(n);
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(RedundantShare::new(&bins, 3).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, _| {
            b.iter(|| black_box(FastRedundantShare::new(&bins, 3).unwrap()));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = placement_throughput, scaling_n, scaling_k, construction
}
criterion_main!(benches);
