//! Erasure-code throughput: encode and double-erasure reconstruction for
//! every code the storage layer can place with Redundant Share.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rshare_erasure::{ErasureCode, EvenOdd, MatrixCode, Rdp, ReedSolomon, XorParity};
use std::hint::black_box;

const SHARD: usize = 4096; // one 4 KiB shard per device

fn codes() -> Vec<(&'static str, Box<dyn ErasureCode>)> {
    vec![
        ("xor_parity_d4", Box::new(XorParity::new(4).unwrap())),
        ("evenodd_p5", Box::new(EvenOdd::new(5).unwrap())),
        ("rdp_p5", Box::new(Rdp::new(5).unwrap())),
        (
            "reed_solomon_4_2",
            Box::new(ReedSolomon::new(4, 2).unwrap()),
        ),
        (
            "lrc_2x2_g2",
            Box::new(MatrixCode::local_reconstruction(2, 2, 2).unwrap()),
        ),
    ]
}

fn shards_for(code: &dyn ErasureCode) -> Vec<Vec<u8>> {
    // Round the shard size up to the code's symbol multiple.
    let mult = code.shard_multiple();
    let len = SHARD.div_ceil(mult) * mult;
    (0..code.total_shards())
        .map(|i| (0..len).map(|j| ((i * 131 + j * 7) % 256) as u8).collect())
        .collect()
}

fn encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_encode");
    for (name, code) in codes() {
        let mut shards = shards_for(code.as_ref());
        let data_bytes = (code.data_shards() * shards[0].len()) as u64;
        group.throughput(Throughput::Bytes(data_bytes));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                code.encode(black_box(&mut shards)).unwrap();
            });
        });
    }
    group.finish();
}

fn reconstruct_two(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure_reconstruct_2_losses");
    for (name, code) in codes() {
        if code.tolerated_erasures() < 2 {
            continue;
        }
        let mut shards = shards_for(code.as_ref());
        code.encode(&mut shards).unwrap();
        let data_bytes = (code.data_shards() * shards[0].len()) as u64;
        group.throughput(Throughput::Bytes(data_bytes));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut damaged: Vec<Option<Vec<u8>>> =
                        shards.iter().cloned().map(Some).collect();
                    damaged[0] = None;
                    damaged[2] = None;
                    damaged
                },
                |mut damaged| {
                    code.reconstruct(black_box(&mut damaged)).unwrap();
                    black_box(&damaged);
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = encode, reconstruct_two
}
criterion_main!(benches);
