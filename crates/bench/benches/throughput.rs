//! Batched and multi-threaded placement throughput.
//!
//! Three query paths over the same [`RedundantShare`] strategy:
//!
//! * `scalar` — one [`PlacementStrategy::place_into`] call per ball, the
//!   baseline every caller used before the batch API existed;
//! * `batch` — one [`PlacementStrategy::place_batch_into`] call writing a
//!   flat stride-`k` buffer (no per-ball `Vec`s, no repeated dispatch);
//! * `parallel` — the [`PlacementEngine`] sharding the batch across OS
//!   threads.
//!
//! Placement is a pure function per ball, so all three paths return
//! bit-identical output (the core crate's tests pin that down); the only
//! difference is wall-clock time. Swept over k ∈ {2, 3, 4} and
//! n ∈ {16, 256, 4096} — the O(n) scan makes large-n the interesting
//! regime for both batching and parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rshare_core::{BinId, BinSet, PlacementEngine, PlacementStrategy, RedundantShare};
use std::hint::black_box;

/// Balls per measured batch. Large enough to cross the engine's
/// sequential-fallback threshold on every thread count.
const BATCH: usize = 1 << 12;

fn heterogeneous(n: usize) -> BinSet {
    BinSet::from_capacities((0..n as u64).map(|i| 500_000 + i * 100_000)).expect("valid bins")
}

fn query_paths(c: &mut Criterion) {
    let balls: Vec<u64> = (0..BATCH as u64).map(|b| b.wrapping_mul(0x9E37)).collect();
    for k in [2usize, 3, 4] {
        let mut group = c.benchmark_group(format!("throughput_k{k}"));
        group.throughput(Throughput::Elements(BATCH as u64));
        for n in [16usize, 256, 4096] {
            let strat = RedundantShare::new(&heterogeneous(n), k).unwrap();
            let engine = PlacementEngine::new(strat.clone());
            group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
                let mut group_buf = Vec::with_capacity(k);
                b.iter(|| {
                    for &ball in &balls {
                        strat.place_into(black_box(ball), &mut group_buf);
                        black_box(&group_buf);
                    }
                });
            });
            group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
                let mut out: Vec<BinId> = Vec::with_capacity(BATCH * k);
                b.iter(|| {
                    strat.place_batch_into(black_box(&balls), &mut out);
                    black_box(&out);
                });
            });
            group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
                let mut out: Vec<BinId> = Vec::with_capacity(BATCH * k);
                b.iter(|| {
                    engine.place_batch_into(black_box(&balls), &mut out);
                    black_box(&out);
                });
            });
        }
        group.finish();
    }
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = query_paths
}
criterion_main!(benches);
