//! The experiment scenarios of the paper's evaluation.
//!
//! Section 3.1: "We started the tests with 8 heterogeneous bins. The first
//! has a capacity of 500,000 blocks, for the other bins the size is
//! increased by 100,000 blocks with each bin, so the last bin has a
//! capacity of 1,200,000 blocks. To show what happens if we replace smaller
//! bins by bigger ones we added two times two bins. The new bins are
//! growing by the same factor as the first did. Then we removed two times
//! the two smallest bins." (Figures 2 and 4.)
//!
//! Figure 3/5 use add/remove-at-the-ends variants over heterogeneous and
//! homogeneous bins, which [`ChangeKind`] + [`adaptivity_pair`] produce.

use rshare_core::{Bin, BinId, BinSet};

/// Base capacity of the smallest initial bin (blocks).
pub const BASE_CAPACITY: u64 = 500_000;
/// Capacity increment between consecutive bins (blocks).
pub const CAPACITY_STEP: u64 = 100_000;
/// Number of bins in the initial configuration.
pub const INITIAL_BINS: usize = 8;

/// One stage of the Figure 2/4 scenario.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Human-readable label used in the figure ("8 Disks", "10 Disks", …).
    pub label: &'static str,
    /// The bin configuration at this stage.
    pub bins: BinSet,
}

/// Builds the five stages of the paper's fairness experiment:
/// 8 → 10 → 12 → 10 → 8 bins.
///
/// Bin `i` (0-based) has capacity `500,000 + i · 100,000`; growth appends
/// bins continuing the progression; shrinking removes the two smallest
/// bins twice.
///
/// # Example
///
/// ```
/// let stages = rshare_workload::scenario::paper_scenario();
/// assert_eq!(stages.len(), 5);
/// assert_eq!(stages[0].bins.len(), 8);
/// assert_eq!(stages[2].bins.len(), 12);
/// assert_eq!(stages[4].bins.len(), 8);
/// ```
#[must_use]
pub fn paper_scenario() -> Vec<Stage> {
    let cap = |i: u64| BASE_CAPACITY + i * CAPACITY_STEP;
    let bins_for = |ids: std::ops::Range<u64>| {
        BinSet::new(ids.map(|i| Bin::new(i, cap(i)).expect("positive capacity")))
            .expect("valid scenario bins")
    };
    let eight = bins_for(0..8);
    let ten = bins_for(0..10);
    let twelve = bins_for(0..12);
    // Remove the two smallest (ids 0 and 1), then the next two (2 and 3).
    let ten_shrunk = bins_for(2..12);
    let eight_shrunk = bins_for(4..12);
    vec![
        Stage {
            label: "8 disks",
            bins: eight,
        },
        Stage {
            label: "10 disks",
            bins: ten,
        },
        Stage {
            label: "12 disks",
            bins: twelve,
        },
        Stage {
            label: "10 disks (shrunk)",
            bins: ten_shrunk,
        },
        Stage {
            label: "8 disks (shrunk)",
            bins: eight_shrunk,
        },
    ]
}

/// The kind of membership change measured in the adaptivity experiments
/// (Figures 3 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Add a bin bigger than every existing one (head of the list).
    AddBiggest,
    /// Add a bin smaller than every existing one (tail of the list).
    AddSmallest,
    /// Remove the biggest bin.
    RemoveBiggest,
    /// Remove the smallest bin.
    RemoveSmallest,
}

impl ChangeKind {
    /// All four change kinds, in the order Figure 3 reports them.
    pub const ALL: [Self; 4] = [
        Self::AddBiggest,
        Self::AddSmallest,
        Self::RemoveBiggest,
        Self::RemoveSmallest,
    ];

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::AddBiggest => "add biggest",
            Self::AddSmallest => "add smallest",
            Self::RemoveBiggest => "remove biggest",
            Self::RemoveSmallest => "remove smallest",
        }
    }
}

/// A heterogeneous base configuration of `n` bins following the paper's
/// progression, with ids leaving room above and below for insertions.
#[must_use]
pub fn heterogeneous_bins(n: usize) -> BinSet {
    BinSet::new((0..n as u64).map(|i| {
        Bin::new(1_000 + i, BASE_CAPACITY + i * CAPACITY_STEP).expect("positive capacity")
    }))
    .expect("valid bins")
}

/// A homogeneous base configuration of `n` bins of equal capacity.
#[must_use]
pub fn homogeneous_bins(n: usize) -> BinSet {
    BinSet::new(
        (0..n as u64).map(|i| Bin::new(1_000 + i, BASE_CAPACITY).expect("positive capacity")),
    )
    .expect("valid bins")
}

/// Applies a [`ChangeKind`] to `base`, returning `(before, after, affected)`
/// where `affected` is the id of the added or removed bin.
///
/// For additions to homogeneous systems the new bin has the same capacity
/// as the others; its position in the scan order (head or tail of the
/// list) is controlled through the tie-breaking identifier, mirroring the
/// paper's "where in the list of bins a change happens".
///
/// # Panics
///
/// Panics if `base` is empty (scenario construction guarantees otherwise).
#[must_use]
pub fn adaptivity_pair(base: &BinSet, kind: ChangeKind) -> (BinSet, BinSet, BinId) {
    let first = base.bins().first().expect("non-empty base");
    let last = base.bins().last().expect("non-empty base");
    match kind {
        ChangeKind::AddBiggest => {
            // Strictly bigger capacity for heterogeneous bases; for
            // homogeneous bases the same capacity with a smaller id puts
            // the bin at the head of the list.
            let homogeneous = first.capacity() == last.capacity();
            let cap = if homogeneous {
                first.capacity()
            } else {
                first.capacity() + CAPACITY_STEP
            };
            let bin = Bin::new(1, cap).expect("positive capacity");
            let after = base.with_bin(bin).expect("fresh id");
            (base.clone(), after, bin.id())
        }
        ChangeKind::AddSmallest => {
            let homogeneous = first.capacity() == last.capacity();
            let cap = if homogeneous {
                last.capacity()
            } else {
                last.capacity() - CAPACITY_STEP
            };
            let bin = Bin::new(9_999, cap).expect("positive capacity");
            let after = base.with_bin(bin).expect("fresh id");
            (base.clone(), after, bin.id())
        }
        ChangeKind::RemoveBiggest => {
            let id = first.id();
            (base.clone(), base.without_bin(id).expect("present"), id)
        }
        ChangeKind::RemoveSmallest => {
            let id = last.id();
            (base.clone(), base.without_bin(id).expect("present"), id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_capacities_match_paper() {
        let stages = paper_scenario();
        let first = &stages[0].bins;
        assert_eq!(first.bins().last().unwrap().capacity(), 500_000);
        assert_eq!(first.bins().first().unwrap().capacity(), 1_200_000);
        let twelve = &stages[2].bins;
        assert_eq!(twelve.bins().first().unwrap().capacity(), 1_600_000);
        let final_eight = &stages[4].bins;
        assert_eq!(final_eight.len(), 8);
        assert_eq!(final_eight.bins().last().unwrap().capacity(), 900_000);
    }

    #[test]
    fn adaptivity_pairs_affect_the_right_bin() {
        let het = heterogeneous_bins(8);
        let (before, after, id) = adaptivity_pair(&het, ChangeKind::AddBiggest);
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(after.bins()[0].id(), id, "new biggest bin heads the list");
        let (_, after, id) = adaptivity_pair(&het, ChangeKind::AddSmallest);
        assert_eq!(after.bins().last().unwrap().id(), id);
        let (_, after, id) = adaptivity_pair(&het, ChangeKind::RemoveBiggest);
        assert_eq!(after.len(), het.len() - 1);
        assert!(after.get(id).is_none());
        let (_, after, id) = adaptivity_pair(&het, ChangeKind::RemoveSmallest);
        assert!(after.get(id).is_none());
    }

    #[test]
    fn homogeneous_insertion_position_via_tie_break() {
        let hom = homogeneous_bins(6);
        let (_, after, id) = adaptivity_pair(&hom, ChangeKind::AddBiggest);
        assert_eq!(after.bins()[0].id(), id, "head insertion");
        let (_, after, id) = adaptivity_pair(&hom, ChangeKind::AddSmallest);
        assert_eq!(after.bins().last().unwrap().id(), id, "tail insertion");
    }

    #[test]
    fn labels() {
        for kind in ChangeKind::ALL {
            assert!(!kind.label().is_empty());
        }
    }
}
