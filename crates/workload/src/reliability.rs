//! Monte-Carlo durability simulation over placed redundancy groups.
//!
//! The paper motivates redundancy with device failures ("if a storage
//! device fails, all of the blocks stored in it cannot be recovered any
//! more"). This module closes the loop: given a placement strategy and a
//! redundancy tolerance, it simulates years of operation — exponential
//! device failures, rebuilds bounded by a rebuild time — and estimates the
//! probability that some redundancy group loses more shards than it
//! tolerates while degraded.
//!
//! Because shard locations come from the *actual* placement strategy, the
//! simulation captures placement-level effects (e.g. which device pairs
//! co-host mirror copies) that closed-form MTTDL formulas average away.

use rand::{Rng, SeedableRng};
use rshare_core::PlacementStrategy;

/// Configuration of one durability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Number of redundancy groups (blocks) tracked.
    pub blocks: u64,
    /// Shard losses each group tolerates (k-1 for k-mirroring, parity
    /// count for MDS codes).
    pub tolerated: usize,
    /// Mean time between failures of one device, in hours.
    pub device_mtbf_hours: f64,
    /// Time to restore a failed device's shards, in hours.
    pub rebuild_hours: f64,
    /// Simulated mission time, in hours.
    pub mission_hours: f64,
}

impl Default for ReliabilityConfig {
    /// 100k blocks, 1M-hour device MTBF (~114 years, a typical disk spec),
    /// 24-hour rebuilds, a 10-year mission.
    fn default() -> Self {
        Self {
            blocks: 100_000,
            tolerated: 1,
            device_mtbf_hours: 1.0e6,
            rebuild_hours: 24.0,
            mission_hours: 10.0 * 365.25 * 24.0,
        }
    }
}

/// Aggregated outcome of repeated missions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityReport {
    /// Missions simulated.
    pub trials: u32,
    /// Missions that experienced at least one unrecoverable group.
    pub losses: u32,
    /// Mean number of device failures per mission.
    pub mean_failures: f64,
    /// Mean simulated hours until the first loss, over missions that lost
    /// data (`None` if none did).
    pub mean_hours_to_loss: Option<f64>,
}

impl ReliabilityReport {
    /// Estimated probability of data loss within one mission.
    #[must_use]
    pub fn loss_probability(&self) -> f64 {
        f64::from(self.losses) / f64::from(self.trials)
    }
}

/// Runs `trials` independent missions of the configured simulation.
///
/// Device failure times are exponential with the configured MTBF; a failed
/// device is fully restored `rebuild_hours` later (from redundancy, as
/// `rshare-vds`'s rebuild would). Data is lost when a group has more
/// than `tolerated` shards on simultaneously-failed devices.
///
/// # Panics
///
/// Panics if the strategy returns placements inconsistent with its
/// `bin_ids`, or if the configuration is non-positive.
#[must_use]
pub fn simulate(
    strategy: &dyn PlacementStrategy,
    config: ReliabilityConfig,
    trials: u32,
    seed: u64,
) -> ReliabilityReport {
    assert!(config.blocks > 0 && trials > 0);
    assert!(config.device_mtbf_hours > 0.0 && config.rebuild_hours > 0.0);
    let n = strategy.bin_ids().len();
    // Reverse index: device -> blocks with a shard on it.
    let mut device_blocks: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut out = Vec::with_capacity(strategy.replication());
    let id_pos: std::collections::HashMap<_, _> = strategy
        .bin_ids()
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();
    for block in 0..config.blocks {
        strategy.place_into(block, &mut out);
        for id in &out {
            device_blocks[id_pos[id]].push(block as u32);
        }
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let lambda = 1.0 / config.device_mtbf_hours;
    let mut losses = 0u32;
    let mut total_failures = 0u64;
    let mut hours_to_loss_sum = 0.0;
    for _ in 0..trials {
        // Per-device next failure time; failed devices carry their repair
        // completion time.
        let mut next_failure: Vec<f64> = (0..n)
            .map(|_| -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / lambda)
            .collect();
        let mut repaired_at: Vec<f64> = vec![0.0; n];
        let mut failed: Vec<bool> = vec![false; n];
        let mut degraded: Vec<u8> = vec![0; usize::try_from(config.blocks).unwrap()];
        let mut lost = None;
        loop {
            // Next event: earliest failure or repair.
            let mut t = f64::INFINITY;
            let mut dev = usize::MAX;
            let mut is_repair = false;
            for d in 0..n {
                if failed[d] {
                    if repaired_at[d] < t {
                        t = repaired_at[d];
                        dev = d;
                        is_repair = true;
                    }
                } else if next_failure[d] < t {
                    t = next_failure[d];
                    dev = d;
                    is_repair = false;
                }
            }
            if t > config.mission_hours {
                break;
            }
            if is_repair {
                failed[dev] = false;
                next_failure[dev] = t + -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / lambda;
                for &b in &device_blocks[dev] {
                    degraded[b as usize] -= 1;
                }
            } else {
                failed[dev] = true;
                repaired_at[dev] = t + config.rebuild_hours;
                total_failures += 1;
                for &b in &device_blocks[dev] {
                    degraded[b as usize] += 1;
                    if usize::from(degraded[b as usize]) > config.tolerated {
                        lost.get_or_insert(t);
                    }
                }
                if lost.is_some() {
                    break;
                }
            }
        }
        if let Some(t) = lost {
            losses += 1;
            hours_to_loss_sum += t;
        }
    }
    ReliabilityReport {
        trials,
        losses,
        mean_failures: total_failures as f64 / f64::from(trials),
        mean_hours_to_loss: (losses > 0).then(|| hours_to_loss_sum / f64::from(losses)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshare_core::{BinSet, RedundantShare};

    fn strategy(n: u64, k: usize) -> RedundantShare {
        let bins = BinSet::from_capacities((0..n).map(|_| 1_000_000)).unwrap();
        RedundantShare::new(&bins, k).unwrap()
    }

    #[test]
    fn no_redundancy_loses_on_first_failure() {
        let strat = strategy(6, 1);
        let config = ReliabilityConfig {
            blocks: 1_000,
            tolerated: 0,
            device_mtbf_hours: 1_000.0, // fail often
            rebuild_hours: 10.0,
            mission_hours: 50_000.0,
        };
        let report = simulate(&strat, config, 20, 1);
        assert_eq!(report.losses, report.trials, "k = 1 cannot survive");
        assert!(report.mean_hours_to_loss.unwrap() < 10_000.0);
    }

    #[test]
    fn more_redundancy_is_strictly_safer() {
        let config = ReliabilityConfig {
            blocks: 20_000,
            tolerated: 1,
            device_mtbf_hours: 20_000.0, // aggressive, to see events
            rebuild_hours: 200.0,        // slow rebuilds widen the window
            mission_hours: 10.0 * 8_766.0,
        };
        let mirror2 = simulate(&strategy(8, 2), config, 60, 7);
        let config3 = ReliabilityConfig {
            tolerated: 2,
            ..config
        };
        let mirror3 = simulate(&strategy(8, 3), config3, 60, 7);
        assert!(
            mirror3.loss_probability() <= mirror2.loss_probability(),
            "3-way {} should not lose more than 2-way {}",
            mirror3.loss_probability(),
            mirror2.loss_probability()
        );
        assert!(mirror2.mean_failures > 1.0, "failures should occur");
    }

    #[test]
    fn reliable_devices_rarely_lose_data() {
        let strat = strategy(8, 3);
        let config = ReliabilityConfig {
            blocks: 5_000,
            tolerated: 2,
            ..ReliabilityConfig::default()
        };
        let report = simulate(&strat, config, 20, 42);
        assert_eq!(
            report.losses, 0,
            "spec-sheet MTBF with 3-way mirroring must survive 10 years"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let strat = strategy(6, 2);
        let config = ReliabilityConfig {
            blocks: 2_000,
            device_mtbf_hours: 30_000.0,
            rebuild_hours: 100.0,
            ..ReliabilityConfig::default()
        };
        let a = simulate(&strat, config, 10, 5);
        let b = simulate(&strat, config, 10, 5);
        assert_eq!(a, b);
    }
}
