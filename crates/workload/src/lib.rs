//! Workload generators, experiment scenarios and measurement utilities for
//! the ICDCS 2007 reproduction.
//!
//! The paper evaluates its strategies in a simulation environment: bins are
//! filled with blocks, per-bin usage is plotted (Figures 2 and 4), and
//! membership changes are scored by `replaced blocks / blocks on the
//! affected bin` (Figures 3 and 5). This crate packages those experiment
//! ingredients so the test suite, the examples and the benchmark harness
//! all measure the same way:
//!
//! * [`scenario`] — the exact bin configurations of the paper's
//!   experiments (8 → 10 → 12 → 10 → 8 heterogeneous bins, and the
//!   add/remove-at-the-ends adaptivity variants);
//! * [`metrics`] — per-bin load tallies, usage fractions, max relative
//!   deviation and χ²;
//! * [`movement`] — replaced-copy counting and the paper's competitive
//!   factor;
//! * [`generator`] — reproducible ball streams and Zipf request samplers;
//! * [`trace`] — synthetic mixed read/write traces with sequential runs
//!   and skewed popularity, for end-to-end replay;
//! * [`reliability`] — Monte-Carlo durability simulation (device failures
//!   and rebuilds over the *actual* placed redundancy groups).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod metrics;
pub mod movement;
pub mod reliability;
pub mod scenario;
pub mod trace;

pub use metrics::{measure_fairness, FairnessReport};
pub use movement::{measure_movement, MovementReport};
