//! Request and ball generators for workload experiments.
//!
//! Fairness in the paper covers both capacity ("x% of the data") and load
//! ("x% of the requests"). The generators here drive the request side:
//! uniform and Zipf-distributed accesses over the stored balls, produced
//! from a seeded RNG so experiments are reproducible.

use rand::{Rng, SeedableRng};

/// A reproducible stream of ball identifiers to place.
#[derive(Debug, Clone)]
pub struct BallStream {
    next: u64,
    end: u64,
}

impl BallStream {
    /// Sequential balls `start..end` (the bulk-load pattern of the paper's
    /// experiments).
    #[must_use]
    pub fn sequential(start: u64, end: u64) -> Self {
        Self { next: start, end }
    }

    /// Number of balls remaining.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.end.saturating_sub(self.next)
    }
}

impl Iterator for BallStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining()).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

/// A Zipf-distributed request sampler over `n` items.
///
/// Item ranks are assigned by a seeded permutation so that popularity is
/// not correlated with ball address (and therefore not with placement).
///
/// # Example
///
/// ```
/// use rshare_workload::generator::ZipfRequests;
///
/// let mut zipf = ZipfRequests::new(1_000, 1.1, 42);
/// let sample = zipf.sample();
/// assert!(sample < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfRequests {
    /// Cumulative probability over ranks.
    cdf: Vec<f64>,
    /// rank → item mapping.
    items: Vec<u64>,
    rng: rand::rngs::StdRng,
}

impl ZipfRequests {
    /// Creates a sampler over items `0..n` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    #[must_use]
    pub fn new(n: u64, s: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let n_usize = usize::try_from(n).expect("item count fits in memory");
        let mut weights: Vec<f64> = (1..=n_usize)
            .map(|rank| 1.0 / (rank as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Seeded Fisher-Yates permutation decouples rank from address.
        let mut items: Vec<u64> = (0..n).collect();
        for i in (1..n_usize).rev() {
            let j = rng.gen_range(0..=i);
            items.swap(i, j);
        }
        Self {
            cdf: weights,
            items,
            rng,
        }
    }

    /// Draws the next request's ball identifier.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let rank = self.cdf.partition_point(|&c| c < u);
        self.items[rank.min(self.items.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_covers_range() {
        let balls: Vec<u64> = BallStream::sequential(5, 10).collect();
        assert_eq!(balls, vec![5, 6, 7, 8, 9]);
        assert_eq!(BallStream::sequential(3, 3).count(), 0);
    }

    #[test]
    fn zipf_is_skewed_and_seeded() {
        let mut z1 = ZipfRequests::new(100, 1.2, 7);
        let mut z2 = ZipfRequests::new(100, 1.2, 7);
        let a: Vec<u64> = (0..50).map(|_| z1.sample()).collect();
        let b: Vec<u64> = (0..50).map(|_| z2.sample()).collect();
        assert_eq!(a, b, "same seed, same stream");

        // The most popular item should absorb far more than 1/100 of the
        // requests.
        let mut counts = vec![0u32; 100];
        let mut z = ZipfRequests::new(100, 1.2, 11);
        for _ in 0..20_000 {
            counts[z.sample() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 2_000, "hottest item only got {max} of 20k requests");
        // But every item id is in range (permutation intact).
        assert_eq!(counts.len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_zero_items_panics() {
        let _ = ZipfRequests::new(0, 1.0, 1);
    }
}
