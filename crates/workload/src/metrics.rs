//! Fairness metrics over empirical placement loads.

use rshare_core::PlacementStrategy;

/// Empirical load of a strategy over a ball range, with fairness measures.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// Copies placed on each bin (aligned with the strategy's
    /// [`PlacementStrategy::bin_ids`]).
    pub counts: Vec<u64>,
    /// Empirical per-ball share of each bin (`counts / balls`).
    pub shares: Vec<f64>,
    /// The strategy's fair-share targets.
    pub targets: Vec<f64>,
    /// Number of balls placed.
    pub balls: u64,
}

impl FairnessReport {
    /// Largest relative deviation `|share − target| / target` over bins
    /// with a positive target.
    #[must_use]
    pub fn max_relative_deviation(&self) -> f64 {
        self.shares
            .iter()
            .zip(&self.targets)
            .filter(|(_, t)| **t > 0.0)
            .map(|(s, t)| (s - t).abs() / t)
            .fold(0.0, f64::max)
    }

    /// Pearson χ² statistic of the observed copy counts against the
    /// expected counts `balls · target`.
    #[must_use]
    pub fn chi_square(&self) -> f64 {
        self.counts
            .iter()
            .zip(&self.targets)
            .filter(|(_, t)| **t > 0.0)
            .map(|(&c, t)| {
                let expected = self.balls as f64 * t;
                let diff = c as f64 - expected;
                diff * diff / expected
            })
            .sum()
    }

    /// Gini coefficient of the per-bin *normalised* loads
    /// (`share_i / target_i`): 0 means every bin is exactly as full,
    /// relative to its fair share, as every other — the paper's fairness
    /// in one number.
    #[must_use]
    pub fn gini(&self) -> f64 {
        let mut normalised: Vec<f64> = self
            .shares
            .iter()
            .zip(&self.targets)
            .filter(|(_, t)| **t > 0.0)
            .map(|(s, t)| s / t)
            .collect();
        if normalised.len() < 2 {
            return 0.0;
        }
        normalised.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = normalised.len() as f64;
        let sum: f64 = normalised.iter().sum();
        if sum <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = normalised
            .iter()
            .enumerate()
            .map(|(i, x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted) / (n * sum) - (n + 1.0) / n
    }

    /// Per-bin usage fraction when each bin has the given capacity: the
    /// quantity plotted in Figures 2 and 4 ("how much percent of each bin
    /// is used"). For a fair strategy all entries are (nearly) equal.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len()` differs from the bin count.
    #[must_use]
    pub fn usage_fractions(&self, capacities: &[u64]) -> Vec<f64> {
        assert_eq!(capacities.len(), self.counts.len());
        self.counts
            .iter()
            .zip(capacities)
            .map(|(&c, &cap)| c as f64 / cap as f64)
            .collect()
    }
}

/// Places balls `0..balls` with `strategy` and tallies per-bin loads.
///
/// # Example
///
/// ```
/// use rshare_core::{BinSet, RedundantShare};
/// use rshare_workload::metrics::measure_fairness;
///
/// let bins = BinSet::from_capacities([300, 200, 100]).unwrap();
/// let strat = RedundantShare::new(&bins, 2).unwrap();
/// let report = measure_fairness(&strat, 20_000);
/// assert!(report.max_relative_deviation() < 0.05);
/// ```
#[must_use]
pub fn measure_fairness(strategy: &dyn PlacementStrategy, balls: u64) -> FairnessReport {
    let ids = strategy.bin_ids();
    let mut index = std::collections::HashMap::with_capacity(ids.len());
    for (i, id) in ids.iter().enumerate() {
        index.insert(*id, i);
    }
    let mut counts = vec![0u64; ids.len()];
    let mut out = Vec::with_capacity(strategy.replication());
    for ball in 0..balls {
        strategy.place_into(ball, &mut out);
        for id in &out {
            counts[index[id]] += 1;
        }
    }
    let shares = counts.iter().map(|&c| c as f64 / balls as f64).collect();
    FairnessReport {
        counts,
        shares,
        targets: strategy.fair_shares(),
        balls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshare_core::{BinSet, RedundantShare, TrivialReplication};

    #[test]
    fn fair_strategy_has_low_deviation() {
        let bins = BinSet::from_capacities([500, 400, 300, 200]).unwrap();
        let strat = RedundantShare::new(&bins, 2).unwrap();
        let report = measure_fairness(&strat, 60_000);
        assert!(report.max_relative_deviation() < 0.03);
        // χ² for 4 bins should be moderate for a fair strategy (d.o.f. 3;
        // far below a blow-up value).
        assert!(report.chi_square() < 50.0, "chi² = {}", report.chi_square());
    }

    #[test]
    fn trivial_strategy_shows_unfairness() {
        // (2, 1, 1): the trivial baseline underfills the big bin; its
        // deviation should dwarf Redundant Share's.
        let bins = BinSet::from_capacities([2_000, 1_000, 1_000]).unwrap();
        let trivial = TrivialReplication::new(&bins, 2).unwrap();
        let fair = RedundantShare::new(&bins, 2).unwrap();
        let t = measure_fairness(&trivial, 60_000);
        let f = measure_fairness(&fair, 60_000);
        assert!(
            t.max_relative_deviation() > 5.0 * f.max_relative_deviation(),
            "trivial {} vs fair {}",
            t.max_relative_deviation(),
            f.max_relative_deviation()
        );
    }

    #[test]
    fn gini_of_fair_placement_is_tiny() {
        let bins = BinSet::from_capacities([500, 400, 300, 200]).unwrap();
        let fair = RedundantShare::new(&bins, 2).unwrap();
        let report = measure_fairness(&fair, 60_000);
        assert!(report.gini() < 0.01, "gini {}", report.gini());
        // The trivial baseline on skewed bins is measurably less equal.
        let skewed = BinSet::from_capacities([2_000, 1_000, 1_000]).unwrap();
        let trivial = TrivialReplication::new(&skewed, 2).unwrap();
        let t = measure_fairness(&trivial, 60_000);
        assert!(t.gini() > 3.0 * report.gini(), "trivial gini {}", t.gini());
    }

    #[test]
    fn usage_fractions_equal_for_fair_placement() {
        let caps = [500u64, 400, 300, 200];
        let bins = BinSet::from_capacities(caps).unwrap();
        let strat = RedundantShare::new(&bins, 2).unwrap();
        let report = measure_fairness(&strat, 70_000);
        // Note: bin_ids are sorted by descending capacity = same order.
        let usage = report.usage_fractions(&caps);
        let avg: f64 = usage.iter().sum::<f64>() / usage.len() as f64;
        for u in usage {
            assert!((u - avg).abs() / avg < 0.03);
        }
    }
}
