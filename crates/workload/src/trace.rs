//! Synthetic I/O trace generation and replay.
//!
//! The paper's experiments bulk-load blocks and measure distribution; a
//! storage system in production sees a *mixed* stream — reads and writes,
//! sequential runs, skewed popularity. [`TraceGenerator`] produces such
//! streams reproducibly, and the `trace_replay` example drives a cluster
//! with them, turning the fairness guarantees into end-to-end throughput
//! observations.

use rand::{Rng, SeedableRng};

/// One operation of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Read the block at the given logical address.
    Read {
        /// Logical block address.
        lba: u64,
    },
    /// Write the block at the given logical address.
    Write {
        /// Logical block address.
        lba: u64,
    },
}

impl TraceOp {
    /// The logical block address the operation touches.
    #[must_use]
    pub fn lba(&self) -> u64 {
        match *self {
            Self::Read { lba } | Self::Write { lba } => lba,
        }
    }

    /// `true` for read operations.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, Self::Read { .. })
    }
}

/// Configuration of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Logical address space in blocks.
    pub address_space: u64,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Mean length of sequential runs (1 = purely random access).
    pub mean_run_length: u32,
    /// Fraction of accesses directed at the hot set, in `[0, 1)`.
    pub hot_fraction: f64,
    /// Size of the hot set as a fraction of the address space, in
    /// `(0, 1]`.
    pub hot_set_fraction: f64,
}

impl Default for TraceConfig {
    /// A mixed OLTP-ish default: 70 % reads, short runs, 80/20 skew.
    fn default() -> Self {
        Self {
            address_space: 100_000,
            read_fraction: 0.7,
            mean_run_length: 4,
            hot_fraction: 0.8,
            hot_set_fraction: 0.2,
        }
    }
}

/// A reproducible synthetic trace stream.
///
/// # Example
///
/// ```
/// use rshare_workload::trace::{TraceConfig, TraceGenerator};
///
/// let mut gen = TraceGenerator::new(TraceConfig::default(), 42);
/// let ops: Vec<_> = (0..100).map(|_| gen.next_op()).collect();
/// assert!(ops.iter().any(|op| op.is_read()));
/// assert!(ops.iter().any(|op| !op.is_read()));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
    rng: rand::rngs::StdRng,
    /// Remaining operations in the current sequential run.
    run_left: u32,
    /// Next address of the current run.
    run_next: u64,
    /// Whether the current run is reads or writes.
    run_is_read: bool,
}

impl TraceGenerator {
    /// Creates a generator for `config`, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (zero address space,
    /// fractions outside `[0, 1]`, zero run length or hot set).
    #[must_use]
    pub fn new(config: TraceConfig, seed: u64) -> Self {
        assert!(config.address_space > 0, "empty address space");
        assert!(
            (0.0..=1.0).contains(&config.read_fraction),
            "read fraction out of range"
        );
        assert!(config.mean_run_length >= 1, "runs must have length >= 1");
        assert!(
            (0.0..1.0).contains(&config.hot_fraction),
            "hot fraction out of range"
        );
        assert!(
            config.hot_set_fraction > 0.0 && config.hot_set_fraction <= 1.0,
            "hot set fraction out of range"
        );
        Self {
            config,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            run_left: 0,
            run_next: 0,
            run_is_read: true,
        }
    }

    /// Produces the next trace operation.
    pub fn next_op(&mut self) -> TraceOp {
        if self.run_left == 0 {
            // Start a new run: pick its head address, length and kind.
            let hot_blocks =
                ((self.config.address_space as f64) * self.config.hot_set_fraction) as u64;
            let hot_blocks = hot_blocks.max(1);
            let base = if self.rng.gen::<f64>() < self.config.hot_fraction {
                self.rng.gen_range(0..hot_blocks)
            } else {
                self.rng.gen_range(0..self.config.address_space)
            };
            // Geometric-ish run length with the configured mean.
            let mean = f64::from(self.config.mean_run_length);
            let mut len = 1u32;
            while f64::from(len) < mean * 4.0 && self.rng.gen::<f64>() < 1.0 - 1.0 / mean {
                len += 1;
            }
            self.run_left = len;
            self.run_next = base;
            self.run_is_read = self.rng.gen::<f64>() < self.config.read_fraction;
        }
        let lba = self.run_next % self.config.address_space;
        self.run_next = self.run_next.wrapping_add(1);
        self.run_left -= 1;
        if self.run_is_read {
            TraceOp::Read { lba }
        } else {
            TraceOp::Write { lba }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let config = TraceConfig::default();
        let a: Vec<_> = TraceGenerator::new(config, 7).take(200).collect();
        let b: Vec<_> = TraceGenerator::new(config, 7).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(config, 8).take(200).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn read_fraction_respected() {
        let config = TraceConfig {
            read_fraction: 0.7,
            mean_run_length: 1,
            ..TraceConfig::default()
        };
        let ops: Vec<_> = TraceGenerator::new(config, 3).take(40_000).collect();
        let reads = ops.iter().filter(|o| o.is_read()).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn addresses_in_range_and_skewed() {
        let config = TraceConfig {
            address_space: 10_000,
            hot_fraction: 0.8,
            hot_set_fraction: 0.1,
            ..TraceConfig::default()
        };
        let ops: Vec<_> = TraceGenerator::new(config, 11).take(40_000).collect();
        let hot_cut = 1_000u64; // 10 % of the space
        let mut hot = 0usize;
        for op in &ops {
            assert!(op.lba() < 10_000);
            if op.lba() < hot_cut {
                hot += 1;
            }
        }
        let hot_frac = hot as f64 / ops.len() as f64;
        // ~80 % hot + ~10 % of the cold draws landing in the hot range.
        assert!(hot_frac > 0.7, "hot share {hot_frac}");
    }

    #[test]
    fn sequential_runs_present() {
        let config = TraceConfig {
            mean_run_length: 8,
            ..TraceConfig::default()
        };
        let ops: Vec<_> = TraceGenerator::new(config, 5).take(10_000).collect();
        let sequential_pairs = ops
            .windows(2)
            .filter(|w| w[1].lba() == w[0].lba() + 1)
            .count();
        // With mean run length 8, most consecutive pairs are sequential.
        let frac = sequential_pairs as f64 / (ops.len() - 1) as f64;
        assert!(frac > 0.6, "sequential fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "empty address space")]
    fn zero_space_rejected() {
        let config = TraceConfig {
            address_space: 0,
            ..TraceConfig::default()
        };
        let _ = TraceGenerator::new(config, 1);
    }
}
