//! Movement accounting for adaptivity experiments (Figures 3 and 5).
//!
//! A copy is *replaced* when its computed location under the new
//! configuration differs from its location under the old one; the paper
//! counts these per copy index (copy identity is stable, so "the i-th copy
//! of block x" is well defined on both sides). The competitive factor
//! reported in Figures 3 and 5 is `replaced / used`, where `used` is the
//! number of copies on the affected (added or removed) bin.

use rshare_core::{BinId, PlacementStrategy};

/// Result of comparing two placement configurations over a ball range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovementReport {
    /// Balls examined.
    pub balls: u64,
    /// Total copies examined (`balls × k`).
    pub total_copies: u64,
    /// Copies whose location changed.
    pub replaced: u64,
    /// Copies located on the affected bin (in the configuration that
    /// contains it).
    pub used_on_affected: u64,
}

impl MovementReport {
    /// The paper's competitive factor: replaced blocks divided by the
    /// blocks used on the affected bin.
    #[must_use]
    pub fn factor(&self) -> f64 {
        if self.used_on_affected == 0 {
            0.0
        } else {
            self.replaced as f64 / self.used_on_affected as f64
        }
    }

    /// Fraction of all copies that moved.
    #[must_use]
    pub fn replaced_fraction(&self) -> f64 {
        if self.total_copies == 0 {
            0.0
        } else {
            self.replaced as f64 / self.total_copies as f64
        }
    }
}

/// Measures movement between two configurations of the same strategy
/// family over balls `0..balls`.
///
/// `affected` is the bin that was added (present only in `after`) or
/// removed (present only in `before`); copies on it are counted in
/// whichever configuration contains it.
///
/// # Panics
///
/// Panics if the two strategies disagree on the replication degree.
///
/// # Example
///
/// ```
/// use rshare_core::{Bin, BinSet, RedundantShare};
/// use rshare_workload::movement::measure_movement;
///
/// let before = BinSet::from_capacities([100, 100, 100, 100]).unwrap();
/// let after = before.with_bin(Bin::new(99u64, 100).unwrap()).unwrap();
/// let a = RedundantShare::new(&before, 2).unwrap();
/// let b = RedundantShare::new(&after, 2).unwrap();
/// let report = measure_movement(&a, &b, 99u64.into(), 20_000);
/// assert!(report.factor() < 4.0); // Lemma 3.2's band
/// ```
#[must_use]
pub fn measure_movement(
    before: &dyn PlacementStrategy,
    after: &dyn PlacementStrategy,
    affected: BinId,
    balls: u64,
) -> MovementReport {
    assert_eq!(
        before.replication(),
        after.replication(),
        "configurations must share the replication degree"
    );
    let k = before.replication();
    let affected_in_after = after.bin_ids().contains(&affected);
    let mut replaced = 0u64;
    let mut used = 0u64;
    let (mut va, mut vb) = (Vec::with_capacity(k), Vec::with_capacity(k));
    for ball in 0..balls {
        before.place_into(ball, &mut va);
        after.place_into(ball, &mut vb);
        for (x, y) in va.iter().zip(&vb) {
            if x != y {
                replaced += 1;
            }
            let on_affected = if affected_in_after { y } else { x };
            if *on_affected == affected {
                used += 1;
            }
        }
    }
    MovementReport {
        balls,
        total_copies: balls * k as u64,
        replaced,
        used_on_affected: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{adaptivity_pair, heterogeneous_bins, homogeneous_bins, ChangeKind};
    use rshare_core::RedundantShare;

    fn factor(kind: ChangeKind, homogeneous: bool, k: usize) -> f64 {
        let base = if homogeneous {
            homogeneous_bins(8)
        } else {
            heterogeneous_bins(8)
        };
        let (before, after, affected) = adaptivity_pair(&base, kind);
        let a = RedundantShare::new(&before, k).unwrap();
        let b = RedundantShare::new(&after, k).unwrap();
        measure_movement(&a, &b, affected, 30_000).factor()
    }

    #[test]
    fn identical_configurations_move_nothing() {
        let bins = heterogeneous_bins(6);
        let a = RedundantShare::new(&bins, 2).unwrap();
        let b = RedundantShare::new(&bins, 2).unwrap();
        let r = measure_movement(&a, &b, rshare_core::BinId(1_000), 5_000);
        assert_eq!(r.replaced, 0);
        assert!(r.used_on_affected > 0);
    }

    #[test]
    fn add_biggest_is_cheap_for_linmirror() {
        // Paper: ≈1.5 for changing the biggest bin.
        let f = factor(ChangeKind::AddBiggest, false, 2);
        assert!((1.0..2.4).contains(&f), "factor {f}");
    }

    #[test]
    fn add_smallest_is_more_expensive() {
        // Paper: ≈2.5 for changing the smallest bin — still within the
        // Lemma 3.2 bound of 4.
        let f = factor(ChangeKind::AddSmallest, false, 2);
        assert!(f > 1.3 && f < 4.5, "factor {f}");
    }

    #[test]
    fn k2_factors_within_lemma_bound() {
        for kind in ChangeKind::ALL {
            for homogeneous in [false, true] {
                let f = factor(kind, homogeneous, 2);
                assert!(
                    f < 4.5,
                    "kind {:?} hom={homogeneous}: factor {f} exceeds Lemma 3.2 band",
                    kind
                );
            }
        }
    }

    #[test]
    fn k4_factors_below_k_squared() {
        // Lemma 3.5 bound is k² = 16; Figure 5 suggests far less.
        for kind in [ChangeKind::AddBiggest, ChangeKind::AddSmallest] {
            let f = factor(kind, true, 4);
            assert!(f < 16.0, "kind {:?}: factor {f}", kind);
        }
    }
}
