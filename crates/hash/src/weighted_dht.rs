//! Weighted distributed hash tables: the linear and logarithmic methods
//! (Schindelhauer & Schomaker, SPAA 2005).
//!
//! Reference \[11\] of the paper proposes two geometric single-copy schemes
//! for heterogeneous capacities, both of the form "hash ball and bins onto
//! the unit ring, assign the ball to the bin minimising a weighted
//! distance":
//!
//! * **linear method** — distance `d(ball, bin) / w_bin` with `d` the
//!   clockwise ring distance. Even in expectation over the (hashed) bin
//!   positions, the winner distribution of scaled uniforms is *not*
//!   proportional to the weights — the distortion reference \[11\]
//!   quantifies.
//! * **logarithmic method** — distance `−ln(1 − d(ball, bin)) / w_bin`.
//!   Over the randomness of the bin positions the transformed distances
//!   are independent exponentials with rates `w_i`, whose minimum falls on
//!   bin `i` with probability exactly `w_i / Σ w_j` (the same engine as
//!   weighted rendezvous hashing, but compatible with ring routing).
//!
//! For any *fixed* set of bin positions the realised shares deviate from
//! expectation — the classic consistent-hashing concentration problem —
//! so both methods support multiple ring points per bin
//! ([`LinearMethod::with_points`]): the score is the minimum over the
//! bin's points, which concentrates the per-instance shares around the
//! expected ones (and leaves the logarithmic method's expectation exact,
//! since the minimum of `v` exponentials of rate `w` is exponential of
//! rate `v·w`).
//!
//! Both are stateless [`SingleCopySelector`]s here, used as ablation
//! points for the `placeOneCopy` subroutine.

use crate::mix::{stable_hash2, stable_hash3, unit_f64};
use crate::selector::SingleCopySelector;

const RING_POS_DOMAIN: u64 = 0x5744_4854; // "WDHT"
const BALL_POS_DOMAIN: u64 = 0x5744_4254; // "WDBT"

/// Clockwise distance from the ball's ring position to point `j` of the
/// bin `name`, in `[0, 1)`.
fn ring_distance(key: u64, name: u64, point: u32) -> f64 {
    let ball = stable_hash2(key, BALL_POS_DOMAIN);
    let bin = stable_hash3(name, u64::from(point), RING_POS_DOMAIN);
    unit_f64(bin.wrapping_sub(ball))
}

macro_rules! weighted_dht_method {
    ($(#[$meta:meta])* $name:ident, $transform:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            points: u32,
        }

        impl Default for $name {
            fn default() -> Self {
                Self { points: 1 }
            }
        }

        impl $name {
            /// Creates the selector with a single ring point per bin (the
            /// form analysed in reference \[11\]).
            #[must_use]
            pub fn new() -> Self {
                Self::default()
            }

            /// Creates the selector with `points ≥ 1` ring points per bin;
            /// more points concentrate per-instance shares around the
            /// expected distribution.
            #[must_use]
            pub fn with_points(points: u32) -> Self {
                Self {
                    points: points.max(1),
                }
            }

            /// The configured number of ring points per bin.
            #[must_use]
            pub fn points(&self) -> u32 {
                self.points
            }

            fn score(&self, key: u64, name: u64, weight: f64) -> f64 {
                let mut best = f64::INFINITY;
                for j in 0..self.points {
                    let d = ring_distance(key, name, j);
                    let transformed = $transform(d);
                    let s = transformed / weight;
                    if s < best {
                        best = s;
                    }
                }
                best
            }
        }

        impl SingleCopySelector for $name {
            fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize {
                self.select_with_head(
                    key,
                    names,
                    weights,
                    *weights.first().expect("empty bin set"),
                )
            }

            fn select_with_head(
                &self,
                key: u64,
                names: &[u64],
                weights: &[f64],
                head_weight: f64,
            ) -> usize {
                assert!(!names.is_empty(), "cannot select from an empty bin set");
                assert_eq!(names.len(), weights.len());
                let mut best = 0usize;
                let mut best_score = f64::INFINITY;
                for (i, &name) in names.iter().enumerate() {
                    let w = if i == 0 { head_weight } else { weights[i] };
                    if w <= 0.0 {
                        continue;
                    }
                    let s = self.score(key, name, w);
                    if s < best_score {
                        best = i;
                        best_score = s;
                    }
                }
                best
            }
        }
    };
}

weighted_dht_method!(
    /// The linear method: minimise `ring distance / weight`.
    ///
    /// # Example
    ///
    /// ```
    /// use rshare_hash::{LinearMethod, SingleCopySelector};
    ///
    /// let sel = LinearMethod::with_points(32);
    /// assert!(sel.select(42, &[1, 2, 3], &[1.0, 2.0, 3.0]) < 3);
    /// ```
    LinearMethod,
    |d: f64| d
);

weighted_dht_method!(
    /// The logarithmic method: minimise `−ln(1 − ring distance) / weight`.
    ///
    /// Exactly fair in expectation over the bin-position hashing.
    ///
    /// # Example
    ///
    /// ```
    /// use rshare_hash::{LogarithmicMethod, SingleCopySelector};
    ///
    /// let sel = LogarithmicMethod::with_points(32);
    /// assert!(sel.select(42, &[1, 2, 3], &[1.0, 2.0, 3.0]) < 3);
    /// ```
    LogarithmicMethod,
    |d: f64| -(1.0f64 - d).max(f64::MIN_POSITIVE).ln()
);

#[cfg(test)]
mod tests {
    use super::*;

    fn shares<S: SingleCopySelector>(
        sel: &S,
        names: &[u64],
        weights: &[f64],
        balls: u64,
    ) -> Vec<f64> {
        let mut counts = vec![0u64; weights.len()];
        for ball in 0..balls {
            counts[sel.select(ball, names, weights)] += 1;
        }
        counts.iter().map(|&c| c as f64 / balls as f64).collect()
    }

    /// Average shares over many independent bin-name sets: the expectation
    /// over the position hashing.
    fn expected_shares<S: SingleCopySelector>(
        sel: &S,
        weights: &[f64],
        sets: u64,
        balls: u64,
    ) -> Vec<f64> {
        let mut acc = vec![0.0; weights.len()];
        for set in 0..sets {
            let names: Vec<u64> = (0..weights.len() as u64)
                .map(|i| crate::mix::stable_hash2(set, i))
                .collect();
            for (a, s) in acc.iter_mut().zip(shares(sel, &names, weights, balls)) {
                *a += s;
            }
        }
        acc.iter_mut().for_each(|a| *a /= sets as f64);
        acc
    }

    #[test]
    fn logarithmic_fair_with_many_points() {
        let weights = [4.0, 2.0, 1.0, 1.0];
        let names = [101u64, 102, 103, 104];
        let total: f64 = weights.iter().sum();
        let got = shares(
            &LogarithmicMethod::with_points(256),
            &names,
            &weights,
            40_000,
        );
        for (i, (g, w)) in got.iter().zip(&weights).enumerate() {
            let want = w / total;
            // Residual per-instance variance shrinks like 1/√points; 256
            // points leaves a band of roughly ±12 % on the small bins.
            assert!(
                (g - want).abs() / want < 0.15,
                "bin {i}: got {g:.4} want {want:.4}"
            );
        }
    }

    #[test]
    fn logarithmic_exact_in_expectation_single_point() {
        let weights = [3.0, 1.0];
        let got = expected_shares(&LogarithmicMethod::new(), &weights, 60, 4_000);
        assert!((got[0] - 0.75).abs() < 0.02, "expected share {:.4}", got[0]);
    }

    #[test]
    fn linear_biased_in_expectation_single_point() {
        // The linear method's documented distortion: for weights (3, 1),
        // P[heavy wins] = ∫ P[d1/3 < d2] = E[min(3 d2, 1)]…  < 3/4 exact?
        // Analytically P[heavy] = 1 − E[d1/3 ≥ d2] = 1 − 1/6 = 5/6 ≈ 0.833,
        // not 0.75 — strictly above the fair share.
        let weights = [3.0, 1.0];
        let lin = expected_shares(&LinearMethod::new(), &weights, 60, 4_000);
        assert!(
            lin[0] > 0.80,
            "linear method should over-serve the heavy bin: {:.4}",
            lin[0]
        );
        let log = expected_shares(&LogarithmicMethod::new(), &weights, 60, 4_000);
        assert!(
            (log[0] - 0.75).abs() < (lin[0] - 0.75).abs(),
            "log {:.4} should beat linear {:.4}",
            log[0],
            lin[0]
        );
    }

    #[test]
    fn more_points_concentrate_shares() {
        // With one point per bin the realised shares scatter; with many
        // they concentrate near the target.
        let weights = [1.0; 8];
        let names: Vec<u64> = (0..8u64).map(|i| 7_000 + i).collect();
        let spread = |points: u32| {
            let got = shares(
                &LogarithmicMethod::with_points(points),
                &names,
                &weights,
                30_000,
            );
            got.iter()
                .map(|g| (g - 0.125f64).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = spread(1);
        let fine = spread(128);
        assert!(
            fine < coarse / 2.0,
            "128 points (dev {fine:.4}) should beat 1 point (dev {coarse:.4})"
        );
    }

    #[test]
    fn deterministic_and_in_range() {
        let names = [5u64, 6, 7];
        let weights = [1.0, 2.0, 3.0];
        for ball in 0..300u64 {
            let a = LinearMethod::with_points(4).select(ball, &names, &weights);
            let b = LogarithmicMethod::with_points(4).select(ball, &names, &weights);
            assert!(a < 3 && b < 3);
            assert_eq!(
                a,
                LinearMethod::with_points(4).select(ball, &names, &weights)
            );
            assert_eq!(
                b,
                LogarithmicMethod::with_points(4).select(ball, &names, &weights)
            );
        }
    }

    #[test]
    fn removal_moves_only_owned_balls() {
        // Scores are per-bin: removing a bin cannot change the relative
        // order of the survivors.
        let sel = LogarithmicMethod::with_points(8);
        let names = [1u64, 2, 3, 4];
        let weights = [1.0, 2.0, 3.0, 4.0];
        for ball in 0..5_000u64 {
            let full = sel.select(ball, &names, &weights);
            if full == 0 {
                continue;
            }
            let sub = sel.select(ball, &names[1..], &weights[1..]);
            assert_eq!(sub, full - 1, "survivor placement changed for {ball}");
        }
    }
}
