//! Stable hashing primitives and fair single-copy distribution strategies.
//!
//! This crate is the bottom substrate of the *Redundant Share* reproduction
//! (Brinkmann, Effert, Meyer auf der Heide, Scheideler: *Dynamic and Redundant
//! Data Placement*, ICDCS 2007). The placement algorithms of the paper are
//! parameterised over two building blocks that live here:
//!
//! 1. **Stable pseudo-random values.** Every placement decision of the paper
//!    is driven by `Random value(address, bin)` — a value that depends *only*
//!    on the data block's address and the bin's (device's) stable name, never
//!    on the current number of bins. This is what makes the strategies
//!    adaptive: inserting or removing a bin does not change the random values
//!    observed by unrelated bins (used in the proof of Lemma 3.2). The
//!    [`mix`] module provides such stateless, reproducible hash functions.
//!
//! 2. **Fair single-copy strategies** (`placeOneCopy` in the paper): schemes
//!    that distribute *one* copy per ball over heterogeneous bins in
//!    proportion to arbitrary weights. The paper cites consistent hashing
//!    (Karger et al.) and Share (Brinkmann et al.) as candidates; we provide
//!    both plus weighted rendezvous hashing, which is perfectly fair in
//!    expectation and minimally adaptive and therefore used as the default.
//!
//! The trait connecting the two worlds is [`SingleCopySelector`].
//!
//! # Example
//!
//! ```
//! use rshare_hash::{Rendezvous, SingleCopySelector};
//!
//! let names = [10u64, 11, 12];
//! let weights = [2.0, 1.0, 1.0];
//! let sel = Rendezvous::new();
//! let idx = sel.select(0xfeed_beef, &names, &weights);
//! assert!(idx < names.len());
//! // Deterministic: same inputs, same decision.
//! assert_eq!(idx, sel.select(0xfeed_beef, &names, &weights));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod cdf;
pub mod consistent;
pub mod mix;
pub mod rendezvous;
pub mod share;
pub mod sieve;
pub mod weighted_dht;

mod selector;

pub use alias::AliasTable;
pub use cdf::CdfTable;
pub use consistent::{ConsistentRing, StatelessConsistent};
pub use mix::{splitmix64, stable_hash2, stable_hash3, unit_f64, unit_open_f64};
pub use rendezvous::Rendezvous;
pub use selector::SingleCopySelector;
pub use share::{Share, ShareError};
pub use sieve::Sieve;
pub use weighted_dht::{LinearMethod, LogarithmicMethod};
