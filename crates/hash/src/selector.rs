//! The interface between the replication layer and fair k = 1 strategies.

/// A fair single-copy distribution strategy (`placeOneCopy` in the paper).
///
/// Implementors map a ball (identified by a 64-bit `key`) to exactly one of
/// `n` bins so that, over many balls, bin `i` receives a share of the balls
/// proportional to `weights[i]`. The paper's Redundant Share strategies
/// (Algorithms 2 and 4) delegate the placement of the *last* copy of every
/// redundancy group to such a strategy; any fair scheme works, and the
/// quality of the overall placement (exactness of fairness, adaptivity) is
/// inherited from the chosen implementation.
///
/// # Contract
///
/// * **Determinism.** The same `(key, names, weights)` triple must always
///   produce the same selection.
/// * **Name-based hashing.** Randomness must be derived from `names[i]`
///   (the stable bin identifier), never from the index `i`, so that slicing
///   a suffix of the bin list — as the replication scan does — does not
///   change decisions about the surviving bins.
/// * **Fairness.** `P[select = i]` must equal (exactly or approximately,
///   depending on the scheme) `weights[i] / Σ weights`.
///
/// # Panics
///
/// Implementations may panic if `names` is empty, if
/// `names.len() != weights.len()`, or if any weight is negative or non-finite.
pub trait SingleCopySelector {
    /// Selects one bin index in `0..names.len()` for `key`.
    ///
    /// `weights[i]` is the (not necessarily normalised) demand of the bin
    /// named `names[i]`.
    fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize;

    /// Selects one bin with the head bin's weight overridden.
    ///
    /// The replication algorithms occasionally need to *favour* the first
    /// bin of a suffix beyond its proportional share (the `b̂` adjustment of
    /// Algorithm 3 / Equations 2–5 in the paper). `head_weight` replaces
    /// `weights[0]` for this single decision; all other weights are used
    /// unchanged.
    ///
    /// The default implementation is correct for any stateless selector.
    fn select_with_head(
        &self,
        key: u64,
        names: &[u64],
        weights: &[f64],
        head_weight: f64,
    ) -> usize {
        if weights.is_empty() || head_weight == weights[0] {
            return self.select(key, names, weights);
        }
        // Fallback: materialise the adjusted weight vector. Concrete
        // selectors override this to avoid the allocation.
        let mut adjusted = weights.to_vec();
        adjusted[0] = head_weight;
        self.select(key, names, &adjusted)
    }

    /// Approximate memory footprint of the selector state in bytes, so
    /// strategies can report their *compactness* (the paper's criterion)
    /// including the `placeOneCopy` stage. The default covers stateless
    /// selectors; implementations owning heap state (rings, tables) must
    /// override it to count that state.
    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

impl<T: SingleCopySelector + ?Sized> SingleCopySelector for &T {
    fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize {
        (**self).select(key, names, weights)
    }

    fn select_with_head(
        &self,
        key: u64,
        names: &[u64],
        weights: &[f64],
        head_weight: f64,
    ) -> usize {
        (**self).select_with_head(key, names, weights, head_weight)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}
