//! The Share strategy (Brinkmann, Salzwedel, Scheideler; SPAA 2002).
//!
//! Share reduces the *non-uniform* balls-into-bins problem to the uniform
//! one: every bin claims an interval of the unit ring starting at a hashed
//! position with length `s · c_i` (stretch factor `s`, relative weight
//! `c_i`); a ball hashed to a point `u` considers all bins whose interval
//! covers `u` and picks one of them with a uniform strategy. With
//! `s = Θ(log N)` every point is covered with high probability and each bin
//! receives its fair share up to a `(1 ± ε)` factor.
//!
//! The paper under reproduction cites Share as one of the fair k = 1
//! strategies usable as `placeOneCopy`; this implementation exists to run
//! that ablation (see `table_placeonecopy_ablation`).

use crate::mix::{stable_hash2, stable_hash3, unit_f64, unit_open_f64};
use crate::selector::SingleCopySelector;

const START_DOMAIN: u64 = 0x5348_4152; // "SHAR"
const POINT_DOMAIN: u64 = 0x53_50_54; // "SPT"
const UNIFORM_DOMAIN: u64 = 0x53_554E; // "SUN"

/// Error returned by [`Share::new`] for an invalid stretch factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareError;

impl std::fmt::Display for ShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stretch factor must be finite and >= 1")
    }
}

impl std::error::Error for ShareError {}

/// The Share distributor: interval stretching plus a uniform sub-strategy.
///
/// Fairness is approximate (within a few percent for the default stretch);
/// the crate-default [`crate::Rendezvous`] should be preferred when exact
/// expected fairness matters.
///
/// # Example
///
/// ```
/// use rshare_hash::{Share, SingleCopySelector};
///
/// let share = Share::new(8.0).unwrap();
/// let idx = share.select(99, &[1, 2, 3], &[1.0, 2.0, 3.0]);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Share {
    stretch: f64,
}

impl Share {
    /// Creates a Share selector with the given stretch factor `s >= 1`.
    ///
    /// The SPAA 2002 analysis uses `s = Θ(log N)`; stretch 6–10 is plenty
    /// for the system sizes of the ICDCS 2007 experiments.
    ///
    /// # Errors
    ///
    /// Returns [`ShareError`] if `stretch` is not finite or is below 1.
    pub fn new(stretch: f64) -> Result<Self, ShareError> {
        if !stretch.is_finite() || stretch < 1.0 {
            return Err(ShareError);
        }
        Ok(Self { stretch })
    }

    /// The configured stretch factor.
    #[must_use]
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// `true` if bin `name` with relative weight `rel` covers ring point `u`.
    fn covers(&self, name: u64, rel: f64, u: f64) -> bool {
        let len = (self.stretch * rel).min(1.0);
        if len >= 1.0 {
            return true;
        }
        let start = unit_f64(stable_hash2(name, START_DOMAIN));
        let end = start + len;
        if end <= 1.0 {
            u >= start && u < end
        } else {
            u >= start || u < end - 1.0
        }
    }
}

impl SingleCopySelector for Share {
    fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize {
        self.select_with_head(
            key,
            names,
            weights,
            *weights.first().expect("empty bin set"),
        )
    }

    fn select_with_head(
        &self,
        key: u64,
        names: &[u64],
        weights: &[f64],
        head_weight: f64,
    ) -> usize {
        assert!(!names.is_empty(), "cannot select from an empty bin set");
        assert_eq!(names.len(), weights.len());
        let total: f64 = head_weight + weights.iter().skip(1).sum::<f64>();
        assert!(total > 0.0, "total weight must be positive");
        let u = unit_f64(stable_hash2(key, POINT_DOMAIN));
        // Uniform sub-strategy among covering bins: unweighted rendezvous
        // (minimum exponential score with rate 1).
        let mut best: Option<(usize, f64)> = None;
        for (i, &name) in names.iter().enumerate() {
            let w = if i == 0 { head_weight } else { weights[i] };
            if w <= 0.0 || !self.covers(name, w / total, u) {
                continue;
            }
            let score = -unit_open_f64(stable_hash3(key, name, UNIFORM_DOMAIN)).ln();
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((i, score));
            }
        }
        if let Some((i, _)) = best {
            return i;
        }
        // With stretch >= 1 an uncovered point is rare but possible; fall
        // back to a weighted rendezvous decision so fairness degrades
        // gracefully instead of panicking.
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, &name) in names.iter().enumerate() {
            let w = if i == 0 { head_weight } else { weights[i] };
            if w <= 0.0 {
                continue;
            }
            let score = -unit_open_f64(stable_hash3(key, name, UNIFORM_DOMAIN ^ 1)).ln() / w;
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_validation() {
        assert!(Share::new(0.5).is_err());
        assert!(Share::new(f64::NAN).is_err());
        assert!(Share::new(f64::INFINITY).is_err());
        assert_eq!(Share::new(6.0).unwrap().stretch(), 6.0);
    }

    #[test]
    fn fairness_approximate() {
        let share = Share::new(8.0).unwrap();
        let names: Vec<u64> = (0..8).collect();
        let weights: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.5).collect();
        let total: f64 = weights.iter().sum();
        let n = 60_000u64;
        let mut counts = vec![0u32; names.len()];
        for ball in 0..n {
            counts[share.select(ball, &names, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = f64::from(c) / n as f64;
            let want = weights[i] / total;
            assert!(
                (got - want).abs() < 0.05,
                "bin {i}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let share = Share::new(6.0).unwrap();
        let names = [3u64, 1, 4, 1_5];
        let weights = [1.0, 2.0, 3.0, 4.0];
        for ball in 0..500u64 {
            assert_eq!(
                share.select(ball, &names, &weights),
                share.select(ball, &names, &weights)
            );
        }
    }

    #[test]
    fn single_bin_always_selected() {
        let share = Share::new(4.0).unwrap();
        for ball in 0..200u64 {
            assert_eq!(share.select(ball, &[42], &[1.0]), 0);
        }
    }

    #[test]
    fn suffix_stability_of_names() {
        // Decisions must depend on names, not positions: a bin that wins in
        // a larger list should usually still win in a suffix containing it.
        let share = Share::new(8.0).unwrap();
        let names = [1u64, 2, 3, 4];
        let weights = [1.0, 1.0, 1.0, 1.0];
        let mut stable = 0u32;
        let mut applicable = 0u32;
        for ball in 0..5_000u64 {
            let full = share.select(ball, &names, &weights);
            if full >= 1 {
                applicable += 1;
                let sub = share.select(ball, &names[1..], &weights[1..]);
                if sub == full - 1 {
                    stable += 1;
                }
            }
        }
        // Removing one bin should leave the vast majority of survivor
        // placements unchanged.
        assert!(f64::from(stable) / f64::from(applicable) > 0.9);
    }
}
