//! Inverse-CDF tables for migration-stable weighted sampling.
//!
//! [`AliasTable`](crate::AliasTable) answers a weighted draw in O(1), but
//! the Walker/Vose column/alias layout is discontinuous in the weights: a
//! tiny perturbation can reshuffle which hash values land on which
//! outcome, so two tables over *almost* the same distribution disagree on
//! a large fraction of keys. That is fatal for placement adaptivity,
//! where the whole point is that a small capacity change should remap a
//! small fraction of balls.
//!
//! An inverse-CDF table draws by binary-searching the cumulative weight
//! sums with a single uniform derived from the hash. The draw is monotone
//! in the cumulative distribution, so for a fixed key the outcome changes
//! only when its uniform falls inside a *shifted boundary region*: across
//! all keys, the disagreement fraction between two tables equals the
//! total-variation distance between their distributions — the provable
//! minimum any coupling can achieve. Sampling costs O(log n) instead of
//! O(1); for placement transitions over at most a few hundred bins that
//! is a handful of well-predicted probes.

use crate::alias::AliasError;
use crate::mix::unit_f64;

/// An immutable inverse-CDF sampler over `n` outcomes with fixed weights.
///
/// Construction is `O(n)`; sampling is `O(log n)`. Two tables over nearby
/// distributions agree on all but a total-variation-sized fraction of
/// keys, which makes this the right structure when sampled assignments
/// must stay stable under weight perturbation.
///
/// # Example
///
/// ```
/// use rshare_hash::{stable_hash2, CdfTable};
///
/// let table = CdfTable::new(&[3.0, 1.0]).unwrap();
/// let n = 40_000u64;
/// let hits = (0..n)
///     .filter(|&i| table.sample_hash(stable_hash2(i, 7)) == 0)
///     .count();
/// let share = hits as f64 / n as f64;
/// assert!((share - 0.75).abs() < 0.02, "share = {share}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CdfTable {
    /// `cdf[i]` is the sum of weights `0..=i`; `cdf[n - 1]` is the total.
    cdf: Vec<f64>,
    /// Guide table (Devroye's table method): `guide[b]` is the first
    /// outcome whose cumulative weight exceeds `b · total / guide.len()`,
    /// so a draw starts its scan at the right bucket and finishes in O(1)
    /// expected steps. Purely an accelerator — the sampled function is
    /// identical to the plain binary search.
    guide: Vec<u32>,
}

impl CdfTable {
    /// Builds an inverse-CDF table from non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`AliasError`] (the shared weight-validation error) if
    /// `weights` is empty, contains a negative or non-finite value, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        if weights.is_empty() {
            return Err(AliasError::Empty);
        }
        if let Some(index) = weights.iter().position(|w| !w.is_finite() || *w < 0.0) {
            return Err(AliasError::InvalidWeight { index });
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut sum = 0.0;
        for &w in weights {
            sum += w;
            cdf.push(sum);
        }
        if sum <= 0.0 {
            return Err(AliasError::ZeroTotal);
        }
        let buckets = weights.len();
        let mut guide = Vec::with_capacity(buckets);
        let mut j = 0u32;
        for b in 0..buckets {
            let threshold = b as f64 * sum / buckets as f64;
            while cdf[j as usize] <= threshold {
                j += 1;
            }
            guide.push(j);
        }
        Ok(Self { cdf, guide })
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the table has no outcomes (never constructible; kept for
    /// API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Approximate heap memory of the table in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.cdf.len() * std::mem::size_of::<f64>() + self.guide.len() * std::mem::size_of::<u32>()
    }

    /// Samples an outcome from a uniform value in `[0, 1)`.
    ///
    /// Returns the first outcome whose cumulative weight exceeds
    /// `u · total`, so a zero-weight outcome is never selected.
    #[inline]
    #[must_use]
    pub fn sample(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        let n = self.cdf.len();
        let target = u * self.cdf[n - 1];
        let bucket = ((u * self.guide.len() as f64) as usize).min(self.guide.len() - 1);
        let mut idx = self.guide[bucket] as usize;
        while idx < n - 1 && self.cdf[idx] <= target {
            idx += 1;
        }
        idx
    }

    /// Samples an outcome from a single 64-bit hash value.
    ///
    /// The caller supplies a well-mixed value (e.g. from
    /// [`crate::stable_hash3`]); the same hash always draws the same
    /// outcome, and nearby tables draw the same outcome for all but a
    /// total-variation-sized fraction of hashes.
    #[inline]
    #[must_use]
    pub fn sample_hash(&self, hash: u64) -> usize {
        self.sample(unit_f64(hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::stable_hash2;

    fn empirical(weights: &[f64], samples: u64) -> Vec<f64> {
        let t = CdfTable::new(weights).unwrap();
        let mut counts = vec![0u64; weights.len()];
        for i in 0..samples {
            counts[t.sample_hash(stable_hash2(i, 0x1234))] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    fn matches_weights_uniform() {
        let shares = empirical(&[1.0, 1.0, 1.0, 1.0], 80_000);
        for s in shares {
            assert!((s - 0.25).abs() < 0.01, "{s}");
        }
    }

    #[test]
    fn matches_weights_skewed() {
        let shares = empirical(&[8.0, 4.0, 2.0, 1.0, 1.0], 160_000);
        let expect = [0.5, 0.25, 0.125, 0.0625, 0.0625];
        for (s, e) in shares.iter().zip(expect) {
            assert!((s - e).abs() < 0.01, "share {s} vs expected {e}");
        }
    }

    #[test]
    fn single_outcome() {
        let t = CdfTable::new(&[5.0]).unwrap();
        for i in 0..100u64 {
            assert_eq!(t.sample_hash(stable_hash2(i, 3)), 0);
        }
    }

    #[test]
    fn zero_weight_outcome_unreachable() {
        let t = CdfTable::new(&[1.0, 0.0, 1.0]).unwrap();
        for i in 0..20_000u64 {
            assert_ne!(t.sample_hash(stable_hash2(i, 7)), 1);
        }
    }

    #[test]
    fn errors() {
        assert_eq!(CdfTable::new(&[]), Err(AliasError::Empty));
        assert_eq!(
            CdfTable::new(&[1.0, -1.0]),
            Err(AliasError::InvalidWeight { index: 1 })
        );
        assert_eq!(
            CdfTable::new(&[1.0, f64::NAN]),
            Err(AliasError::InvalidWeight { index: 1 })
        );
        assert_eq!(CdfTable::new(&[0.0, 0.0]), Err(AliasError::ZeroTotal));
    }

    /// The property alias tables lack: perturbing one weight remaps only
    /// a distribution-distance-sized fraction of keys.
    #[test]
    fn stable_under_weight_perturbation() {
        let old = CdfTable::new(&[10.0, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0]).unwrap();
        let new = CdfTable::new(&[10.0, 9.0, 8.5, 7.0, 6.0, 5.0, 4.0, 3.0]).unwrap();
        let samples = 100_000u64;
        let moved = (0..samples)
            .filter(|&i| {
                let h = stable_hash2(i, 42);
                old.sample_hash(h) != new.sample_hash(h)
            })
            .count();
        // Total-variation distance between the two distributions is ~1.6%;
        // leave headroom for sampling noise but stay far below the ~50%+
        // an alias-table rebuild scrambles.
        let frac = moved as f64 / samples as f64;
        assert!(frac < 0.04, "remapped fraction {frac}");
    }

    /// Inserting an outcome mid-list remaps roughly its fair share of
    /// keys, not the whole tail of the list.
    #[test]
    fn stable_under_outcome_insertion() {
        let old = CdfTable::new(&[10.0, 8.0, 6.0, 4.0, 2.0]).unwrap();
        let new = CdfTable::new(&[10.0, 8.0, 7.0, 6.0, 4.0, 2.0]).unwrap();
        let samples = 100_000u64;
        let mut to_new = 0u64;
        let mut shuffled = 0u64;
        for i in 0..samples {
            let h = stable_hash2(i, 99);
            let a = old.sample_hash(h);
            let b = new.sample_hash(h);
            // Outcomes at or after the insertion point shift by one index.
            let a_shifted = if a >= 2 { a + 1 } else { a };
            if b == 2 {
                to_new += 1;
            } else if b != a_shifted {
                shuffled += 1;
            }
        }
        let to_new = to_new as f64 / samples as f64;
        let shuffled = shuffled as f64 / samples as f64;
        // The new outcome drains exactly its fair share (7/37 ≈ 18.9%)…
        assert!((to_new - 7.0 / 37.0).abs() < 0.01, "inflow {to_new}");
        // …and renormalisation shuffles only a boundary-shift-sized
        // fraction between survivors, keeping the total remap within 2×
        // the fair minimum (an alias-table rebuild scrambles ~everything).
        assert!(shuffled < 0.15, "collateral shuffle {shuffled}");
        assert!(
            to_new + shuffled < 2.0 * (7.0 / 37.0),
            "total remap {} above 2x the fair share",
            to_new + shuffled
        );
    }
}
