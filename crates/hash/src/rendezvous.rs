//! Weighted rendezvous (highest-random-weight) hashing.
//!
//! For every `(ball, bin)` pair a uniform value `u ∈ (0, 1]` is derived by
//! stable hashing, converted into the exponential score `-ln(u) / w`, and the
//! bin with the *smallest* score wins. Because the minimum of independent
//! exponential variables with rates `w_i` falls on variable `i` with
//! probability exactly `w_i / Σ w_j`, the scheme is **perfectly fair in
//! expectation** for arbitrary real weights — the property Lemma 3.1 of the
//! paper requires from the `placeOneCopy` subroutine.
//!
//! Rendezvous hashing is also minimally adaptive: when a bin is added, the
//! only balls that move are those the new bin wins (an expected
//! `w_new / Σ w` fraction), and when a bin is removed, only the balls it held
//! move, redistributing proportionally over the survivors. Both facts are
//! exercised by the tests below and by the adaptivity experiments.

use crate::mix::{stable_hash3, unit_open_f64};
use crate::selector::SingleCopySelector;

/// Domain separator so rendezvous decisions are independent from the
/// primary-selection scan of the replication algorithms.
const RENDEZVOUS_DOMAIN: u64 = 0x52_56_5A_00; // "RVZ"

/// Weighted rendezvous (highest-random-weight) hashing selector.
///
/// Stateless: construction is free and selection runs in `O(n)` time for
/// `n` bins with no allocation.
///
/// # Example
///
/// ```
/// use rshare_hash::{Rendezvous, SingleCopySelector};
///
/// let sel = Rendezvous::new();
/// let names = [100u64, 200, 300];
/// let weights = [1.0, 1.0, 2.0];
///
/// // Count wins over many balls: the last bin should take ~50 %.
/// let mut wins = [0u32; 3];
/// for ball in 0..20_000u64 {
///     wins[sel.select(ball, &names, &weights)] += 1;
/// }
/// let share = f64::from(wins[2]) / 20_000.0;
/// assert!((share - 0.5).abs() < 0.02, "share = {share}");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rendezvous {
    seed: u64,
}

impl Rendezvous {
    /// Creates a selector with the default seed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a selector whose hash stream is offset by `seed`.
    ///
    /// Two selectors with different seeds make statistically independent
    /// decisions about the same balls; this is used to derive the
    /// per-copy-level hash streams of the trivial replication baseline.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    /// Returns the rendezvous score of `key` against the bin `name` with
    /// weight `weight`; lower scores win.
    ///
    /// Exposed so callers can rank *all* bins (e.g. the trivial replication
    /// baseline takes the `k` lowest-scoring bins).
    #[inline]
    #[must_use]
    pub fn score(&self, key: u64, name: u64, weight: f64) -> f64 {
        debug_assert!(weight >= 0.0 && weight.is_finite());
        if weight <= 0.0 {
            return f64::INFINITY;
        }
        let u = unit_open_f64(stable_hash3(key, name, RENDEZVOUS_DOMAIN ^ self.seed));
        -u.ln() / weight
    }
}

impl SingleCopySelector for Rendezvous {
    fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize {
        self.select_with_head(
            key,
            names,
            weights,
            *weights.first().expect("empty bin set"),
        )
    }

    fn select_with_head(
        &self,
        key: u64,
        names: &[u64],
        weights: &[f64],
        head_weight: f64,
    ) -> usize {
        assert!(!names.is_empty(), "cannot select from an empty bin set");
        assert_eq!(
            names.len(),
            weights.len(),
            "names and weights must have equal length"
        );
        let mut best = 0usize;
        let mut best_score = self.score(key, names[0], head_weight);
        for (i, (&name, &w)) in names.iter().zip(weights).enumerate().skip(1) {
            let s = self.score(key, name, w);
            if s < best_score {
                best = i;
                best_score = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_two_to_one() {
        let sel = Rendezvous::new();
        let names = [7u64, 8, 9];
        let weights = [2.0, 1.0, 1.0];
        let n = 40_000u64;
        let mut counts = [0u32; 3];
        for ball in 0..n {
            counts[sel.select(ball, &names, &weights)] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|&c| f64::from(c) / n as f64).collect();
        assert!((shares[0] - 0.5).abs() < 0.015, "{shares:?}");
        assert!((shares[1] - 0.25).abs() < 0.015, "{shares:?}");
        assert!((shares[2] - 0.25).abs() < 0.015, "{shares:?}");
    }

    #[test]
    fn zero_weight_bin_never_selected() {
        let sel = Rendezvous::new();
        let names = [1u64, 2, 3];
        let weights = [0.0, 1.0, 1.0];
        for ball in 0..5_000u64 {
            assert_ne!(sel.select(ball, &names, &weights), 0);
        }
    }

    #[test]
    fn insertion_moves_only_to_new_bin() {
        // Minimal adaptivity: adding a bin may only move balls TO it.
        let sel = Rendezvous::new();
        let old_names = [1u64, 2, 3];
        let old_w = [1.0, 2.0, 3.0];
        let new_names = [1u64, 2, 3, 4];
        let new_w = [1.0, 2.0, 3.0, 2.0];
        let mut moved_to_new = 0u32;
        for ball in 0..20_000u64 {
            let a = sel.select(ball, &old_names, &old_w);
            let b = sel.select(ball, &new_names, &new_w);
            if a != b {
                assert_eq!(b, 3, "ball moved between surviving bins");
                moved_to_new += 1;
            }
        }
        let frac = f64::from(moved_to_new) / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "moved fraction = {frac}");
    }

    #[test]
    fn removal_redistributes_only_lost_balls() {
        let sel = Rendezvous::new();
        let names = [1u64, 2, 3, 4];
        let w = [1.0, 1.0, 1.0, 1.0];
        let sub_names = [1u64, 2, 3];
        let sub_w = [1.0, 1.0, 1.0];
        for ball in 0..10_000u64 {
            let a = sel.select(ball, &names, &w);
            let b = sel.select(ball, &sub_names, &sub_w);
            if a != 3 {
                assert_eq!(a, b, "ball not on removed bin must not move");
            }
        }
    }

    #[test]
    fn head_override_changes_only_head_share() {
        let sel = Rendezvous::new();
        let names = [1u64, 2, 3];
        let w = [1.0, 1.0, 1.0];
        let n = 30_000u64;
        let mut head = 0u32;
        for ball in 0..n {
            if sel.select_with_head(ball, &names, &w, 3.0) == 0 {
                head += 1;
            }
        }
        // Head weight 3 of total 5 => 60 %.
        let share = f64::from(head) / n as f64;
        assert!((share - 0.6).abs() < 0.02, "share = {share}");
    }

    #[test]
    fn seeds_are_independent() {
        let a = Rendezvous::with_seed(1);
        let b = Rendezvous::with_seed(2);
        let names = [1u64, 2, 3, 4];
        let w = [1.0; 4];
        let agree = (0..10_000u64)
            .filter(|&x| a.select(x, &names, &w) == b.select(x, &names, &w))
            .count();
        // Independent selections agree ~ 1/4 of the time.
        let frac = agree as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "agreement = {frac}");
    }

    #[test]
    #[should_panic(expected = "empty bin set")]
    fn empty_bins_panics() {
        Rendezvous::new().select(1, &[], &[]);
    }
}
