//! Stable, stateless 64-bit mixing functions.
//!
//! All placement decisions in this workspace are pure functions of
//! `(ball address, bin name, domain seed)`. The paper's adaptivity results
//! (Lemma 3.2 and Corollary 3.3) rely on the random value used at bin `i`
//! being unaffected by the insertion or removal of *other* bins, so the hash
//! must never incorporate positional information such as the bin's index in
//! the sorted order or the current system size.
//!
//! The mixer is the finalizer of `splitmix64` (Stafford's Mix13 variant),
//! which has full avalanche behaviour and is commonly used to seed PRNGs.
//! Multi-argument hashes chain the mixer so every input bit affects every
//! output bit.

/// Number of distinct copies supported by the domain-separation constants.
///
/// This is an implementation constant, not a protocol limit; it only bounds
/// how many *statistically independent* hash streams [`stable_hash3`] can
/// derive from one `(ball, bin)` pair before streams repeat.
pub const DOMAIN_SPACE: u64 = u64::MAX;

/// The 64-bit finalizer of the `splitmix64` generator.
///
/// This is a bijection on `u64` with full avalanche: flipping any input bit
/// flips each output bit with probability close to 1/2. It is the primitive
/// from which all other hashes in this crate are built.
///
/// # Example
///
/// ```
/// use rshare_hash::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// // Stable across runs and platforms:
/// assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
/// ```
#[inline]
#[must_use]
pub const fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a pair of 64-bit values into a single well-mixed 64-bit value.
///
/// The function is asymmetric (`stable_hash2(a, b) != stable_hash2(b, a)` in
/// general), deterministic, and stable across processes.
///
/// # Example
///
/// ```
/// use rshare_hash::stable_hash2;
/// assert_ne!(stable_hash2(1, 2), stable_hash2(2, 1));
/// ```
#[inline]
#[must_use]
pub const fn stable_hash2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.rotate_left(31) ^ 0xA076_1D64_78BD_642F)
}

/// Hashes a triple of 64-bit values (typically `(ball, bin, domain)`).
///
/// The third argument acts as a *domain separator*: placement layers that
/// must make statistically independent decisions about the same `(ball,
/// bin)` pair (e.g. the primary-selection scan versus the `placeOneCopy`
/// subroutine) pass different domain constants.
///
/// # Example
///
/// ```
/// use rshare_hash::stable_hash3;
/// let ball = 42;
/// let bin = 7;
/// assert_ne!(stable_hash3(ball, bin, 0), stable_hash3(ball, bin, 1));
/// ```
#[inline]
#[must_use]
pub const fn stable_hash3(a: u64, b: u64, domain: u64) -> u64 {
    splitmix64(stable_hash2(a, b) ^ splitmix64(domain))
}

/// Converts a hash value into a float uniformly distributed in `[0, 1)`.
///
/// Uses the top 53 bits so the result is exactly representable and the
/// distribution is uniform over the `2^53` representable grid points.
///
/// # Example
///
/// ```
/// use rshare_hash::{splitmix64, unit_f64};
/// let u = unit_f64(splitmix64(123));
/// assert!((0.0..1.0).contains(&u));
/// ```
#[inline]
#[must_use]
pub fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts a hash value into a float uniformly distributed in `(0, 1]`.
///
/// Useful when the value feeds a logarithm (as in weighted rendezvous
/// hashing), where an exact zero would produce `-inf`.
///
/// # Example
///
/// ```
/// use rshare_hash::unit_open_f64;
/// assert!(unit_open_f64(0) > 0.0);
/// assert!(unit_open_f64(u64::MAX) <= 1.0);
/// ```
#[inline]
#[must_use]
pub fn unit_open_f64(hash: u64) -> f64 {
    ((hash >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the public splitmix64 test vectors
        // (seed 1234567): first three outputs of the sequence equal
        // splitmix64 of successive internal states; here we only pin our
        // finalizer-of-seed convention.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
    }

    #[test]
    fn splitmix_is_bijective_on_sample() {
        use std::collections::HashSet;
        let outputs: HashSet<u64> = (0..10_000).map(splitmix64).collect();
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn unit_is_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "u = {u}");
            let v = unit_open_f64(splitmix64(i));
            assert!(v > 0.0 && v <= 1.0, "v = {v}");
        }
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn unit_mean_is_half() {
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|i| unit_f64(splitmix64(i))).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn hash2_is_asymmetric_and_sensitive() {
        assert_ne!(stable_hash2(1, 2), stable_hash2(2, 1));
        assert_ne!(stable_hash2(1, 2), stable_hash2(1, 3));
        assert_ne!(stable_hash2(1, 2), stable_hash2(0, 2));
    }

    #[test]
    fn hash3_domain_separates() {
        let a = stable_hash3(5, 9, 0);
        let b = stable_hash3(5, 9, 1);
        let c = stable_hash3(5, 9, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u64;
        let trials = 2_000u64;
        for i in 0..trials {
            let h1 = splitmix64(i);
            let h2 = splitmix64(i ^ 1);
            total += u64::from((h1 ^ h2).count_ones());
        }
        let avg = total as f64 / trials as f64;
        assert!((avg - 32.0).abs() < 2.0, "avalanche avg = {avg}");
    }
}
