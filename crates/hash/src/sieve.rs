//! The Sieve strategy (Brinkmann, Salzwedel, Scheideler; SPAA 2002).
//!
//! Sieve is the second adaptive, heterogeneous-capacity k = 1 scheme from
//! reference \[2\] of the paper (next to Share). It is rejection sampling
//! made deterministic: in round `t` the ball hashes to a uniformly random
//! bin and a uniform level `u ∈ [0, 1)`; the bin *catches* the ball if
//! `u < w_bin / w_max`. Unclaimed balls fall through to the next round
//! with fresh hashes. Conditioned on being caught in a round, the catching
//! bin is distributed exactly proportionally to the weights, so the scheme
//! is **exactly fair in expectation**; the expected number of rounds is
//! `n · w_max / W ≤ n`.
//!
//! Adaptivity is the draw: when a bin's weight changes, only the balls
//! whose accept test flips are affected. Sieve's weakness is the round
//! count on skewed systems (many rejections when one bin dominates), which
//! the ablation experiment makes visible.

use crate::mix::{stable_hash3, unit_f64};
use crate::selector::SingleCopySelector;

const SIEVE_BIN_DOMAIN: u64 = 0x5349_4556_4531; // "SIEVE1"
const SIEVE_LVL_DOMAIN: u64 = 0x5349_4556_4532; // "SIEVE2"

/// The Sieve rejection-sampling selector.
///
/// # Example
///
/// ```
/// use rshare_hash::{Sieve, SingleCopySelector};
///
/// let sieve = Sieve::new(256);
/// let idx = sieve.select(7, &[1, 2, 3], &[3.0, 2.0, 1.0]);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sieve {
    /// Deterministic upper bound on rejection rounds before the fallback.
    max_rounds: u32,
}

impl Default for Sieve {
    fn default() -> Self {
        Self { max_rounds: 256 }
    }
}

impl Sieve {
    /// Creates a Sieve selector with the given round budget (at least 1).
    ///
    /// With `r` rounds the probability of falling through to the (still
    /// deterministic, weighted-rendezvous) fallback is at most
    /// `(1 - W / (n · w_max))^r`, negligible for any reasonable budget.
    #[must_use]
    pub fn new(max_rounds: u32) -> Self {
        Self {
            max_rounds: max_rounds.max(1),
        }
    }
}

impl SingleCopySelector for Sieve {
    fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize {
        self.select_with_head(
            key,
            names,
            weights,
            *weights.first().expect("empty bin set"),
        )
    }

    fn select_with_head(
        &self,
        key: u64,
        names: &[u64],
        weights: &[f64],
        head_weight: f64,
    ) -> usize {
        assert!(!names.is_empty(), "cannot select from an empty bin set");
        assert_eq!(names.len(), weights.len());
        let n = names.len();
        let w = |i: usize| if i == 0 { head_weight } else { weights[i] };
        let mut w_max = 0.0f64;
        for i in 0..n {
            let wi = w(i);
            assert!(wi >= 0.0 && wi.is_finite(), "invalid weight");
            w_max = w_max.max(wi);
        }
        assert!(w_max > 0.0, "total weight must be positive");
        for round in 0..u64::from(self.max_rounds) {
            // Uniform candidate bin per round; the accept level is hashed
            // by the bin's *name*, so a pure weight change flips only the
            // accept tests of the affected bin.
            let pick = stable_hash3(key, round, SIEVE_BIN_DOMAIN) as usize % n;
            let level = unit_f64(stable_hash3(
                key,
                crate::mix::stable_hash2(round, names[pick]),
                SIEVE_LVL_DOMAIN,
            ));
            if level < w(pick) / w_max {
                return pick;
            }
        }
        // Deterministic fallback: exactly fair weighted rendezvous.
        crate::rendezvous::Rendezvous::with_seed(SIEVE_LVL_DOMAIN).select_with_head(
            key,
            names,
            weights,
            head_weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_exact_in_expectation() {
        let sieve = Sieve::default();
        let names = [1u64, 2, 3, 4];
        let weights = [4.0, 2.0, 1.0, 1.0];
        let total: f64 = weights.iter().sum();
        let n = 60_000u64;
        let mut counts = [0u32; 4];
        for ball in 0..n {
            counts[sieve.select(ball, &names, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = f64::from(c) / n as f64;
            let want = weights[i] / total;
            assert!(
                (got - want).abs() < 0.01,
                "bin {i}: got {got:.4} want {want:.4}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let sieve = Sieve::default();
        let names = [9u64, 8, 7];
        let weights = [1.0, 5.0, 2.0];
        for ball in 0..500u64 {
            assert_eq!(
                sieve.select(ball, &names, &weights),
                sieve.select(ball, &names, &weights)
            );
        }
    }

    #[test]
    fn zero_weight_bin_never_selected() {
        let sieve = Sieve::default();
        let names = [1u64, 2, 3];
        let weights = [0.0, 1.0, 1.0];
        for ball in 0..5_000u64 {
            assert_ne!(sieve.select(ball, &names, &weights), 0);
        }
    }

    #[test]
    fn head_override() {
        let sieve = Sieve::default();
        let names = [1u64, 2];
        let weights = [1.0, 1.0];
        let n = 40_000u64;
        let head = (0..n)
            .filter(|&b| sieve.select_with_head(b, &names, &weights, 3.0) == 0)
            .count();
        let share = head as f64 / n as f64;
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn tiny_round_budget_still_terminates() {
        let sieve = Sieve::new(1);
        let names = [1u64, 2, 3];
        let weights = [100.0, 1.0, 1.0];
        for ball in 0..1_000u64 {
            assert!(sieve.select(ball, &names, &weights) < 3);
        }
    }

    #[test]
    fn weight_change_keeps_fairness_with_bounded_movement() {
        // Rejection sampling is not minimally adaptive (a flipped accept
        // test re-rolls the ball), but fairness must hold on both sides of
        // a weight change and unaffected balls must not all reshuffle.
        let sieve = Sieve::default();
        let names = [1u64, 2, 3, 4];
        let before = [1.0, 1.0, 1.0, 1.0];
        let after = [2.0, 1.0, 1.0, 1.0];
        let n = 40_000u64;
        let mut counts = [0u32; 4];
        let mut moved = 0u32;
        for ball in 0..n {
            let a = sieve.select(ball, &names, &before);
            let b = sieve.select(ball, &names, &after);
            counts[b] += 1;
            if a != b {
                moved += 1;
            }
        }
        let grown_share = f64::from(counts[0]) / n as f64;
        assert!((grown_share - 0.4).abs() < 0.01, "share {grown_share}");
        let moved_frac = f64::from(moved) / n as f64;
        // Optimal movement is 0.2 (the grown bin's share delta); Sieve's
        // re-rolls cost more but must stay far below a full reshuffle.
        assert!(
            moved_frac > 0.15 && moved_frac < 0.6,
            "moved fraction {moved_frac}"
        );
    }
}
