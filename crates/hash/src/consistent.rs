//! Consistent hashing (Karger et al., STOC 1997) with weighted virtual nodes.
//!
//! The classic adaptive k = 1 scheme the paper builds on: every bin is mapped
//! to a number of points ("virtual nodes") on a 64-bit ring, with the number
//! of points proportional to the bin's weight; a ball is assigned to the bin
//! owning the first point at or after the ball's hash. Fairness holds only
//! approximately — the deviation shrinks with the number of virtual nodes —
//! which is exactly why the paper's analysis prefers schemes that are fair in
//! expectation. We provide it both as a stateful ring ([`ConsistentRing`])
//! and as a stateless [`SingleCopySelector`] adapter for use as
//! `placeOneCopy` in ablation experiments.

use crate::mix::{stable_hash2, stable_hash3};
use crate::selector::SingleCopySelector;

const RING_DOMAIN: u64 = 0x434F_4E53; // "CONS"
const BALL_DOMAIN: u64 = 0x42_41_4C_4C; // "BALL"

/// A stateful consistent-hashing ring with weighted virtual nodes.
///
/// # Example
///
/// ```
/// use rshare_hash::ConsistentRing;
///
/// let mut ring = ConsistentRing::new(64);
/// ring.insert(1, 2.0);
/// ring.insert(2, 1.0);
/// let owner = ring.lookup(0xabcdef).unwrap();
/// assert!(owner == 1 || owner == 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConsistentRing {
    /// Ring points sorted by position: `(position, bin name)`.
    points: Vec<(u64, u64)>,
    /// Bin membership: `(name, weight)`.
    bins: Vec<(u64, f64)>,
    /// Virtual nodes granted per unit of weight.
    vnodes_per_unit: u32,
}

impl ConsistentRing {
    /// Creates an empty ring granting `vnodes_per_unit` virtual nodes per
    /// unit of weight (every bin gets at least one).
    #[must_use]
    pub fn new(vnodes_per_unit: u32) -> Self {
        Self {
            points: Vec::new(),
            bins: Vec::new(),
            vnodes_per_unit: vnodes_per_unit.max(1),
        }
    }

    /// Number of bins on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` if the ring has no bins.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Inserts a bin with the given stable `name` and `weight`, replacing
    /// any previous bin of the same name.
    pub fn insert(&mut self, name: u64, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite(), "invalid weight");
        self.remove(name);
        let vnodes = virtual_nodes(weight, self.vnodes_per_unit);
        for j in 0..vnodes {
            let pos = stable_hash3(name, u64::from(j), RING_DOMAIN);
            let at = self.points.partition_point(|&(p, _)| p < pos);
            self.points.insert(at, (pos, name));
        }
        self.bins.push((name, weight));
    }

    /// Removes the bin called `name`; returns `true` if it was present.
    pub fn remove(&mut self, name: u64) -> bool {
        let before = self.bins.len();
        self.bins.retain(|&(n, _)| n != name);
        if self.bins.len() == before {
            return false;
        }
        self.points.retain(|&(_, n)| n != name);
        true
    }

    /// Returns the name of the bin owning `ball`, or `None` if the ring is
    /// empty.
    #[must_use]
    pub fn lookup(&self, ball: u64) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let pos = stable_hash2(ball, BALL_DOMAIN);
        let at = self.points.partition_point(|&(p, _)| p < pos);
        let (_, name) = self.points[at % self.points.len()];
        Some(name)
    }
}

fn virtual_nodes(weight: f64, per_unit: u32) -> u32 {
    ((weight * f64::from(per_unit)).round() as u32).max(1)
}

/// Stateless consistent hashing usable as a [`SingleCopySelector`].
///
/// Evaluates the ring "on the fly" for the bin set passed to each call: for
/// every bin it derives the same virtual-node positions a
/// [`ConsistentRing`] would contain and finds the successor of the ball's
/// position. Cost is `O(Σ vnodes)` per call, so this adapter is intended for
/// experiments, not hot paths.
///
/// Unlike the ring (whose virtual-node count per bin must stay stable
/// across insertions and therefore scales with the *absolute* weight), the
/// adapter normalises the weights it is handed: a bin of average weight
/// receives `vnodes_per_unit` virtual nodes regardless of the scale the
/// caller's weights are expressed in (block counts, bytes, …).
///
/// # Example
///
/// ```
/// use rshare_hash::{SingleCopySelector, StatelessConsistent};
///
/// let sel = StatelessConsistent::new(32);
/// let idx = sel.select(42, &[1, 2, 3], &[1.0, 1.0, 2.0]);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatelessConsistent {
    vnodes_per_unit: u32,
}

impl StatelessConsistent {
    /// Creates a stateless selector granting `vnodes_per_unit` virtual nodes
    /// per unit of weight.
    #[must_use]
    pub fn new(vnodes_per_unit: u32) -> Self {
        Self {
            vnodes_per_unit: vnodes_per_unit.max(1),
        }
    }
}

impl SingleCopySelector for StatelessConsistent {
    fn select(&self, key: u64, names: &[u64], weights: &[f64]) -> usize {
        self.select_with_head(
            key,
            names,
            weights,
            *weights.first().expect("empty bin set"),
        )
    }

    fn select_with_head(
        &self,
        key: u64,
        names: &[u64],
        weights: &[f64],
        head_weight: f64,
    ) -> usize {
        assert!(!names.is_empty(), "cannot select from an empty bin set");
        assert_eq!(names.len(), weights.len());
        let ball_pos = stable_hash2(key, BALL_DOMAIN);
        // Normalise so the average bin gets `vnodes_per_unit` nodes.
        let total: f64 = head_weight + weights.iter().skip(1).sum::<f64>();
        assert!(total > 0.0, "total weight must be positive");
        let scale = names.len() as f64 / total;
        // Find the virtual node with the minimal clockwise distance from the
        // ball; ties cannot occur because positions are distinct with
        // overwhelming probability (we break ties by bin order determinism).
        let mut best = 0usize;
        let mut best_dist = u64::MAX;
        for (i, &name) in names.iter().enumerate() {
            let w = if i == 0 { head_weight } else { weights[i] };
            if w <= 0.0 {
                continue;
            }
            let vnodes = virtual_nodes(w * scale, self.vnodes_per_unit);
            for j in 0..vnodes {
                let pos = stable_hash3(name, u64::from(j), RING_DOMAIN);
                let dist = pos.wrapping_sub(ball_pos);
                if dist < best_dist {
                    best_dist = dist;
                    best = i;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fairness_weighted() {
        let mut ring = ConsistentRing::new(256);
        ring.insert(1, 2.0);
        ring.insert(2, 1.0);
        ring.insert(3, 1.0);
        let n = 40_000u64;
        let mut big = 0u32;
        for ball in 0..n {
            if ring.lookup(ball) == Some(1) {
                big += 1;
            }
        }
        let share = f64::from(big) / n as f64;
        // Virtual-node fairness is approximate; allow a generous band.
        assert!((share - 0.5).abs() < 0.06, "share = {share}");
    }

    #[test]
    fn ring_monotonicity_on_insert() {
        // Consistent hashing's defining property: adding a bin only moves
        // balls to the new bin.
        let mut ring = ConsistentRing::new(64);
        ring.insert(1, 1.0);
        ring.insert(2, 1.0);
        let before: Vec<Option<u64>> = (0..5_000u64).map(|b| ring.lookup(b)).collect();
        ring.insert(3, 1.0);
        for (ball, old) in before.iter().enumerate() {
            let new = ring.lookup(ball as u64);
            if new != *old {
                assert_eq!(new, Some(3));
            }
        }
    }

    #[test]
    fn ring_remove_restores() {
        let mut ring = ConsistentRing::new(64);
        ring.insert(1, 1.0);
        ring.insert(2, 1.5);
        let before: Vec<Option<u64>> = (0..2_000u64).map(|b| ring.lookup(b)).collect();
        ring.insert(3, 1.0);
        assert!(ring.remove(3));
        assert!(!ring.remove(3));
        let after: Vec<Option<u64>> = (0..2_000u64).map(|b| ring.lookup(b)).collect();
        assert_eq!(before, after, "removal must restore the previous mapping");
    }

    #[test]
    fn empty_ring_lookup_is_none() {
        let ring = ConsistentRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.lookup(7), None);
    }

    #[test]
    fn stateless_matches_stateful() {
        // Weights summing to n are scale-invariant under the adapter's
        // normalisation, so ring and adapter agree exactly.
        let names = [10u64, 20, 30];
        let weights = [0.75, 1.5, 0.75];
        let mut ring = ConsistentRing::new(32);
        for (&n, &w) in names.iter().zip(&weights) {
            ring.insert(n, w);
        }
        let sel = StatelessConsistent::new(32);
        for ball in 0..3_000u64 {
            let a = ring.lookup(ball).unwrap();
            let b = names[sel.select(ball, &names, &weights)];
            assert_eq!(a, b, "ball {ball}");
        }
    }

    #[test]
    fn stateless_fairness_rough() {
        let sel = StatelessConsistent::new(128);
        let names = [1u64, 2];
        let weights = [3.0, 1.0];
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&b| sel.select(b, &names, &weights) == 0)
            .count();
        let share = hits as f64 / n as f64;
        assert!((share - 0.75).abs() < 0.06, "share = {share}");
    }
}
