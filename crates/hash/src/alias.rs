//! Walker/Vose alias tables for O(1) weighted sampling.
//!
//! The O(k) variant of Redundant Share (Section 3.3 of the paper) replaces
//! the linear scan by precomputed "hash functions": for the first copy one
//! weighted-selection structure over all bins, and for each following copy
//! one structure per possible predecessor bin. We realise each such structure
//! as an alias table, which answers a weighted draw in constant time from a
//! single 64-bit hash value.

use crate::mix::{splitmix64, unit_f64};

/// An immutable alias table over `n` outcomes with fixed weights.
///
/// Construction is `O(n)`; sampling is `O(1)`.
///
/// # Example
///
/// ```
/// use rshare_hash::{splitmix64, AliasTable};
///
/// let table = AliasTable::new(&[3.0, 1.0]).unwrap();
/// let n = 40_000u64;
/// let hits = (0..n).filter(|&i| table.sample_hash(splitmix64(i)) == 0).count();
/// let share = hits as f64 / n as f64;
/// assert!((share - 0.75).abs() < 0.02, "share = {share}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// `prob[i]` is the probability of staying on column `i` (scaled to 1.0).
    prob: Vec<f64>,
    /// `alias[i]` is the outcome used when the coin exceeds `prob[i]`.
    alias: Vec<u32>,
}

/// Error returned when an alias table cannot be built from the given weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN or infinite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot build an alias table over zero outcomes"),
            Self::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative or non-finite")
            }
            Self::ZeroTotal => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for AliasError {}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`AliasError`] if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        if weights.is_empty() {
            return Err(AliasError::Empty);
        }
        if let Some(index) = weights.iter().position(|w| !w.is_finite() || *w < 0.0) {
            return Err(AliasError::InvalidWeight { index });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(AliasError::ZeroTotal);
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        // Vose's algorithm with explicit work lists.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            let leftover = prob[l as usize] - (1.0 - prob[s as usize]);
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining keeps its own column.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table has no outcomes (never constructible; kept for
    /// API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Approximate heap memory of the table in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.prob.len() * std::mem::size_of::<f64>() + self.alias.len() * std::mem::size_of::<u32>()
    }

    /// Samples an outcome from two uniform values: `u1` picks the column,
    /// `u2` decides between the column and its alias.
    #[inline]
    #[must_use]
    pub fn sample(&self, u1: f64, u2: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u1) && (0.0..1.0).contains(&u2));
        let n = self.prob.len();
        let col = ((u1 * n as f64) as usize).min(n - 1);
        if u2 < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }

    /// Samples an outcome from a single 64-bit hash value.
    ///
    /// Splits the hash into column bits and coin bits; the caller supplies a
    /// well-mixed value (e.g. from [`crate::stable_hash3`]).
    #[inline]
    #[must_use]
    pub fn sample_hash(&self, hash: u64) -> usize {
        let u1 = unit_f64(hash);
        let u2 = unit_f64(splitmix64(hash ^ 0xA1A5_5A5A_DEAD_BEEF));
        self.sample(u1, u2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::stable_hash2;

    fn empirical(weights: &[f64], samples: u64) -> Vec<f64> {
        let t = AliasTable::new(weights).unwrap();
        let mut counts = vec![0u64; weights.len()];
        for i in 0..samples {
            counts[t.sample_hash(stable_hash2(i, 0x1234))] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    fn matches_weights_uniform() {
        let shares = empirical(&[1.0, 1.0, 1.0, 1.0], 80_000);
        for s in shares {
            assert!((s - 0.25).abs() < 0.01, "{s}");
        }
    }

    #[test]
    fn matches_weights_skewed() {
        let shares = empirical(&[8.0, 4.0, 2.0, 1.0, 1.0], 160_000);
        let expect = [0.5, 0.25, 0.125, 0.0625, 0.0625];
        for (s, e) in shares.iter().zip(expect) {
            assert!((s - e).abs() < 0.01, "share {s} vs expected {e}");
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]).unwrap();
        for i in 0..100u64 {
            assert_eq!(t.sample_hash(splitmix64(i)), 0);
        }
    }

    #[test]
    fn zero_weight_outcome_unreachable() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        for i in 0..20_000u64 {
            assert_ne!(t.sample_hash(stable_hash2(i, 7)), 1);
        }
    }

    #[test]
    fn errors() {
        assert_eq!(AliasTable::new(&[]), Err(AliasError::Empty));
        assert_eq!(
            AliasTable::new(&[1.0, -1.0]),
            Err(AliasError::InvalidWeight { index: 1 })
        );
        assert_eq!(
            AliasTable::new(&[1.0, f64::NAN]),
            Err(AliasError::InvalidWeight { index: 1 })
        );
        assert_eq!(AliasTable::new(&[0.0, 0.0]), Err(AliasError::ZeroTotal));
    }

    #[test]
    fn display_messages() {
        assert!(AliasError::Empty.to_string().contains("zero outcomes"));
        assert!(AliasError::ZeroTotal.to_string().contains("zero"));
        assert!(AliasError::InvalidWeight { index: 3 }
            .to_string()
            .contains("index 3"));
    }
}
