//! Property-based tests of the single-copy selector contract.
//!
//! Every selector in the crate must honour the [`SingleCopySelector`]
//! contract over arbitrary bin sets: results in range, determinism,
//! name-based (not position-based) decisions, and sane zero-weight
//! handling.

use proptest::prelude::*;
use rshare_hash::{
    LinearMethod, LogarithmicMethod, Rendezvous, Share, Sieve, SingleCopySelector,
    StatelessConsistent,
};

fn selectors() -> Vec<(&'static str, Box<dyn SingleCopySelector>)> {
    vec![
        ("rendezvous", Box::new(Rendezvous::new())),
        ("share", Box::new(Share::new(6.0).unwrap())),
        ("consistent", Box::new(StatelessConsistent::new(16))),
        ("sieve", Box::new(Sieve::default())),
        ("linear", Box::new(LinearMethod::with_points(4))),
        ("logarithmic", Box::new(LogarithmicMethod::with_points(4))),
    ]
}

/// Arbitrary bin sets: unique names, positive weights.
fn bins() -> impl Strategy<Value = (Vec<u64>, Vec<f64>)> {
    prop::collection::btree_set(any::<u64>(), 1..=10).prop_flat_map(|names| {
        let names: Vec<u64> = names.into_iter().collect();
        let n = names.len();
        (Just(names), prop::collection::vec(0.01f64..100.0, n..=n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn in_range_and_deterministic((names, weights) in bins(), key in any::<u64>()) {
        for (label, sel) in selectors() {
            let a = sel.select(key, &names, &weights);
            prop_assert!(a < names.len(), "{label}: out of range");
            let b = sel.select(key, &names, &weights);
            prop_assert_eq!(a, b, "{} not deterministic", label);
        }
    }

    #[test]
    fn decisions_are_name_based((names, weights) in bins(), key in any::<u64>()) {
        // Removing a non-winning bin must not move the ball for selectors
        // whose scores are independent per bin (rendezvous, linear, log).
        prop_assume!(names.len() >= 2);
        let independent: Vec<(&str, Box<dyn SingleCopySelector>)> = vec![
            ("rendezvous", Box::new(Rendezvous::new())),
            ("linear", Box::new(LinearMethod::with_points(4))),
            ("logarithmic", Box::new(LogarithmicMethod::with_points(4))),
        ];
        for (label, sel) in independent {
            let winner = sel.select(key, &names, &weights);
            // Drop some non-winner.
            let drop = (winner + 1) % names.len();
            let mut names2 = names.clone();
            let mut weights2 = weights.clone();
            names2.remove(drop);
            weights2.remove(drop);
            let winner2 = sel.select(key, &names2, &weights2);
            let expected = if winner > drop { winner - 1 } else { winner };
            prop_assert_eq!(
                winner2, expected,
                "{}: dropping a loser moved the ball", label
            );
        }
    }

    #[test]
    fn zero_weight_bins_never_win(
        (names, mut weights) in bins(),
        key in any::<u64>(),
        zero_at in any::<prop::sample::Index>(),
    ) {
        prop_assume!(names.len() >= 2);
        let z = zero_at.index(names.len());
        weights[z] = 0.0;
        for (label, sel) in selectors() {
            let winner = sel.select(key, &names, &weights);
            prop_assert_ne!(winner, z, "{} chose a zero-weight bin", label);
        }
    }

    #[test]
    fn head_override_default_matches_select((names, weights) in bins(), key in any::<u64>()) {
        for (label, sel) in selectors() {
            let a = sel.select(key, &names, &weights);
            let b = sel.select_with_head(key, &names, &weights, weights[0]);
            prop_assert_eq!(a, b, "{}: head override with identity weight diverged", label);
        }
    }
}
