//! Single XOR parity (the redundancy of RAID levels 4 and 5).
//!
//! One parity shard equal to the XOR of all data shards; tolerates one
//! erasure. This is the "Parity RAID" scheme from the paper's list of
//! supported redundancy codes and the simplest non-mirroring redundancy
//! group the storage layer can place with Redundant Share.

use crate::code::{check_optional_shards, check_parity_inputs, check_shards, ErasureCode};
use crate::error::ErasureError;
use crate::gf256;

/// XOR parity over `d` data shards (RAID-4/5 style, `p = 1`).
///
/// # Example
///
/// ```
/// use rshare_erasure::{ErasureCode, XorParity};
///
/// let code = XorParity::new(3).unwrap();
/// let mut shards = vec![vec![1u8, 2], vec![3, 4], vec![5, 6], vec![0, 0]];
/// code.encode(&mut shards).unwrap();
/// assert_eq!(shards[3], vec![1 ^ 3 ^ 5, 2 ^ 4 ^ 6]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorParity {
    data: usize,
}

impl XorParity {
    /// Creates a parity code over `data ≥ 1` data shards.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if `data == 0`.
    pub fn new(data: usize) -> Result<Self, ErasureError> {
        if data == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "need at least one data shard",
            });
        }
        Ok(Self { data })
    }
}

impl ErasureCode for XorParity {
    fn data_shards(&self) -> usize {
        self.data
    }

    fn parity_shards(&self) -> usize {
        1
    }

    fn encode(&self, shards: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_shards(shards, self.data + 1, 1)?;
        let (data, parity) = shards.split_at_mut(self.data);
        let parity = &mut parity[0];
        parity.iter_mut().for_each(|b| *b = 0);
        for d in data {
            debug_assert_eq!(d.len(), len);
            gf256::xor_acc(parity, d);
        }
        Ok(())
    }

    fn encode_parity(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_parity_inputs(data, parity.len(), self.data, 1, 1)?;
        let out = &mut parity[0];
        out.clear();
        out.resize(len, 0);
        for d in data {
            gf256::xor_acc(out, d);
        }
        Ok(())
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        let (len, missing) = check_optional_shards(shards, self.data + 1, 1, 1)?;
        let Some(&target) = missing.first() else {
            return Ok(());
        };
        let mut out = vec![0u8; len];
        for s in shards.iter().flatten() {
            gf256::xor_acc(&mut out, s);
        }
        shards[target] = Some(out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_any_single_loss() {
        let code = XorParity::new(4).unwrap();
        let mut shards: Vec<Vec<u8>> = (0..4)
            .map(|i| (0..16).map(|j| (i * 37 + j) as u8).collect())
            .collect();
        shards.push(vec![0; 16]);
        code.encode(&mut shards).unwrap();
        let original = shards.clone();
        for lost in 0..5 {
            let mut damaged: Vec<Option<Vec<u8>>> = original.iter().cloned().map(Some).collect();
            damaged[lost] = None;
            code.reconstruct(&mut damaged).unwrap();
            for (got, want) in damaged.iter().zip(&original) {
                assert_eq!(got.as_ref().unwrap(), want);
            }
        }
    }

    #[test]
    fn double_loss_rejected() {
        let code = XorParity::new(2).unwrap();
        let mut damaged = vec![None, Some(vec![1u8]), None];
        assert_eq!(
            code.reconstruct(&mut damaged),
            Err(ErasureError::TooManyErasures {
                missing: 2,
                tolerated: 1
            })
        );
    }

    #[test]
    fn geometry() {
        let code = XorParity::new(5).unwrap();
        assert_eq!(code.data_shards(), 5);
        assert_eq!(code.parity_shards(), 1);
        assert_eq!(code.total_shards(), 6);
        assert_eq!(code.tolerated_erasures(), 1);
        assert!(XorParity::new(0).is_err());
    }
}
