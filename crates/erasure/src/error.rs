//! Error type shared by all erasure codes.

/// Errors raised by erasure-code construction, encoding and reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErasureError {
    /// The code parameters are invalid (zero shards, too many total shards,
    /// or a prime-parameter requirement violated).
    InvalidParameters {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The number of shards passed does not match the code geometry.
    WrongShardCount {
        /// Shards expected by the code.
        expected: usize,
        /// Shards actually provided.
        got: usize,
    },
    /// The shards do not all have the same length.
    ShardLengthMismatch,
    /// The shard length violates a code constraint (e.g. EVENODD and RDP
    /// need a multiple of `p - 1` bytes).
    BadShardLength {
        /// The required divisor of the shard length.
        multiple_of: usize,
    },
    /// More shards are missing than the code can tolerate.
    TooManyErasures {
        /// Number of missing shards.
        missing: usize,
        /// Maximum tolerated erasures.
        tolerated: usize,
    },
}

impl std::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameters { reason } => write!(f, "invalid code parameters: {reason}"),
            Self::WrongShardCount { expected, got } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            Self::ShardLengthMismatch => write!(f, "shards have differing lengths"),
            Self::BadShardLength { multiple_of } => {
                write!(
                    f,
                    "shard length must be a positive multiple of {multiple_of}"
                )
            }
            Self::TooManyErasures { missing, tolerated } => {
                write!(
                    f,
                    "{missing} shards missing, but only {tolerated} tolerated"
                )
            }
        }
    }
}

impl std::error::Error for ErasureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ErasureError::ShardLengthMismatch
            .to_string()
            .contains("length"));
        assert!(ErasureError::WrongShardCount {
            expected: 5,
            got: 3
        }
        .to_string()
        .contains("5"));
        assert!(ErasureError::TooManyErasures {
            missing: 3,
            tolerated: 2
        }
        .to_string()
        .contains("3"));
        assert!(ErasureError::BadShardLength { multiple_of: 4 }
            .to_string()
            .contains("4"));
        assert!(ErasureError::InvalidParameters {
            reason: "p must be prime"
        }
        .to_string()
        .contains("prime"));
    }
}
