//! The x86-64 SIMD tier: split-nibble `pshufb` GF(256) kernels.
//!
//! A GF(256) product by a fixed coefficient `c` factors over the nibbles
//! of the data byte: `c · x = c · (x & 0x0f) ⊕ c · (x & 0xf0)`, because
//! multiplication distributes over XOR and the two masked parts XOR to
//! `x`. Each factor has only 16 possible values, so two 16-entry tables —
//! `LO[i] = c · i` and `HI[i] = c · (i << 4)`, sliced straight out of the
//! coefficient's 256-byte product row — turn the multiply into two
//! byte-shuffles and a XOR. `pshufb` (`_mm_shuffle_epi8`) performs sixteen
//! such table lookups per instruction; the AVX2 variant
//! (`_mm256_shuffle_epi8`) performs thirty-two, with the tables broadcast
//! into both 128-bit lanes so the per-lane shuffle semantics match.
//!
//! Which width runs is decided once per process with
//! [`is_x86_feature_detected!`] (AVX2 preferred, SSSE3 otherwise) and
//! cached in an atomic; `RSHARE_GF256_KERNEL=avx2|ssse3` pins a specific
//! width through [`force_level`]. On non-x86-64 targets every probe
//! reports unavailable and the dispatcher in [`super`] settles on the
//! SWAR tier instead.
//!
//! This module is the only place in the workspace that uses `unsafe`: the
//! `std::arch` intrinsics require it. Every unsafe block's obligations are
//! discharged locally — feature presence is checked before any
//! `#[target_feature]` function is called, and all pointer arithmetic
//! stays inside the bounds of the argument slices.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set width the SIMD tier runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// 16 bytes per shuffle (`_mm_shuffle_epi8`).
    Ssse3,
    /// 32 bytes per shuffle (`_mm256_shuffle_epi8`).
    Avx2,
}

/// Cached detection result: 0 = not yet probed, 1 = unavailable,
/// 2 = SSSE3, 3 = AVX2.
static LEVEL: AtomicU8 = AtomicU8::new(0);

const LEVEL_NONE: u8 = 1;
const LEVEL_SSSE3: u8 = 2;
const LEVEL_AVX2: u8 = 3;

/// Probes the CPU once and caches the answer. Both racers of a first call
/// compute the same value, so the relaxed store is harmless.
fn level_code() -> u8 {
    match LEVEL.load(Ordering::Relaxed) {
        0 => {
            let code = detect_code();
            LEVEL.store(code, Ordering::Relaxed);
            code
        }
        code => code,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_code() -> u8 {
    if is_x86_feature_detected!("avx2") {
        LEVEL_AVX2
    } else if is_x86_feature_detected!("ssse3") {
        LEVEL_SSSE3
    } else {
        LEVEL_NONE
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_code() -> u8 {
    LEVEL_NONE
}

/// Whether the SIMD tier can run on this machine.
#[must_use]
pub fn available() -> bool {
    level_code() >= LEVEL_SSSE3
}

/// The width the tier currently runs at, when available.
#[must_use]
pub fn level() -> Option<Level> {
    match level_code() {
        LEVEL_SSSE3 => Some(Level::Ssse3),
        LEVEL_AVX2 => Some(Level::Avx2),
        _ => None,
    }
}

/// Pins the tier to a specific width, returning whether the hardware
/// supports it (AVX2 machines may pin down to SSSE3; the reverse fails
/// and leaves the detected level in place). The
/// `RSHARE_GF256_KERNEL=avx2|ssse3` overrides route through here.
pub fn force_level(want: Level) -> bool {
    let detected = detect_code();
    let code = match want {
        Level::Ssse3 => LEVEL_SSSE3,
        Level::Avx2 => LEVEL_AVX2,
    };
    if detected >= code {
        LEVEL.store(code, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// `acc[i] ^= c · data[i]` through the widest available shuffle kernel.
/// The caller (the dispatcher in [`super`]) has asserted equal lengths
/// and screened out `c ∈ {0, 1}`; if the hardware probe fails after all,
/// the portable table body runs so the call still completes correctly.
#[inline]
pub(super) fn mul_acc(acc: &mut [u8], data: &[u8], c: u8) {
    match level_code() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the detected (or successfully forced) level proves the
        // feature is present on this CPU.
        LEVEL_AVX2 => unsafe { x86::mul_acc_avx2(acc, data, c) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, SSSE3 is present.
        LEVEL_SSSE3 => unsafe { x86::mul_acc_ssse3(acc, data, c) },
        _ => super::mul_acc_table(acc, data, c),
    }
}

/// `acc[i] ^= data[i]` through 32-byte AVX2 XOR rounds when available;
/// XOR gains little from SSSE3 over native `u64` words, so only the AVX2
/// width has a dedicated body.
#[inline]
pub(super) fn xor_acc(acc: &mut [u8], data: &[u8]) {
    match level_code() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the detected (or successfully forced) level proves AVX2
        // is present on this CPU.
        LEVEL_AVX2 => unsafe { x86::xor_acc_avx2(acc, data) },
        _ => super::xor_acc_words(acc, data),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m128i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
        _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
        _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// The two 16-entry nibble product tables of a coefficient, sliced
    /// from its [`super::super::mul_row`]: `lo[i] = c · i`,
    /// `hi[i] = c · (i << 4)`.
    #[inline]
    fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
        let row = super::super::mul_row(c);
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for (i, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *l = row[i];
            *h = row[i << 4];
        }
        (lo, hi)
    }

    /// # Safety
    ///
    /// The CPU must support AVX2. `acc` and `data` must be the same
    /// length (asserted by the dispatching caller).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_acc_avx2(acc: &mut [u8], data: &[u8], c: u8) {
        let (lo, hi) = nibble_tables(c);
        let n = acc.len().min(data.len());
        let ap = acc.as_mut_ptr();
        let dp = data.as_ptr();
        // SAFETY: the nibble tables are 16-byte stacks read unaligned;
        // every vector load/store below covers `[i, i + 32)` with
        // `i + 32 <= n`, inside both slices.
        unsafe {
            let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast::<__m128i>()));
            let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast::<__m128i>()));
            let mask = _mm256_set1_epi8(0x0f);
            let mut i = 0usize;
            while i + 32 <= n {
                let d = _mm256_loadu_si256(dp.add(i).cast());
                let a = _mm256_loadu_si256(ap.add(i).cast());
                let lo_n = _mm256_and_si256(d, mask);
                let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(d), mask);
                let product = _mm256_xor_si256(
                    _mm256_shuffle_epi8(tlo, lo_n),
                    _mm256_shuffle_epi8(thi, hi_n),
                );
                _mm256_storeu_si256(ap.add(i).cast(), _mm256_xor_si256(a, product));
                i += 32;
            }
            tail(acc, data, i, c);
        }
    }

    /// # Safety
    ///
    /// The CPU must support SSSE3. `acc` and `data` must be the same
    /// length (asserted by the dispatching caller).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_ssse3(acc: &mut [u8], data: &[u8], c: u8) {
        let (lo, hi) = nibble_tables(c);
        let n = acc.len().min(data.len());
        let ap = acc.as_mut_ptr();
        let dp = data.as_ptr();
        // SAFETY: every vector load/store covers `[i, i + 16)` with
        // `i + 16 <= n`, inside both slices.
        unsafe {
            let tlo = _mm_loadu_si128(lo.as_ptr().cast::<__m128i>());
            let thi = _mm_loadu_si128(hi.as_ptr().cast::<__m128i>());
            let mask = _mm_set1_epi8(0x0f);
            let mut i = 0usize;
            while i + 16 <= n {
                let d = _mm_loadu_si128(dp.add(i).cast());
                let a = _mm_loadu_si128(ap.add(i).cast());
                let lo_n = _mm_and_si128(d, mask);
                let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(d), mask);
                let product =
                    _mm_xor_si128(_mm_shuffle_epi8(tlo, lo_n), _mm_shuffle_epi8(thi, hi_n));
                _mm_storeu_si128(ap.add(i).cast(), _mm_xor_si128(a, product));
                i += 16;
            }
            tail(acc, data, i, c);
        }
    }

    /// # Safety
    ///
    /// The CPU must support AVX2. `acc` and `data` must be the same
    /// length (asserted by the dispatching caller).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_acc_avx2(acc: &mut [u8], data: &[u8]) {
        let n = acc.len().min(data.len());
        let ap = acc.as_mut_ptr();
        let dp = data.as_ptr();
        let mut i = 0usize;
        // SAFETY: every vector load/store covers `[i, i + 32)` with
        // `i + 32 <= n`, inside both slices.
        unsafe {
            while i + 32 <= n {
                let d = _mm256_loadu_si256(dp.add(i).cast());
                let a = _mm256_loadu_si256(ap.add(i).cast());
                _mm256_storeu_si256(ap.add(i).cast(), _mm256_xor_si256(a, d));
                i += 32;
            }
        }
        for (a, d) in acc[i..n].iter_mut().zip(&data[i..n]) {
            *a ^= d;
        }
    }

    /// Finishes the sub-vector tail `[from, len)` through the
    /// coefficient's product row.
    #[inline(always)]
    fn tail(acc: &mut [u8], data: &[u8], from: usize, c: u8) {
        let row = super::super::mul_row(c);
        for (a, &d) in acc[from..].iter_mut().zip(&data[from..]) {
            *a ^= row[d as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_and_consistent() {
        assert_eq!(available(), level().is_some());
        assert_eq!(level(), level(), "cached probe must not flap");
    }

    #[test]
    fn forcing_respects_hardware() {
        let original = level();
        if force_level(Level::Ssse3) {
            assert_eq!(level(), Some(Level::Ssse3));
            // Restore the wider level if the machine has it.
            if force_level(Level::Avx2) {
                assert_eq!(level(), Some(Level::Avx2));
            }
        } else {
            assert_eq!(level(), None, "failed force leaves detection in place");
        }
        // Leave whatever was detected originally for other tests.
        match original {
            Some(Level::Avx2) => assert!(force_level(Level::Avx2)),
            Some(Level::Ssse3) => assert!(force_level(Level::Ssse3)),
            None => {}
        }
    }

    #[test]
    fn simd_mul_matches_table_on_both_widths() {
        if !available() {
            return; // nothing to compare on this machine
        }
        let original = level().expect("available");
        let data: Vec<u8> = (0..1000).map(|i| (i * 89 + 7) as u8).collect();
        for want in [Level::Ssse3, Level::Avx2] {
            if !force_level(want) {
                continue;
            }
            for c in [2u8, 0x1d, 0x80, 0xff] {
                let mut fast = vec![0x33u8; data.len()];
                let mut slow = fast.clone();
                mul_acc(&mut fast, &data, c);
                super::super::mul_acc_table(&mut slow, &data, c);
                assert_eq!(fast, slow, "width = {want:?} c = {c}");
                let mut xf = vec![0x33u8; data.len()];
                let mut xs = xf.clone();
                xor_acc(&mut xf, &data);
                super::super::xor_acc_words(&mut xs, &data);
                assert_eq!(xf, xs, "xor width = {want:?}");
            }
        }
        assert!(force_level(original));
    }

    #[test]
    fn xor_tail_is_preserved_before_vector_start() {
        // A 33-byte buffer exercises one full AVX2 round plus a tail (or,
        // on SSSE3-only machines, two rounds plus a tail).
        if !available() {
            return;
        }
        let data: Vec<u8> = (0..33).map(|i| i as u8).collect();
        let mut acc = vec![0xFFu8; 33];
        xor_acc(&mut acc, &data);
        for (i, a) in acc.iter().enumerate() {
            assert_eq!(*a, 0xFF ^ (i as u8));
        }
    }
}
