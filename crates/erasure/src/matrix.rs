//! Dense matrices over GF(256) with Gauss–Jordan inversion.
//!
//! Support machinery for the Reed–Solomon code: building systematic
//! Vandermonde encode matrices and inverting the sub-matrices used during
//! reconstruction.

use crate::gf256;

/// A row-major matrix over GF(256).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Creates the `rows × cols` Vandermonde matrix `V[i][j] = i^j`
    /// (elements taken as field elements).
    ///
    /// Any `cols` rows of this matrix are linearly independent as long as
    /// `rows ≤ 256`, which is what makes Reed–Solomon reconstruction work.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (field elements are exhausted).
    #[must_use]
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "GF(256) supports at most 256 distinct rows");
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = gf256::pow(i as u8, j as u32);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    #[must_use]
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "shape mismatch");
        let mut out = Self::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] ^= gf256::mul(a, rhs[(k, j)]);
                }
            }
        }
        out
    }

    /// Builds a new matrix from a subset of this matrix's rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any index is out of range.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> Self {
        assert!(!rows.is_empty());
        let mut out = Self::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Inverts a square matrix via Gauss–Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn inverted(&self) -> Option<Self> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Self::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| work[(r, col)] != 0)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let scale = gf256::inv(work[(col, col)]);
            work.scale_row(col, scale);
            inv.scale_row(col, scale);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col || work[(r, col)] == 0 {
                    continue;
                }
                let factor = work[(r, col)];
                work.add_scaled_row(col, r, factor);
                inv.add_scaled_row(col, r, factor);
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    fn scale_row(&mut self, r: usize, c: u8) {
        for j in 0..self.cols {
            self[(r, j)] = gf256::mul(self[(r, j)], c);
        }
    }

    /// `row[dst] ^= c · row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, c: u8) {
        for j in 0..self.cols {
            let v = gf256::mul(self[(src, j)], c);
            self[(dst, j)] ^= v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = u8;
    fn index(&self, (r, c): (usize, usize)) -> &u8 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut u8 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let v = Matrix::vandermonde(5, 3);
        let i5 = Matrix::identity(5);
        assert_eq!(i5.mul(&v), v);
    }

    #[test]
    fn inverse_roundtrip() {
        // Every square submatrix of a Vandermonde matrix is invertible.
        let v = Matrix::vandermonde(8, 4);
        for rows in [[0usize, 1, 2, 3], [4, 5, 6, 7], [0, 2, 5, 7]] {
            let m = v.select_rows(&rows);
            let inv = m.inverted().expect("vandermonde rows invertible");
            assert_eq!(m.mul(&inv), Matrix::identity(4));
            assert_eq!(inv.mul(&m), Matrix::identity(4));
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = Matrix::zero(2, 2);
        m[(0, 0)] = 1;
        m[(0, 1)] = 1;
        m[(1, 0)] = 1;
        m[(1, 1)] = 1;
        assert!(m.inverted().is_none());
    }

    #[test]
    fn select_rows_picks_rows() {
        let v = Matrix::vandermonde(4, 2);
        let s = v.select_rows(&[3, 1]);
        assert_eq!(s.row(0), v.row(3));
        assert_eq!(s.row(1), v.row(1));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        let _ = Matrix::zero(0, 3);
    }
}
