//! Systematic Reed–Solomon codes over GF(256).
//!
//! The encode matrix is a Vandermonde matrix transformed so its top `d × d`
//! block is the identity (Plank's construction): data shards pass through
//! unchanged and each parity shard is a fixed GF(256)-linear combination of
//! the data shards. Any `d` surviving shards suffice to reconstruct all
//! `d + p`, so the code tolerates any `p` erasures — the "Reed-Solomon
//! Codes" case the paper lists among the redundancy schemes Redundant Share
//! supports.

use crate::code::{check_optional_shards, check_parity_inputs, check_shards, ErasureCode};
use crate::error::ErasureError;
use crate::gf256;
use crate::matrix::Matrix;

/// A systematic Reed–Solomon erasure code with `d` data and `p` parity
/// shards.
///
/// # Example
///
/// ```
/// use rshare_erasure::{ErasureCode, ReedSolomon};
///
/// let rs = ReedSolomon::new(4, 2).unwrap();
/// let mut shards: Vec<Vec<u8>> = vec![
///     b"abcd".to_vec(), b"efgh".to_vec(), b"ijkl".to_vec(), b"mnop".to_vec(),
///     vec![0; 4], vec![0; 4],
/// ];
/// rs.encode(&mut shards).unwrap();
///
/// // Lose any two shards…
/// let mut damaged: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
/// damaged[1] = None;
/// damaged[4] = None;
/// rs.reconstruct(&mut damaged).unwrap();
/// assert_eq!(damaged[1].as_deref(), Some(b"efgh".as_slice()));
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    /// `(d + p) × d` systematic encode matrix.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a code with `data` data shards and `parity` parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if either count is zero
    /// or `data + parity > 256` (GF(256) runs out of evaluation points).
    pub fn new(data: usize, parity: usize) -> Result<Self, ErasureError> {
        if data == 0 || parity == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "data and parity shard counts must be positive",
            });
        }
        if data + parity > 256 {
            return Err(ErasureError::InvalidParameters {
                reason: "GF(256) supports at most 256 total shards",
            });
        }
        let vandermonde = Matrix::vandermonde(data + parity, data);
        let top = vandermonde.select_rows(&(0..data).collect::<Vec<_>>());
        let inv = top.inverted().expect("top Vandermonde block is invertible");
        let encode_matrix = vandermonde.mul(&inv);
        Ok(Self {
            data,
            parity,
            encode_matrix,
        })
    }
}

impl ErasureCode for ReedSolomon {
    fn data_shards(&self) -> usize {
        self.data
    }

    fn parity_shards(&self) -> usize {
        self.parity
    }

    fn encode(&self, shards: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_shards(shards, self.total_shards(), 1)?;
        let (data, parity) = shards.split_at_mut(self.data);
        debug_assert!(data.iter().all(|d| d.len() == len));
        for (p, out) in parity.iter_mut().enumerate() {
            out.iter_mut().for_each(|b| *b = 0);
            let row = self.encode_matrix.row(self.data + p);
            gf256::mul_acc_many(out, data, row);
        }
        Ok(())
    }

    fn encode_parity(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_parity_inputs(data, parity.len(), self.data, self.parity, 1)?;
        for (p, out) in parity.iter_mut().enumerate() {
            out.clear();
            out.resize(len, 0);
            gf256::mul_acc_many(out, data, self.encode_matrix.row(self.data + p));
        }
        Ok(())
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        let (len, missing) = check_optional_shards(shards, self.total_shards(), 1, self.parity)?;
        if missing.is_empty() {
            return Ok(());
        }
        // Pick the first d surviving shards and invert their encode rows to
        // obtain a decode matrix mapping survivors -> data shards.
        let survivors: Vec<usize> = (0..self.total_shards())
            .filter(|i| shards[*i].is_some())
            .take(self.data)
            .collect();
        debug_assert_eq!(survivors.len(), self.data);
        let sub = self.encode_matrix.select_rows(&survivors);
        let decode = sub
            .inverted()
            .expect("any d Vandermonde-derived rows are invertible");
        // Rebuild missing data shards: the stripe is decoded once — each
        // target is one tiled multi-source pass ([`gf256::mul_acc_many`])
        // over the same survivor set, not a per-(target, survivor) loop.
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.data).collect();
        let survivor_refs: Vec<&[u8]> = survivors
            .iter()
            .map(|&src| shards[src].as_ref().expect("survivor present").as_slice())
            .collect();
        let rebuilt: Vec<(usize, Vec<u8>)> = missing_data
            .iter()
            .map(|&target| {
                let mut out = vec![0u8; len];
                gf256::mul_acc_many(&mut out, &survivor_refs, decode.row(target));
                (target, out)
            })
            .collect();
        drop(survivor_refs);
        for (target, out) in rebuilt {
            shards[target] = Some(out);
        }
        // Rebuild missing parity shards from the (now complete) data.
        let missing_parity: Vec<usize> = missing
            .iter()
            .copied()
            .filter(|&i| i >= self.data)
            .collect();
        if !missing_parity.is_empty() {
            let data_refs: Vec<&[u8]> = (0..self.data)
                .map(|j| shards[j].as_ref().expect("data rebuilt above").as_slice())
                .collect();
            let rebuilt: Vec<(usize, Vec<u8>)> = missing_parity
                .iter()
                .map(|&target| {
                    let mut out = vec![0u8; len];
                    gf256::mul_acc_many(&mut out, &data_refs, self.encode_matrix.row(target));
                    (target, out)
                })
                .collect();
            drop(data_refs);
            for (target, out) in rebuilt {
                shards[target] = Some(out);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shards(d: usize, p: usize, len: usize) -> Vec<Vec<u8>> {
        let mut shards: Vec<Vec<u8>> = (0..d)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 5) % 256) as u8)
                    .collect()
            })
            .collect();
        shards.extend(std::iter::repeat_with(|| vec![0u8; len]).take(p));
        shards
    }

    fn roundtrip(d: usize, p: usize, len: usize, lose: &[usize]) {
        let rs = ReedSolomon::new(d, p).unwrap();
        let mut shards = sample_shards(d, p, len);
        rs.encode(&mut shards).unwrap();
        let original = shards.clone();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &i in lose {
            damaged[i] = None;
        }
        rs.reconstruct(&mut damaged).unwrap();
        for (i, (got, want)) in damaged.iter().zip(&original).enumerate() {
            assert_eq!(got.as_ref().unwrap(), want, "shard {i} (d={d} p={p})");
        }
    }

    #[test]
    fn systematic_encoding_keeps_data() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let mut shards = sample_shards(3, 2, 16);
        let data_before: Vec<Vec<u8>> = shards[..3].to_vec();
        rs.encode(&mut shards).unwrap();
        assert_eq!(&shards[..3], data_before.as_slice());
    }

    #[test]
    fn all_single_and_double_erasures() {
        let (d, p) = (4, 2);
        for a in 0..d + p {
            roundtrip(d, p, 32, &[a]);
            for b in a + 1..d + p {
                roundtrip(d, p, 32, &[a, b]);
            }
        }
    }

    #[test]
    fn wide_code_max_erasures() {
        roundtrip(8, 4, 64, &[0, 3, 9, 11]);
        roundtrip(8, 4, 64, &[4, 5, 6, 7]);
        roundtrip(8, 4, 64, &[8, 9, 10, 11]);
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut shards = sample_shards(4, 2, 8);
        rs.encode(&mut shards).unwrap();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        damaged[0] = None;
        damaged[1] = None;
        damaged[2] = None;
        assert_eq!(
            rs.reconstruct(&mut damaged),
            Err(ErasureError::TooManyErasures {
                missing: 3,
                tolerated: 2
            })
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 100).is_err());
        assert!(ReedSolomon::new(255, 1).is_ok());
    }

    #[test]
    fn shard_validation() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let mut wrong_count = vec![vec![0u8; 4]; 2];
        assert!(matches!(
            rs.encode(&mut wrong_count),
            Err(ErasureError::WrongShardCount {
                expected: 3,
                got: 2
            })
        ));
        let mut uneven = vec![vec![0u8; 4], vec![0u8; 5], vec![0u8; 4]];
        assert_eq!(
            rs.encode(&mut uneven),
            Err(ErasureError::ShardLengthMismatch)
        );
    }

    #[test]
    fn reconstruct_with_nothing_missing_is_noop() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let mut shards = sample_shards(2, 1, 8);
        rs.encode(&mut shards).unwrap();
        let mut opt: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        rs.reconstruct(&mut opt).unwrap();
        for (a, b) in opt.iter().zip(&shards) {
            assert_eq!(a.as_ref().unwrap(), b);
        }
    }
}
