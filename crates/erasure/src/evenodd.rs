//! The EVENODD code (Blaum, Brady, Bruck, Menon 1995).
//!
//! EVENODD tolerates two erasures using XOR arithmetic only: for a prime
//! `p` it arranges `p` data columns of `p − 1` symbol rows each (with an
//! imaginary all-zero row `p − 1`), plus a *row parity* column and a
//! *diagonal parity* column. The diagonal parities carry a shared adjuster
//! `S` — the XOR of the "missing" diagonal — which makes the code MDS. It
//! is reference `[1]` in the paper's list of redundancy schemes supported
//! by Redundant Share, and a scheme where the identity of each sub-block
//! matters: every column has a distinct role.
//!
//! Shards are columns; a shard of `L` bytes is treated as `p − 1` symbols
//! of `L / (p − 1)` bytes.

use crate::code::{check_optional_shards, check_parity_inputs, check_shards, ErasureCode};
use crate::error::ErasureError;

/// Returns `true` if `n` is prime (trial division; parameters are tiny).
pub(crate) fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

use crate::gf256::xor_acc as xor_into;

/// The EVENODD double-erasure code with prime parameter `p`:
/// `p` data shards, 2 parity shards.
///
/// # Example
///
/// ```
/// use rshare_erasure::{ErasureCode, EvenOdd};
///
/// let code = EvenOdd::new(5).unwrap(); // 5 data + 2 parity shards
/// assert_eq!(code.total_shards(), 7);
/// // Shards must be a multiple of p - 1 = 4 bytes long.
/// let mut shards: Vec<Vec<u8>> = (0..7).map(|i| vec![i as u8; 4]).collect();
/// code.encode(&mut shards).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvenOdd {
    p: usize,
}

impl EvenOdd {
    /// Creates an EVENODD code for an odd prime `p ≥ 3` (so `p` data
    /// shards).
    ///
    /// `p = 2` is rejected: the adjuster-recovery identity
    /// `S = ⊕ rowparity ⊕ ⊕ diagparity` needs `p − 1` to be even.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if `p` is not an odd
    /// prime.
    pub fn new(p: usize) -> Result<Self, ErasureError> {
        if p < 3 || !is_prime(p) {
            return Err(ErasureError::InvalidParameters {
                reason: "EVENODD requires an odd prime number of data shards",
            });
        }
        Ok(Self { p })
    }

    /// The prime parameter `p`.
    #[must_use]
    pub fn prime(&self) -> usize {
        self.p
    }

    fn rows(&self) -> usize {
        self.p - 1
    }

    /// Byte range of symbol `row` inside a shard with symbol size `sz`.
    fn sym(row: usize, sz: usize) -> std::ops::Range<usize> {
        row * sz..(row + 1) * sz
    }

    /// XOR of the data cells on diagonal `d` (cells `(⟨d−j⟩_p, j)`), over
    /// the columns in `cols`, skipping the imaginary row `p − 1`.
    fn diag_xor(
        &self,
        shards: &[&[u8]],
        cols: impl Iterator<Item = usize>,
        d: usize,
        sz: usize,
        out: &mut [u8],
    ) {
        let p = self.p;
        for j in cols {
            let row = (d + p - j) % p;
            if row == p - 1 {
                continue;
            }
            xor_into(out, &shards[j][Self::sym(row, sz)]);
        }
    }

    /// Computes both parity columns from the data columns into zeroed
    /// `rowpar`/`diagpar` buffers (the shared body of `encode` and
    /// `encode_parity`).
    fn parity_into(&self, data: &[&[u8]], rowpar: &mut [u8], diagpar: &mut [u8], sz: usize) {
        let p = self.p;
        // Row parity.
        for col in data {
            xor_into(rowpar, col);
        }
        // Adjuster S = XOR of the diagonal through the imaginary row
        // (diagonal p - 1).
        let mut s = vec![0u8; sz];
        self.diag_xor(data, 0..p, p - 1, sz, &mut s);
        // Diagonal parity: cell d = S ⊕ (XOR of diagonal d).
        for d in 0..p - 1 {
            let mut cell = s.clone();
            self.diag_xor(data, 0..p, d, sz, &mut cell);
            diagpar[Self::sym(d, sz)].copy_from_slice(&cell);
        }
    }
}

impl ErasureCode for EvenOdd {
    fn data_shards(&self) -> usize {
        self.p
    }

    fn parity_shards(&self) -> usize {
        2
    }

    fn shard_multiple(&self) -> usize {
        self.rows()
    }

    fn encode(&self, shards: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_shards(shards, self.p + 2, self.rows())?;
        let sz = len / self.rows();
        let (data, parity) = shards.split_at_mut(self.p);
        let data_refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let (rowpar, diagpar) = parity.split_at_mut(1);
        rowpar[0].iter_mut().for_each(|b| *b = 0);
        diagpar[0].iter_mut().for_each(|b| *b = 0);
        self.parity_into(&data_refs, &mut rowpar[0], &mut diagpar[0], sz);
        Ok(())
    }

    fn encode_parity(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_parity_inputs(data, parity.len(), self.p, 2, self.rows())?;
        let sz = len / self.rows();
        for out in parity.iter_mut() {
            out.clear();
            out.resize(len, 0);
        }
        let (rowpar, diagpar) = parity.split_at_mut(1);
        self.parity_into(data, &mut rowpar[0], &mut diagpar[0], sz);
        Ok(())
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        let p = self.p;
        let (len, missing) = check_optional_shards(shards, p + 2, self.rows(), 2)?;
        if missing.is_empty() {
            return Ok(());
        }
        let sz = len / self.rows();
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < p).collect();
        let row_parity_alive = shards[p].is_some();
        match (missing_data.as_slice(), row_parity_alive) {
            // Only parity columns are missing: recompute from full data.
            ([], _) => {}
            // One data column missing, row parity alive: rebuild by rows.
            ([r], true) => {
                let r = *r;
                let mut col = shards[p].clone().expect("row parity alive");
                for (j, shard) in shards.iter().take(p).enumerate() {
                    if j == r {
                        continue;
                    }
                    xor_into(&mut col, shard.as_ref().expect("present data"));
                }
                shards[r] = Some(col);
            }
            // One data column + the row parity missing: decode via the
            // diagonal parities after recovering S.
            ([r], false) => {
                let r = *r;
                let refs: Vec<&[u8]> = (0..p + 2)
                    .map(|i| shards[i].as_deref().unwrap_or(&[]))
                    .collect();
                let diagpar = shards[p + 1].as_ref().expect("diag parity alive").clone();
                // Recover S from the diagonal whose column-r cell lies on
                // the imaginary row: d* = ⟨r − 1⟩_p.
                let d_star = (r + p - 1) % p;
                let mut s = vec![0u8; sz];
                if d_star == p - 1 {
                    // r = 0: S is the missing diagonal itself, whose
                    // column-0 cell is imaginary.
                    self.diag_xor(&refs, (0..p).filter(|&j| j != r), p - 1, sz, &mut s);
                } else {
                    s.copy_from_slice(&diagpar[Self::sym(d_star, sz)]);
                    self.diag_xor(&refs, (0..p).filter(|&j| j != r), d_star, sz, &mut s);
                }
                // Each remaining diagonal yields one cell of column r.
                let mut col = vec![0u8; len];
                for d in (0..p).filter(|&d| d != d_star) {
                    let row = (d + p - r) % p;
                    debug_assert_ne!(row, p - 1);
                    let mut cell = s.clone();
                    if d < p - 1 {
                        xor_into(&mut cell, &diagpar[Self::sym(d, sz)]);
                    }
                    // diag_d = S ⊕ parity cell (or S itself for d = p-1);
                    // subtract the known cells.
                    self.diag_xor(&refs, (0..p).filter(|&j| j != r), d, sz, &mut cell);
                    col[Self::sym(row, sz)].copy_from_slice(&cell);
                }
                shards[r] = Some(col);
            }
            // Two data columns missing (both parities alive by budget).
            ([r, s_col], _) => {
                let (r, s_col) = (*r, *s_col);
                let rowpar = shards[p].as_ref().expect("row parity alive").clone();
                let diagpar = shards[p + 1].as_ref().expect("diag parity alive").clone();
                // S = XOR of all row-parity symbols ⊕ all diagonal-parity
                // symbols.
                let mut s = vec![0u8; sz];
                for i in 0..p - 1 {
                    xor_into(&mut s, &rowpar[Self::sym(i, sz)]);
                    xor_into(&mut s, &diagpar[Self::sym(i, sz)]);
                }
                let refs: Vec<&[u8]> = (0..p + 2)
                    .map(|i| shards[i].as_deref().unwrap_or(&[]))
                    .collect();
                // Row syndromes S0(i) = X_r(i) ⊕ X_s(i).
                let mut s0 = vec![0u8; len];
                s0.copy_from_slice(&rowpar);
                for j in (0..p).filter(|&j| j != r && j != s_col) {
                    xor_into(&mut s0, refs[j]);
                }
                // Diagonal syndromes S1(d) = X_r(⟨d−r⟩) ⊕ X_s(⟨d−s⟩).
                let mut s1 = vec![vec![0u8; sz]; p];
                for (d, syn) in s1.iter_mut().enumerate() {
                    syn.copy_from_slice(&s);
                    if d < p - 1 {
                        xor_into(syn, &diagpar[Self::sym(d, sz)]);
                    }
                    self.diag_xor(&refs, (0..p).filter(|&j| j != r && j != s_col), d, sz, syn);
                }
                // Zig-zag chain starting from the imaginary row of column s.
                let mut col_r = vec![0u8; len];
                let mut col_s = vec![0u8; len];
                let mut i = p - 1; // imaginary row: X_s(p-1) = 0
                for _ in 0..p - 1 {
                    let d = (i + s_col) % p;
                    let i2 = (d + p - r) % p;
                    debug_assert_ne!(i2, p - 1);
                    // X_r(i2) = S1(d) ⊕ X_s(i).
                    let mut cell = s1[d].clone();
                    if i != p - 1 {
                        xor_into(&mut cell, &col_s[Self::sym(i, sz)]);
                    }
                    col_r[Self::sym(i2, sz)].copy_from_slice(&cell);
                    // X_s(i2) = S0(i2) ⊕ X_r(i2).
                    let mut cell_s = s0[Self::sym(i2, sz)].to_vec();
                    xor_into(&mut cell_s, &col_r[Self::sym(i2, sz)]);
                    col_s[Self::sym(i2, sz)].copy_from_slice(&cell_s);
                    i = i2;
                }
                shards[r] = Some(col_r);
                shards[s_col] = Some(col_s);
            }
            _ => unreachable!("erasure budget is 2"),
        }
        // All data is present now; recompute any missing parity.
        if shards[p].is_none() || shards[p + 1].is_none() {
            let mut full: Vec<Vec<u8>> = (0..p)
                .map(|i| shards[i].clone().expect("data complete"))
                .collect();
            full.push(shards[p].clone().unwrap_or_else(|| vec![0; len]));
            full.push(shards[p + 1].clone().unwrap_or_else(|| vec![0; len]));
            self.encode(&mut full)?;
            shards[p] = Some(full[p].clone());
            shards[p + 1] = Some(full[p + 1].clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: usize, sz: usize) -> Vec<Vec<u8>> {
        let rows = p - 1;
        let mut shards: Vec<Vec<u8>> = (0..p)
            .map(|c| {
                (0..rows * sz)
                    .map(|b| ((c * 251 + b * 13 + 7) % 256) as u8)
                    .collect()
            })
            .collect();
        shards.push(vec![0; rows * sz]);
        shards.push(vec![0; rows * sz]);
        shards
    }

    fn roundtrip(p: usize, sz: usize, lose: &[usize]) {
        let code = EvenOdd::new(p).unwrap();
        let mut shards = sample(p, sz);
        code.encode(&mut shards).unwrap();
        let original = shards.clone();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &i in lose {
            damaged[i] = None;
        }
        code.reconstruct(&mut damaged).unwrap();
        for (i, (got, want)) in damaged.iter().zip(&original).enumerate() {
            assert_eq!(got.as_ref().unwrap(), want, "p={p} lose={lose:?} shard {i}");
        }
    }

    #[test]
    fn all_double_erasures_p5() {
        let total = 7;
        for a in 0..total {
            roundtrip(5, 4, &[a]);
            for b in a + 1..total {
                roundtrip(5, 4, &[a, b]);
            }
        }
    }

    #[test]
    fn all_double_erasures_p3_and_p7() {
        for p in [3usize, 7] {
            let total = p + 2;
            for a in 0..total {
                for b in a + 1..total {
                    roundtrip(p, 3, &[a, b]);
                }
            }
        }
    }

    #[test]
    fn large_symbols_p11() {
        roundtrip(11, 64, &[2, 9]);
        roundtrip(11, 64, &[0, 12]);
    }

    #[test]
    fn rejects_non_odd_prime() {
        assert!(EvenOdd::new(4).is_err());
        assert!(EvenOdd::new(2).is_err(), "p = 2 is degenerate");
        assert!(EvenOdd::new(1).is_err());
        assert!(EvenOdd::new(0).is_err());
        assert!(EvenOdd::new(13).is_ok());
    }

    #[test]
    fn rejects_bad_shard_length() {
        let code = EvenOdd::new(5).unwrap();
        // 6 is not a multiple of p - 1 = 4.
        let mut shards: Vec<Vec<u8>> = (0..7).map(|_| vec![0u8; 6]).collect();
        assert_eq!(
            code.encode(&mut shards),
            Err(ErasureError::BadShardLength { multiple_of: 4 })
        );
    }

    #[test]
    fn triple_erasure_rejected() {
        let code = EvenOdd::new(3).unwrap();
        let mut shards = sample(3, 2);
        code.encode(&mut shards).unwrap();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        damaged[0] = None;
        damaged[1] = None;
        damaged[2] = None;
        assert!(matches!(
            code.reconstruct(&mut damaged),
            Err(ErasureError::TooManyErasures {
                missing: 3,
                tolerated: 2
            })
        ));
    }

    #[test]
    fn primality_helper() {
        let primes: Vec<usize> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }
}
