//! Erasure codes for redundancy groups.
//!
//! The paper notes that all Redundant Share results hold not only for plain
//! k-fold mirroring but for any redundancy technique in which the i-th
//! sub-block of a redundancy group has a distinct meaning — naming Parity
//! RAID, Reed–Solomon codes and EVENODD explicitly and citing Row-Diagonal
//! Parity. This crate implements those codes from scratch so the storage
//! virtualization layer (`rshare-vds`) can place erasure-coded redundancy
//! groups with Redundant Share: shard `i` of a group is stored on the i-th
//! bin the placement strategy returns.
//!
//! | Code | Data / parity shards | Tolerates | Arithmetic |
//! |---|---|---|---|
//! | [`XorParity`] | d / 1 | 1 erasure | XOR |
//! | [`EvenOdd`] (prime p) | p / 2 | 2 erasures | XOR |
//! | [`Rdp`] (prime p) | p−1 / 2 | 2 erasures | XOR |
//! | [`ReedSolomon`] | d / p | p erasures | GF(256) |
//! | [`MatrixCode`] (LRC) | g·s / g+p | p+1 guaranteed, more opportunistically | GF(256) |
//!
//! # Example
//!
//! ```
//! use rshare_erasure::{ErasureCode, ReedSolomon};
//!
//! let rs = ReedSolomon::new(3, 2).unwrap();
//! let mut shards = vec![vec![1u8; 8], vec![2; 8], vec![3; 8], vec![0; 8], vec![0; 8]];
//! rs.encode(&mut shards).unwrap();
//! let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! damaged[0] = None;
//! damaged[3] = None;
//! rs.reconstruct(&mut damaged).unwrap();
//! assert_eq!(damaged[0].as_deref(), Some([1u8; 8].as_slice()));
//! ```

// `deny` rather than `forbid`: the SIMD tier of the GF(256) kernels
// (`gf256::simd`) is the single sanctioned exception — `std::arch`
// intrinsics require `unsafe` — and it opts in with a narrowly scoped
// `#[allow(unsafe_code)]` plus `deny(unsafe_op_in_unsafe_fn)`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod error;
mod evenodd;
pub mod gf256;
pub mod matrix;
mod matrix_code;
mod parity;
mod rdp;
mod reed_solomon;

pub use code::ErasureCode;
pub use error::ErasureError;
pub use evenodd::EvenOdd;
pub use matrix_code::MatrixCode;
pub use parity::XorParity;
pub use rdp::Rdp;
pub use reed_solomon::ReedSolomon;
