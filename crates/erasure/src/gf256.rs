//! Arithmetic in GF(2⁸) with the Rijndael-compatible polynomial `0x11d`.
//!
//! Addition is XOR; scalar multiplication uses log/exp tables built once at
//! first use. The bulk kernels ([`mul_acc`], [`xor_acc`]) that form the
//! inner loops of every erasure code in this crate instead use a flat
//! 256×256 product table — one branch-free, bounds-check-free lookup per
//! byte — and an 8-bytes-per-iteration XOR fast path for coefficient 1.
//! The byte-at-a-time log/exp kernel survives as
//! [`mul_acc_bytewise`], the reference the property tests and the
//! `bench_e2e` report pin the table kernels against.

/// The irreducible polynomial x⁸ + x⁴ + x³ + x² + 1.
const POLY: u16 = 0x11d;

use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes processed by the word-at-a-time XOR kernel ([`xor_acc`],
/// including the coefficient-1 fast path of [`mul_acc`]).
static XOR_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes processed by the table-driven multiply kernel (`c >= 2`).
static MUL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bulk-kernel invocations that did work (zero-coefficient calls return
/// before touching data and are not counted).
static KERNEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative tallies of the bulk GF(256) kernels, maintained with
/// relaxed atomics — one `fetch_add` per kernel *call* (not per byte), so
/// the cost is amortised over an entire shard.
///
/// Only the production table kernels count; the reference
/// [`mul_acc_bytewise`] is left untouched so overhead comparisons against
/// it stay honest. Exporters poll [`kernel_stats`] and publish the fields
/// as monotone counters (e.g. `gf_mul_bytes_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Bytes XOR-accumulated (parity/EVENODD/RDP traffic plus every
    /// coefficient-1 Reed–Solomon row).
    pub xor_bytes: u64,
    /// Bytes run through the flat-table multiply (coefficients ≥ 2).
    pub mul_bytes: u64,
    /// Kernel invocations that processed data.
    pub calls: u64,
}

impl KernelStats {
    /// Total bytes processed by both kernels.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.xor_bytes + self.mul_bytes
    }
}

/// A snapshot of the cumulative kernel tallies.
#[must_use]
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        xor_bytes: XOR_BYTES.load(Ordering::Relaxed),
        mul_bytes: MUL_BYTES.load(Ordering::Relaxed),
        calls: KERNEL_CALLS.load(Ordering::Relaxed),
    }
}

/// Resets the kernel tallies to zero, returning the values they held —
/// benchmark harnesses bracket a measured region with this.
pub fn reset_kernel_stats() -> KernelStats {
    KernelStats {
        xor_bytes: XOR_BYTES.swap(0, Ordering::Relaxed),
        mul_bytes: MUL_BYTES.swap(0, Ordering::Relaxed),
        calls: KERNEL_CALLS.swap(0, Ordering::Relaxed),
    }
}

/// Log/exp tables: `EXP[i] = g^i` (doubled to avoid modular reduction in
/// `mul`), `LOG[x] = log_g x` for x != 0.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

#[allow(clippy::needless_range_loop)] // exp and log are filled in lockstep
fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Flat 256×256 multiplication table: `MUL[c * 256 + d] = c · d`.
///
/// 64 KiB total; any single coefficient's row is 256 bytes and stays
/// resident in L1 for the duration of a shard-sized [`mul_acc`] call.
fn mul_table() -> &'static [u8; 65536] {
    use std::sync::OnceLock;
    static MUL: OnceLock<Box<[u8; 65536]>> = OnceLock::new();
    MUL.get_or_init(|| {
        let t = tables();
        let mut m = vec![0u8; 65536].into_boxed_slice();
        for c in 1..256usize {
            let log_c = t.log[c] as usize;
            let row = &mut m[c * 256..(c + 1) * 256];
            for (d, slot) in row.iter_mut().enumerate().skip(1) {
                *slot = t.exp[log_c + t.log[d] as usize];
            }
        }
        m.try_into().expect("exactly 65536 entries")
    })
}

/// The 256-byte product row of a fixed coefficient: `mul_row(c)[d] = c · d`.
///
/// Indexing the returned array with a `u8` cast to `usize` compiles without
/// a bounds check, which is what makes the table-driven [`mul_acc`] kernel
/// branch-free per byte.
#[inline]
#[must_use]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    let start = c as usize * 256;
    mul_table()[start..start + 256]
        .try_into()
        .expect("row is 256 bytes")
}

/// Adds two field elements (XOR).
#[inline]
#[must_use]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Example
///
/// ```
/// use rshare_erasure::gf256;
/// assert_eq!(gf256::mul(0, 7), 0);
/// assert_eq!(gf256::mul(1, 7), 7);
/// // 2 · 0x80 wraps through the reduction polynomial:
/// assert_eq!(gf256::mul(2, 0x80), 0x1d);
/// ```
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// The multiplicative inverse of a non-zero element.
///
/// # Panics
///
/// Panics if `a == 0`; zero has no inverse.
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no multiplicative inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
#[must_use]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Raises `a` to the power `e`.
#[must_use]
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let log = u32::from(t.log[a as usize]);
    t.exp[((log * e) % 255) as usize]
}

/// XOR-accumulates `data` into `acc` (`acc[i] ^= data[i]`), 8 bytes per
/// iteration.
///
/// The aligned body reads both slices as native-endian `u64` words, so one
/// load/xor/store round replaces eight byte rounds; the sub-word tail runs
/// byte-wise. This is the coefficient-1 fast path of [`mul_acc`] and the
/// shared kernel behind the XOR-only codes (parity, EVENODD, RDP, LRC
/// local repair).
pub fn xor_acc(acc: &mut [u8], data: &[u8]) {
    debug_assert_eq!(acc.len(), data.len());
    XOR_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
    KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
    let mut a = acc.chunks_exact_mut(8);
    let mut d = data.chunks_exact(8);
    for (aw, dw) in (&mut a).zip(&mut d) {
        let x = u64::from_ne_bytes(aw.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(dw.try_into().expect("8-byte chunk"));
        aw.copy_from_slice(&x.to_ne_bytes());
    }
    for (aw, dw) in a.into_remainder().iter_mut().zip(d.remainder()) {
        *aw ^= dw;
    }
}

/// Multiplies every byte of `data` by the constant `c`, XOR-accumulating
/// into `acc` (`acc[i] ^= c · data[i]`). The inner loop of Reed–Solomon
/// encoding and decoding.
///
/// `c == 1` takes the word-at-a-time [`xor_acc`] path; other coefficients
/// stream through the coefficient's flat [`mul_row`] — one table byte per
/// data byte, no branch and no bounds check — sixteen bytes per iteration
/// so consecutive lookups pipeline.
pub fn mul_acc(acc: &mut [u8], data: &[u8], c: u8) {
    debug_assert_eq!(acc.len(), data.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_acc(acc, data);
        return;
    }
    MUL_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
    KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
    let row = mul_row(c);
    // Sixteen table lookups per iteration, packed into two independent u64
    // lanes that are folded into the accumulator with one load/xor/store
    // each — instead of sixteen byte-wide read-modify-writes. The two lanes
    // have no data dependency, so their lookups pipeline; the u8 -> usize
    // indexes into a [u8; 256] row need no bounds checks, so the loop body
    // is branch-free.
    let mut a = acc.chunks_exact_mut(16);
    let mut d = data.chunks_exact(16);
    for (aw, dw) in (&mut a).zip(&mut d) {
        let lo = u64::from_ne_bytes([
            row[dw[0] as usize],
            row[dw[1] as usize],
            row[dw[2] as usize],
            row[dw[3] as usize],
            row[dw[4] as usize],
            row[dw[5] as usize],
            row[dw[6] as usize],
            row[dw[7] as usize],
        ]);
        let hi = u64::from_ne_bytes([
            row[dw[8] as usize],
            row[dw[9] as usize],
            row[dw[10] as usize],
            row[dw[11] as usize],
            row[dw[12] as usize],
            row[dw[13] as usize],
            row[dw[14] as usize],
            row[dw[15] as usize],
        ]);
        let x = u64::from_ne_bytes(aw[..8].try_into().expect("8-byte chunk")) ^ lo;
        aw[..8].copy_from_slice(&x.to_ne_bytes());
        let y = u64::from_ne_bytes(aw[8..].try_into().expect("8-byte chunk")) ^ hi;
        aw[8..].copy_from_slice(&y.to_ne_bytes());
    }
    for (aw, &dw) in a.into_remainder().iter_mut().zip(d.remainder()) {
        *aw ^= row[dw as usize];
    }
}

/// Tile width for [`mul_acc_many`]: small enough that an output tile stays
/// L1-resident while every source streams through it, large enough that
/// per-tile loop overhead is negligible.
const ACC_TILE: usize = 8 * 1024;

/// Accumulates `Σ_j coeffs[j] · sources[j]` into `out`, tile by tile: all
/// sources are applied to one 8 KiB output tile (`ACC_TILE`) before moving
/// to the next, so the read-modify-write target stays in L1 instead of
/// being streamed through once per source — the access pattern an erasure
/// encode wants for shards larger than the cache.
///
/// Equivalent to calling [`mul_acc`] once per source over the full length.
pub fn mul_acc_many<S: AsRef<[u8]>>(out: &mut [u8], sources: &[S], coeffs: &[u8]) {
    debug_assert_eq!(sources.len(), coeffs.len());
    let len = out.len();
    let mut start = 0;
    while start < len {
        let end = (start + ACC_TILE).min(len);
        for (src, &c) in sources.iter().zip(coeffs) {
            let s = src.as_ref();
            debug_assert_eq!(s.len(), len);
            mul_acc(&mut out[start..end], &s[start..end], c);
        }
        start = end;
    }
}

/// The pre-table byte-at-a-time `mul_acc`: log/exp lookups with a per-byte
/// zero test. Kept as the reference kernel — the property tests pin
/// [`mul_acc`] against it bit for bit, and `bench_e2e` reports the
/// table-kernel speedup over it.
pub fn mul_acc_bytewise(acc: &mut [u8], data: &[u8], c: u8) {
    debug_assert_eq!(acc.len(), data.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (a, d) in acc.iter_mut().zip(data) {
            *a ^= d;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for (a, &d) in acc.iter_mut().zip(data) {
        if d != 0 {
            *a ^= t.exp[log_c + t.log[d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_exhaustive_samples() {
        // Associativity / commutativity / distributivity on a grid.
        for a in (0u16..256).step_by(7) {
            for b in (0u16..256).step_by(11) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0u16..256).step_by(29) {
                    let c = c as u8;
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverses_are_exact() {
        for a in 1u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn identity_and_zero() {
        for a in 0u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, 0), a);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 0x53, 0xca] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group for 0x11d.
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(seen.insert(x));
            x = mul(x, 2);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn mul_acc_matches_scalar() {
        let data: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1d, 0xff] {
            let mut acc = vec![0xAAu8; 256];
            let mut want = acc.clone();
            mul_acc(&mut acc, &data, c);
            for (w, &d) in want.iter_mut().zip(&data) {
                *w ^= mul(c, d);
            }
            assert_eq!(acc, want, "c = {c}");
        }
    }

    #[test]
    fn mul_table_matches_mul_exhaustively() {
        for c in 0u16..256 {
            let row = mul_row(c as u8);
            for d in 0u16..256 {
                assert_eq!(row[d as usize], mul(c as u8, d as u8), "{c} · {d}");
            }
        }
    }

    #[test]
    fn mul_acc_matches_bytewise_all_lengths() {
        // Odd lengths exercise both the unrolled body and the tail.
        for len in [0usize, 1, 3, 7, 8, 9, 31, 64, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 3, 0x1d, 0x8e, 0xff] {
                let mut fast = vec![0x5Au8; len];
                let mut slow = fast.clone();
                mul_acc(&mut fast, &data, c);
                mul_acc_bytewise(&mut slow, &data, c);
                assert_eq!(fast, slow, "c = {c} len = {len}");
            }
        }
    }

    #[test]
    fn xor_acc_matches_bytewise() {
        for len in [0usize, 1, 7, 8, 9, 16, 23, 64] {
            let data: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
            let mut fast = vec![0xA5u8; len];
            let mut slow = fast.clone();
            xor_acc(&mut fast, &data);
            for (a, d) in slow.iter_mut().zip(&data) {
                *a ^= d;
            }
            assert_eq!(fast, slow, "len = {len}");
        }
    }

    #[test]
    fn mul_acc_many_matches_per_source_passes() {
        // Lengths straddling the tile boundary, including non-multiples.
        for len in [
            0usize,
            1,
            100,
            ACC_TILE - 1,
            ACC_TILE,
            ACC_TILE + 37,
            3 * ACC_TILE + 5,
        ] {
            let sources: Vec<Vec<u8>> = (0..4u8)
                .map(|s| (0..len).map(|i| (i * 31 + s as usize * 7) as u8).collect())
                .collect();
            let coeffs = [0u8, 1, 0x1d, 0x8e];
            let mut tiled = vec![0u8; len];
            mul_acc_many(&mut tiled, &sources, &coeffs);
            let mut flat = vec![0u8; len];
            for (s, &c) in sources.iter().zip(&coeffs) {
                mul_acc(&mut flat, s, c);
            }
            assert_eq!(tiled, flat, "len = {len}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn kernel_stats_tally_bytes() {
        // Other tests drive the kernels concurrently, so only delta-style
        // assertions are race-safe: the counters are monotone between the
        // two snapshots, and our own traffic is a lower bound.
        let before = kernel_stats();
        let data = [0x5Au8; 192];
        let mut acc = [0u8; 192];
        xor_acc(&mut acc, &data);
        mul_acc(&mut acc, &data, 3);
        mul_acc(&mut acc, &data, 1); // counts as XOR traffic
        mul_acc(&mut acc, &data, 0); // no work, not counted
        let after = kernel_stats();
        assert!(after.xor_bytes >= before.xor_bytes + 384);
        assert!(after.mul_bytes >= before.mul_bytes + 192);
        assert!(after.calls >= before.calls + 3);
        assert_eq!(after.total_bytes(), after.xor_bytes + after.mul_bytes);
        // reset() hands back at least everything tallied so far.
        let drained = reset_kernel_stats();
        assert!(drained.xor_bytes >= after.xor_bytes);
        assert!(drained.mul_bytes >= after.mul_bytes);
    }
}
