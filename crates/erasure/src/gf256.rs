//! Arithmetic in GF(2⁸) with the Rijndael-compatible polynomial `0x11d`.
//!
//! Addition is XOR; scalar multiplication uses log/exp tables built once at
//! first use. The bulk kernels ([`mul_acc`], [`xor_acc`], [`mul_acc_many`])
//! that form the inner loops of every erasure code in this crate dispatch
//! through a three-tier engine selected once at startup:
//!
//! 1. **SIMD** ([`KernelTier::Simd`], [`simd`]) — x86-64 split-nibble
//!    `pshufb` kernels (AVX2 when available, SSSE3 otherwise): two 16-entry
//!    product tables per coefficient, 16/32 product bytes per shuffle pair.
//! 2. **SWAR** ([`KernelTier::Swar`]) — portable `u64` lane arithmetic:
//!    eight bytes are multiplied at once by carry-less shift-and-reduce
//!    over the bits of the coefficient. The tier for non-x86 targets and
//!    detection misses.
//! 3. **Table** ([`KernelTier::Table`]) — a flat 256×256 product table,
//!    one branch-free, bounds-check-free lookup per byte. The
//!    always-correct fallback every other tier is property-tested against.
//!
//! All tiers are bit-identical (GF(256) multiplication is exact — the
//! property tests pin this across tiers, offsets and lengths). The active
//! tier comes from runtime CPU detection, overridable with the
//! `RSHARE_GF256_KERNEL` environment variable (`simd`, `avx2`, `ssse3`,
//! `swar`, `table`, `auto`) or [`set_kernel_tier`] — the knob CI uses to
//! keep the fallback tiers covered. The byte-at-a-time log/exp kernel
//! survives as [`mul_acc_bytewise`], the reference the property tests and
//! the `bench_e2e` report pin every production kernel against.

/// The irreducible polynomial x⁸ + x⁴ + x³ + x² + 1.
const POLY: u16 = 0x11d;

// The SIMD tier is the one corner of the workspace that needs `unsafe`
// (std::arch intrinsics + #[target_feature]); the allowance is scoped to
// this module, every unsafe operation must sit in an explicitly justified
// `unsafe {}` block (`unsafe_op_in_unsafe_fn`), and the crate root keeps
// `deny(unsafe_code)` for everything else.
#[allow(unsafe_code)]
#[deny(unsafe_op_in_unsafe_fn)]
pub mod simd;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Bytes processed by the word-at-a-time XOR kernel ([`xor_acc`],
/// including the coefficient-1 fast path of [`mul_acc`]).
static XOR_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes processed by the multiply kernels (`c >= 2`), whatever the tier.
static MUL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Multiply bytes handled by the SIMD tier (subset of [`MUL_BYTES`]).
static SIMD_BYTES: AtomicU64 = AtomicU64::new(0);
/// Multiply bytes handled by the SWAR tier (subset of [`MUL_BYTES`]).
static SWAR_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bulk-kernel invocations that did work (zero-coefficient calls return
/// before touching data and are not counted).
static KERNEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative tallies of the bulk GF(256) kernels, maintained with
/// relaxed atomics — one `fetch_add` per kernel *call* (not per byte), so
/// the cost is amortised over an entire shard.
///
/// Only the production kernels count; the reference [`mul_acc_bytewise`]
/// is left untouched so overhead comparisons against it stay honest.
/// Exporters poll [`kernel_stats`] and publish the fields as monotone
/// counters (e.g. `gf_mul_bytes_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Bytes XOR-accumulated (parity/EVENODD/RDP traffic plus every
    /// coefficient-1 Reed–Solomon row).
    pub xor_bytes: u64,
    /// Bytes run through a multiply kernel (coefficients ≥ 2), all tiers.
    pub mul_bytes: u64,
    /// Multiply bytes handled by the SIMD tier (subset of `mul_bytes`).
    pub simd_bytes: u64,
    /// Multiply bytes handled by the SWAR tier (subset of `mul_bytes`).
    pub swar_bytes: u64,
    /// Kernel invocations that processed data.
    pub calls: u64,
}

impl KernelStats {
    /// Total bytes processed by both kernels.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.xor_bytes + self.mul_bytes
    }
}

/// A snapshot of the cumulative kernel tallies.
#[must_use]
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        xor_bytes: XOR_BYTES.load(Ordering::Relaxed),
        mul_bytes: MUL_BYTES.load(Ordering::Relaxed),
        simd_bytes: SIMD_BYTES.load(Ordering::Relaxed),
        swar_bytes: SWAR_BYTES.load(Ordering::Relaxed),
        calls: KERNEL_CALLS.load(Ordering::Relaxed),
    }
}

/// Resets the kernel tallies to zero, returning the values they held —
/// benchmark harnesses bracket a measured region with this.
pub fn reset_kernel_stats() -> KernelStats {
    KernelStats {
        xor_bytes: XOR_BYTES.swap(0, Ordering::Relaxed),
        mul_bytes: MUL_BYTES.swap(0, Ordering::Relaxed),
        simd_bytes: SIMD_BYTES.swap(0, Ordering::Relaxed),
        swar_bytes: SWAR_BYTES.swap(0, Ordering::Relaxed),
        calls: KERNEL_CALLS.swap(0, Ordering::Relaxed),
    }
}

/// One tier of the bulk-kernel engine, fastest first. See the module docs
/// for what each tier does; [`kernel_tier`] reports the active one and
/// [`set_kernel_tier`] overrides it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// x86-64 `pshufb` split-nibble kernels (AVX2 or SSSE3).
    Simd,
    /// Portable `u64` SWAR lanes.
    Swar,
    /// Flat 256×256 product table, byte at a time.
    Table,
}

impl KernelTier {
    /// The tier's lowercase name (`"simd"`, `"swar"`, `"table"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Simd => "simd",
            Self::Swar => "swar",
            Self::Table => "table",
        }
    }
}

/// Active-tier cell: `TIER_UNSET` until first use, then the
/// discriminant of the running [`KernelTier`].
static ACTIVE_TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);
const TIER_UNSET: u8 = 0xFF;
const TIER_SIMD: u8 = 0;
const TIER_SWAR: u8 = 1;
const TIER_TABLE: u8 = 2;

const fn tier_code(tier: KernelTier) -> u8 {
    match tier {
        KernelTier::Simd => TIER_SIMD,
        KernelTier::Swar => TIER_SWAR,
        KernelTier::Table => TIER_TABLE,
    }
}

/// The best tier the hardware supports: SIMD when the CPU has the needed
/// features, the portable SWAR lanes otherwise.
fn best_tier() -> KernelTier {
    if simd::available() {
        KernelTier::Simd
    } else {
        KernelTier::Swar
    }
}

/// First-use initialisation: the `RSHARE_GF256_KERNEL` environment
/// variable, downgraded to the best available tier when it asks for
/// hardware the machine lacks; plain CPU detection otherwise.
fn init_tier() -> KernelTier {
    let requested = std::env::var("RSHARE_GF256_KERNEL").ok();
    match requested.as_deref() {
        Some("table") => KernelTier::Table,
        Some("swar") => KernelTier::Swar,
        Some("avx2") => {
            if simd::force_level(simd::Level::Avx2) {
                KernelTier::Simd
            } else {
                best_tier()
            }
        }
        Some("ssse3") => {
            if simd::force_level(simd::Level::Ssse3) {
                KernelTier::Simd
            } else {
                best_tier()
            }
        }
        // "simd", "auto", unset and unrecognised values all detect.
        _ => best_tier(),
    }
}

/// The tier the bulk kernels currently dispatch through.
#[must_use]
pub fn kernel_tier() -> KernelTier {
    match ACTIVE_TIER.load(Ordering::Relaxed) {
        TIER_SIMD => KernelTier::Simd,
        TIER_SWAR => KernelTier::Swar,
        TIER_TABLE => KernelTier::Table,
        _ => {
            let tier = init_tier();
            // A concurrent first call may race this store; both sides
            // compute the same value, so last-write-wins is harmless.
            ACTIVE_TIER.store(tier_code(tier), Ordering::Relaxed);
            tier
        }
    }
}

/// Overrides the dispatch tier, returning the tier actually installed:
/// asking for [`KernelTier::Simd`] on hardware without SSSE3 installs (and
/// returns) [`KernelTier::Swar`] instead. A testing/benchmark knob — the
/// equivalence property tests run every tier through it, and `bench_e2e`
/// brackets per-tier measurements with it. Process-global; all tiers are
/// bit-identical, so flipping it mid-flight changes speed, never results.
pub fn set_kernel_tier(tier: KernelTier) -> KernelTier {
    let installed = match tier {
        KernelTier::Simd if !simd::available() => KernelTier::Swar,
        other => other,
    };
    ACTIVE_TIER.store(tier_code(installed), Ordering::Relaxed);
    installed
}

/// Log/exp tables: `EXP[i] = g^i` (doubled to avoid modular reduction in
/// `mul`), `LOG[x] = log_g x` for x != 0.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

#[allow(clippy::needless_range_loop)] // exp and log are filled in lockstep
fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Flat 256×256 multiplication table: `MUL[c * 256 + d] = c · d`.
///
/// 64 KiB total; any single coefficient's row is 256 bytes and stays
/// resident in L1 for the duration of a shard-sized [`mul_acc`] call.
fn mul_table() -> &'static [u8; 65536] {
    use std::sync::OnceLock;
    static MUL: OnceLock<Box<[u8; 65536]>> = OnceLock::new();
    MUL.get_or_init(|| {
        let t = tables();
        let mut m = vec![0u8; 65536].into_boxed_slice();
        for c in 1..256usize {
            let log_c = t.log[c] as usize;
            let row = &mut m[c * 256..(c + 1) * 256];
            for (d, slot) in row.iter_mut().enumerate().skip(1) {
                *slot = t.exp[log_c + t.log[d] as usize];
            }
        }
        m.try_into().expect("exactly 65536 entries")
    })
}

/// The 256-byte product row of a fixed coefficient: `mul_row(c)[d] = c · d`.
///
/// Indexing the returned array with a `u8` cast to `usize` compiles without
/// a bounds check, which is what makes the table-driven [`mul_acc`] kernel
/// branch-free per byte.
#[inline]
#[must_use]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    let start = c as usize * 256;
    mul_table()[start..start + 256]
        .try_into()
        .expect("row is 256 bytes")
}

/// Adds two field elements (XOR).
#[inline]
#[must_use]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Example
///
/// ```
/// use rshare_erasure::gf256;
/// assert_eq!(gf256::mul(0, 7), 0);
/// assert_eq!(gf256::mul(1, 7), 7);
/// // 2 · 0x80 wraps through the reduction polynomial:
/// assert_eq!(gf256::mul(2, 0x80), 0x1d);
/// ```
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// The multiplicative inverse of a non-zero element.
///
/// # Panics
///
/// Panics if `a == 0`; zero has no inverse.
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no multiplicative inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
#[must_use]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Raises `a` to the power `e`.
#[must_use]
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let log = u32::from(t.log[a as usize]);
    t.exp[((log * e) % 255) as usize]
}

/// XOR-accumulates `data` into `acc` (`acc[i] ^= data[i]`).
///
/// The lengths are asserted equal once up front; the body then runs
/// word-at-a-time with no per-chunk checks. This is the coefficient-1
/// fast path of [`mul_acc`] and the shared kernel behind the XOR-only
/// codes (parity, EVENODD, RDP, LRC local repair). The SIMD tier widens
/// the word to 32 bytes (AVX2); every other tier uses native `u64` words.
///
/// # Panics
///
/// Panics if `acc.len() != data.len()`.
pub fn xor_acc(acc: &mut [u8], data: &[u8]) {
    assert_eq!(acc.len(), data.len(), "xor_acc slices must match");
    XOR_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
    KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
    match kernel_tier() {
        KernelTier::Simd => simd::xor_acc(acc, data),
        KernelTier::Swar | KernelTier::Table => xor_acc_words(acc, data),
    }
}

/// Like [`xor_acc`], but through an explicit tier — the side-effect-free
/// dispatch the equivalence tests and per-tier benchmarks use (the global
/// tier is left untouched). [`KernelTier::Simd`] on hardware without
/// SSSE3 silently runs the SWAR body instead.
///
/// # Panics
///
/// Panics if `acc.len() != data.len()`.
pub fn xor_acc_with(tier: KernelTier, acc: &mut [u8], data: &[u8]) {
    assert_eq!(acc.len(), data.len(), "xor_acc slices must match");
    match tier {
        KernelTier::Simd if simd::available() => simd::xor_acc(acc, data),
        _ => xor_acc_words(acc, data),
    }
}

/// The portable XOR body: native-endian `u64` words, byte-wise tail. One
/// load/xor/store round replaces eight byte rounds.
#[inline(always)]
fn xor_acc_words(acc: &mut [u8], data: &[u8]) {
    let mut a = acc.chunks_exact_mut(8);
    let mut d = data.chunks_exact(8);
    for (aw, dw) in (&mut a).zip(&mut d) {
        let x = u64::from_ne_bytes(aw.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(dw.try_into().expect("8-byte chunk"));
        aw.copy_from_slice(&x.to_ne_bytes());
    }
    for (aw, dw) in a.into_remainder().iter_mut().zip(d.remainder()) {
        *aw ^= dw;
    }
}

/// Multiplies every byte of `data` by the constant `c`, XOR-accumulating
/// into `acc` (`acc[i] ^= c · data[i]`). The inner loop of Reed–Solomon
/// encoding and decoding.
///
/// `c == 0` is a no-op and `c == 1` takes the [`xor_acc`] path; other
/// coefficients go through the active [`KernelTier`]. The lengths are
/// asserted equal once up front so the tier bodies run without per-chunk
/// checks.
///
/// # Panics
///
/// Panics if `acc.len() != data.len()`.
pub fn mul_acc(acc: &mut [u8], data: &[u8], c: u8) {
    assert_eq!(acc.len(), data.len(), "mul_acc slices must match");
    if c == 0 {
        return;
    }
    if c == 1 {
        XOR_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
        KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
        match kernel_tier() {
            KernelTier::Simd => simd::xor_acc(acc, data),
            KernelTier::Swar | KernelTier::Table => xor_acc_words(acc, data),
        }
        return;
    }
    MUL_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
    KERNEL_CALLS.fetch_add(1, Ordering::Relaxed);
    match kernel_tier() {
        KernelTier::Simd => {
            SIMD_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
            simd::mul_acc(acc, data, c);
        }
        KernelTier::Swar => {
            SWAR_BYTES.fetch_add(data.len() as u64, Ordering::Relaxed);
            mul_acc_swar(acc, data, c);
        }
        KernelTier::Table => mul_acc_table(acc, data, c),
    }
}

/// Like [`mul_acc`], but through an explicit tier — the side-effect-free
/// dispatch the equivalence tests and per-tier benchmarks use (the global
/// tier is left untouched, and the tier counters are not tallied).
/// [`KernelTier::Simd`] on hardware without SSSE3 silently runs the SWAR
/// body instead.
///
/// # Panics
///
/// Panics if `acc.len() != data.len()`.
pub fn mul_acc_with(tier: KernelTier, acc: &mut [u8], data: &[u8], c: u8) {
    assert_eq!(acc.len(), data.len(), "mul_acc slices must match");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_acc_with(tier, acc, data);
        return;
    }
    match tier {
        KernelTier::Simd if simd::available() => simd::mul_acc(acc, data, c),
        KernelTier::Simd | KernelTier::Swar => mul_acc_swar(acc, data, c),
        KernelTier::Table => mul_acc_table(acc, data, c),
    }
}

/// The SWAR multiply body: eight bytes per iteration as one `u64` of
/// independent lanes, shift-and-reduce over the bits of `c` (at most
/// eight doubling rounds, no per-byte table traffic). The sub-word tail
/// reuses the coefficient's product row.
#[inline(always)]
fn mul_acc_swar(acc: &mut [u8], data: &[u8], c: u8) {
    let mut a = acc.chunks_exact_mut(8);
    let mut d = data.chunks_exact(8);
    for (aw, dw) in (&mut a).zip(&mut d) {
        let x = u64::from_ne_bytes(aw.try_into().expect("8-byte chunk"))
            ^ mul_word_swar(u64::from_ne_bytes(dw.try_into().expect("8-byte chunk")), c);
        aw.copy_from_slice(&x.to_ne_bytes());
    }
    let row = mul_row(c);
    for (aw, &dw) in a.into_remainder().iter_mut().zip(d.remainder()) {
        *aw ^= row[dw as usize];
    }
}

/// Multiplies all eight byte lanes of `x` by `c`: Russian-peasant
/// multiplication where the per-lane doubling is carried out on the whole
/// word — the lane top bits are masked off before the shift and folded
/// back as the reduction polynomial `0x1d`, so lanes never interact.
#[inline(always)]
fn mul_word_swar(mut x: u64, c: u8) -> u64 {
    const TOP: u64 = 0x8080_8080_8080_8080;
    const LOW: u64 = 0xFEFE_FEFE_FEFE_FEFE;
    let mut product = 0u64;
    let mut c = c;
    loop {
        if c & 1 != 0 {
            product ^= x;
        }
        c >>= 1;
        if c == 0 {
            return product;
        }
        let carries = x & TOP;
        // `carries >> 7` leaves a 0/1 bit at each lane's bottom; the
        // multiply broadcasts it to `0x1d` without crossing lanes.
        x = ((x << 1) & LOW) ^ ((carries >> 7) * 0x1d);
    }
}

/// The table multiply body: sixteen product-row lookups per iteration,
/// packed into two independent u64 lanes that are folded into the
/// accumulator with one load/xor/store each — instead of sixteen
/// byte-wide read-modify-writes. The two lanes have no data dependency,
/// so their lookups pipeline; the `u8 -> usize` indexes into a
/// `[u8; 256]` row need no bounds checks, so the loop body is
/// branch-free.
#[inline(always)]
fn mul_acc_table(acc: &mut [u8], data: &[u8], c: u8) {
    let row = mul_row(c);
    let mut a = acc.chunks_exact_mut(16);
    let mut d = data.chunks_exact(16);
    for (aw, dw) in (&mut a).zip(&mut d) {
        let lo = u64::from_ne_bytes([
            row[dw[0] as usize],
            row[dw[1] as usize],
            row[dw[2] as usize],
            row[dw[3] as usize],
            row[dw[4] as usize],
            row[dw[5] as usize],
            row[dw[6] as usize],
            row[dw[7] as usize],
        ]);
        let hi = u64::from_ne_bytes([
            row[dw[8] as usize],
            row[dw[9] as usize],
            row[dw[10] as usize],
            row[dw[11] as usize],
            row[dw[12] as usize],
            row[dw[13] as usize],
            row[dw[14] as usize],
            row[dw[15] as usize],
        ]);
        let x = u64::from_ne_bytes(aw[..8].try_into().expect("8-byte chunk")) ^ lo;
        aw[..8].copy_from_slice(&x.to_ne_bytes());
        let y = u64::from_ne_bytes(aw[8..].try_into().expect("8-byte chunk")) ^ hi;
        aw[8..].copy_from_slice(&y.to_ne_bytes());
    }
    for (aw, &dw) in a.into_remainder().iter_mut().zip(d.remainder()) {
        *aw ^= row[dw as usize];
    }
}

/// Tile width for [`mul_acc_many`]: small enough that an output tile stays
/// L1-resident while every source streams through it, large enough that
/// per-tile loop overhead is negligible.
const ACC_TILE: usize = 8 * 1024;

/// Accumulates `Σ_j coeffs[j] · sources[j]` into `out`, tile by tile: all
/// sources are applied to one 8 KiB output tile (`ACC_TILE`) before moving
/// to the next, so the read-modify-write target stays in L1 instead of
/// being streamed through once per source — the access pattern an erasure
/// encode wants for shards larger than the cache. Each tile pass runs
/// through the active [`KernelTier`].
///
/// Equivalent to calling [`mul_acc`] once per source over the full length,
/// except the kernel statistics are tallied once for the whole bulk
/// operation — one [`KernelStats::calls`] entry per live (non-zero)
/// coefficient, byte totals summed up front — instead of once per
/// tile × source, keeping atomic traffic off the encode inner loop.
pub fn mul_acc_many<S: AsRef<[u8]>>(out: &mut [u8], sources: &[S], coeffs: &[u8]) {
    debug_assert_eq!(sources.len(), coeffs.len());
    if out.is_empty() {
        return;
    }
    let tier = kernel_tier();
    let len = out.len() as u64;
    let xors = coeffs.iter().filter(|&&c| c == 1).count() as u64;
    let muls = coeffs.iter().filter(|&&c| c > 1).count() as u64;
    if xors > 0 {
        XOR_BYTES.fetch_add(xors * len, Ordering::Relaxed);
    }
    if muls > 0 {
        MUL_BYTES.fetch_add(muls * len, Ordering::Relaxed);
        match tier {
            KernelTier::Simd => SIMD_BYTES.fetch_add(muls * len, Ordering::Relaxed),
            KernelTier::Swar => SWAR_BYTES.fetch_add(muls * len, Ordering::Relaxed),
            KernelTier::Table => 0,
        };
    }
    if xors + muls > 0 {
        KERNEL_CALLS.fetch_add(xors + muls, Ordering::Relaxed);
    }
    mul_acc_many_with(tier, out, sources, coeffs);
}

/// Like [`mul_acc_many`], but every tile pass goes through an explicit
/// tier (see [`mul_acc_with`]).
pub fn mul_acc_many_with<S: AsRef<[u8]>>(
    tier: KernelTier,
    out: &mut [u8],
    sources: &[S],
    coeffs: &[u8],
) {
    debug_assert_eq!(sources.len(), coeffs.len());
    let len = out.len();
    let mut start = 0;
    while start < len {
        let end = (start + ACC_TILE).min(len);
        for (src, &c) in sources.iter().zip(coeffs) {
            let s = src.as_ref();
            debug_assert_eq!(s.len(), len);
            mul_acc_with(tier, &mut out[start..end], &s[start..end], c);
        }
        start = end;
    }
}

/// The pre-table byte-at-a-time `mul_acc`: log/exp lookups with a per-byte
/// zero test. Kept as the reference kernel — the property tests pin every
/// tier of [`mul_acc`] against it bit for bit, and `bench_e2e` reports the
/// tiered-kernel speedups over it.
pub fn mul_acc_bytewise(acc: &mut [u8], data: &[u8], c: u8) {
    debug_assert_eq!(acc.len(), data.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (a, d) in acc.iter_mut().zip(data) {
            *a ^= d;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for (a, &d) in acc.iter_mut().zip(data) {
        if d != 0 {
            *a ^= t.exp[log_c + t.log[d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_exhaustive_samples() {
        // Associativity / commutativity / distributivity on a grid.
        for a in (0u16..256).step_by(7) {
            for b in (0u16..256).step_by(11) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0u16..256).step_by(29) {
                    let c = c as u8;
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverses_are_exact() {
        for a in 1u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn identity_and_zero() {
        for a in 0u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, 0), a);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 0x53, 0xca] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group for 0x11d.
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(seen.insert(x));
            x = mul(x, 2);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn mul_acc_matches_scalar() {
        let data: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1d, 0xff] {
            let mut acc = vec![0xAAu8; 256];
            let mut want = acc.clone();
            mul_acc(&mut acc, &data, c);
            for (w, &d) in want.iter_mut().zip(&data) {
                *w ^= mul(c, d);
            }
            assert_eq!(acc, want, "c = {c}");
        }
    }

    #[test]
    fn mul_table_matches_mul_exhaustively() {
        for c in 0u16..256 {
            let row = mul_row(c as u8);
            for d in 0u16..256 {
                assert_eq!(row[d as usize], mul(c as u8, d as u8), "{c} · {d}");
            }
        }
    }

    #[test]
    fn all_tiers_match_bytewise_all_lengths() {
        // Odd lengths exercise both the wide bodies and the tails.
        let tiers = [KernelTier::Simd, KernelTier::Swar, KernelTier::Table];
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for c in [0u8, 1, 2, 3, 0x1d, 0x8e, 0xff] {
                let mut slow = vec![0x5Au8; len];
                mul_acc_bytewise(&mut slow, &data, c);
                for tier in tiers {
                    let mut fast = vec![0x5Au8; len];
                    mul_acc_with(tier, &mut fast, &data, c);
                    assert_eq!(fast, slow, "tier = {tier:?} c = {c} len = {len}");
                }
                // The global dispatch agrees with whatever tier is active.
                let mut fast = vec![0x5Au8; len];
                mul_acc(&mut fast, &data, c);
                assert_eq!(fast, slow, "active tier c = {c} len = {len}");
            }
        }
    }

    #[test]
    fn swar_word_multiply_matches_scalar() {
        for c in [2u8, 3, 0x1d, 0x80, 0xff] {
            let bytes: [u8; 8] = [0, 1, 2, 0x7f, 0x80, 0x9a, 0xfe, 0xff];
            let got = mul_word_swar(u64::from_ne_bytes(bytes), c).to_ne_bytes();
            for (g, &b) in got.iter().zip(&bytes) {
                assert_eq!(*g, mul(c, b), "c = {c} b = {b}");
            }
        }
    }

    #[test]
    fn xor_acc_matches_bytewise() {
        for len in [0usize, 1, 7, 8, 9, 16, 23, 31, 32, 33, 64] {
            let data: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
            let mut slow = vec![0xA5u8; len];
            for (a, d) in slow.iter_mut().zip(&data) {
                *a ^= d;
            }
            for tier in [KernelTier::Simd, KernelTier::Swar, KernelTier::Table] {
                let mut fast = vec![0xA5u8; len];
                xor_acc_with(tier, &mut fast, &data);
                assert_eq!(fast, slow, "tier = {tier:?} len = {len}");
            }
            let mut fast = vec![0xA5u8; len];
            xor_acc(&mut fast, &data);
            assert_eq!(fast, slow, "len = {len}");
        }
    }

    #[test]
    fn mul_acc_many_matches_per_source_passes() {
        // Lengths straddling the tile boundary, including non-multiples.
        for len in [
            0usize,
            1,
            100,
            ACC_TILE - 1,
            ACC_TILE,
            ACC_TILE + 37,
            3 * ACC_TILE + 5,
        ] {
            let sources: Vec<Vec<u8>> = (0..4u8)
                .map(|s| (0..len).map(|i| (i * 31 + s as usize * 7) as u8).collect())
                .collect();
            let coeffs = [0u8, 1, 0x1d, 0x8e];
            let mut flat = vec![0u8; len];
            for (s, &c) in sources.iter().zip(&coeffs) {
                mul_acc(&mut flat, s, c);
            }
            let mut tiled = vec![0u8; len];
            mul_acc_many(&mut tiled, &sources, &coeffs);
            assert_eq!(tiled, flat, "len = {len}");
            for tier in [KernelTier::Simd, KernelTier::Swar, KernelTier::Table] {
                let mut tiered = vec![0u8; len];
                mul_acc_many_with(tier, &mut tiered, &sources, &coeffs);
                assert_eq!(tiered, flat, "tier = {tier:?} len = {len}");
            }
        }
    }

    #[test]
    fn tier_override_round_trips() {
        let before = kernel_tier();
        // Table and SWAR are always installable verbatim.
        assert_eq!(set_kernel_tier(KernelTier::Table), KernelTier::Table);
        assert_eq!(kernel_tier(), KernelTier::Table);
        assert_eq!(set_kernel_tier(KernelTier::Swar), KernelTier::Swar);
        // SIMD downgrades to SWAR when the hardware lacks it.
        let installed = set_kernel_tier(KernelTier::Simd);
        if simd::available() {
            assert_eq!(installed, KernelTier::Simd);
        } else {
            assert_eq!(installed, KernelTier::Swar);
        }
        assert_eq!(kernel_tier(), installed);
        assert_eq!(
            installed.name(),
            if simd::available() { "simd" } else { "swar" }
        );
        set_kernel_tier(before);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    #[should_panic(expected = "mul_acc slices must match")]
    fn mul_acc_length_mismatch_panics() {
        let mut acc = [0u8; 4];
        mul_acc(&mut acc, &[0u8; 5], 3);
    }

    #[test]
    fn kernel_stats_tally_bytes() {
        // Other tests drive the kernels concurrently, so only delta-style
        // assertions are race-safe: the counters are monotone between the
        // two snapshots, and our own traffic is a lower bound.
        let before = kernel_stats();
        let data = [0x5Au8; 192];
        let mut acc = [0u8; 192];
        xor_acc(&mut acc, &data);
        mul_acc(&mut acc, &data, 3);
        mul_acc(&mut acc, &data, 1); // counts as XOR traffic
        mul_acc(&mut acc, &data, 0); // no work, not counted
        let after = kernel_stats();
        assert!(after.xor_bytes >= before.xor_bytes + 384);
        assert!(after.mul_bytes >= before.mul_bytes + 192);
        assert!(after.calls >= before.calls + 3);
        assert_eq!(after.total_bytes(), after.xor_bytes + after.mul_bytes);
        // Tier sub-tallies never exceed the total multiply traffic.
        assert!(after.simd_bytes + after.swar_bytes <= after.mul_bytes);
        // reset() hands back at least everything tallied so far.
        let drained = reset_kernel_stats();
        assert!(drained.xor_bytes >= after.xor_bytes);
        assert!(drained.mul_bytes >= after.mul_bytes);
    }
}
