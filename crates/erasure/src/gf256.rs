//! Arithmetic in GF(2⁸) with the Rijndael-compatible polynomial `0x11d`.
//!
//! Addition is XOR; multiplication uses log/exp tables built once at first
//! use. The field underlies the Reed–Solomon code in
//! the Reed-Solomon module.

/// The irreducible polynomial x⁸ + x⁴ + x³ + x² + 1.
const POLY: u16 = 0x11d;

/// Log/exp tables: `EXP[i] = g^i` (doubled to avoid modular reduction in
/// `mul`), `LOG[x] = log_g x` for x != 0.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

#[allow(clippy::needless_range_loop)] // exp and log are filled in lockstep
fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
#[inline]
#[must_use]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Example
///
/// ```
/// use rshare_erasure::gf256;
/// assert_eq!(gf256::mul(0, 7), 0);
/// assert_eq!(gf256::mul(1, 7), 7);
/// // 2 · 0x80 wraps through the reduction polynomial:
/// assert_eq!(gf256::mul(2, 0x80), 0x1d);
/// ```
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// The multiplicative inverse of a non-zero element.
///
/// # Panics
///
/// Panics if `a == 0`; zero has no inverse.
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no multiplicative inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
#[must_use]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Raises `a` to the power `e`.
#[must_use]
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let log = u32::from(t.log[a as usize]);
    t.exp[((log * e) % 255) as usize]
}

/// Multiplies every byte of `data` by the constant `c`, XOR-accumulating
/// into `acc` (`acc[i] ^= c · data[i]`). The inner loop of Reed–Solomon
/// encoding and decoding.
pub fn mul_acc(acc: &mut [u8], data: &[u8], c: u8) {
    debug_assert_eq!(acc.len(), data.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (a, d) in acc.iter_mut().zip(data) {
            *a ^= d;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize] as usize;
    for (a, &d) in acc.iter_mut().zip(data) {
        if d != 0 {
            *a ^= t.exp[log_c + t.log[d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_exhaustive_samples() {
        // Associativity / commutativity / distributivity on a grid.
        for a in (0u16..256).step_by(7) {
            for b in (0u16..256).step_by(11) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0u16..256).step_by(29) {
                    let c = c as u8;
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverses_are_exact() {
        for a in 1u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn identity_and_zero() {
        for a in 0u16..256 {
            let a = a as u8;
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, 0), a);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 0x53, 0xca] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group for 0x11d.
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(seen.insert(x));
            x = mul(x, 2);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn mul_acc_matches_scalar() {
        let data: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1d, 0xff] {
            let mut acc = vec![0xAAu8; 256];
            let mut want = acc.clone();
            mul_acc(&mut acc, &data, c);
            for (w, &d) in want.iter_mut().zip(&data) {
                *w ^= mul(c, d);
            }
            assert_eq!(acc, want, "c = {c}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }
}
