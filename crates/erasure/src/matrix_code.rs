//! Generic systematic linear codes over GF(256), and Local Reconstruction
//! Codes built on them.
//!
//! [`MatrixCode`] turns *any* systematic generator matrix into an
//! [`ErasureCode`]: encoding multiplies the data by the parity rows, and
//! reconstruction greedily selects a full-rank set of surviving rows,
//! inverts it, and recovers the data — so every erasure pattern that is
//! information-theoretically decodable under the chosen matrix is
//! decoded, not just the worst-case-guaranteed ones.
//!
//! Two constructors cover the interesting instances:
//!
//! * [`MatrixCode::reed_solomon`] — the MDS Vandermonde construction
//!   (equivalent to [`crate::ReedSolomon`]; the unit tests pin the two
//!   against each other), and
//! * [`MatrixCode::local_reconstruction`] — an LRC in the style of Azure /
//!   HDFS: the data is split into groups, each protected by a *local* XOR
//!   parity (single-shard repairs touch only the small group — cheap
//!   rebuild traffic), plus *global* Reed–Solomon parities for burst
//!   failures. LRCs matter here because rebuild traffic is exactly what
//!   the paper's adaptivity experiments measure on the placement side.

use crate::code::{check_parity_inputs, check_shards, ErasureCode};
use crate::error::ErasureError;
use crate::gf256;
use crate::matrix::Matrix;

/// An erasure code defined by a systematic generator matrix.
///
/// The generator has `total` rows and `data` columns; the top `data × data`
/// block must be the identity (systematic layout: shard `i < data` is data
/// shard `i`).
///
/// # Example
///
/// ```
/// use rshare_erasure::{ErasureCode, MatrixCode};
///
/// // An LRC with 2 groups of 2 data shards, 1 global parity: 4+2+1 shards.
/// let lrc = MatrixCode::local_reconstruction(2, 2, 1).unwrap();
/// assert_eq!(lrc.total_shards(), 7);
/// let mut shards: Vec<Vec<u8>> = (0..7).map(|i| vec![i as u8; 8]).collect();
/// lrc.encode(&mut shards).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCode {
    generator: Matrix,
    data: usize,
    guaranteed: usize,
    /// Shard groups for fast local repair: `local_groups[g] = (members,
    /// parity_row)` such that `shard[parity_row] = XOR of members`.
    local_groups: Vec<(Vec<usize>, usize)>,
}

impl MatrixCode {
    /// Builds a code from a systematic generator matrix.
    ///
    /// `guaranteed` is the number of erasures the caller guarantees to be
    /// always decodable (reported via
    /// [`ErasureCode::tolerated_erasures`]); patterns beyond it are still
    /// *attempted* and succeed whenever the surviving rows span the data.
    ///
    /// # Errors
    ///
    /// [`ErasureError::InvalidParameters`] if the matrix is not systematic
    /// or has no parity rows.
    pub fn new(generator: Matrix, data: usize, guaranteed: usize) -> Result<Self, ErasureError> {
        if data == 0 || generator.rows() <= data || generator.cols() != data {
            return Err(ErasureError::InvalidParameters {
                reason: "generator must be (data + parity) x data with parity > 0",
            });
        }
        for i in 0..data {
            for j in 0..data {
                let want = u8::from(i == j);
                if generator[(i, j)] != want {
                    return Err(ErasureError::InvalidParameters {
                        reason: "generator top block must be the identity (systematic)",
                    });
                }
            }
        }
        Ok(Self {
            generator,
            data,
            guaranteed,
            local_groups: Vec::new(),
        })
    }

    /// The MDS Reed–Solomon instance: `data` data shards, `parity`
    /// Vandermonde parity rows; any `parity` erasures are decodable.
    ///
    /// # Errors
    ///
    /// [`ErasureError::InvalidParameters`] for zero counts or more than
    /// 256 total shards.
    pub fn reed_solomon(data: usize, parity: usize) -> Result<Self, ErasureError> {
        if data == 0 || parity == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "data and parity shard counts must be positive",
            });
        }
        if data + parity > 256 {
            return Err(ErasureError::InvalidParameters {
                reason: "GF(256) supports at most 256 total shards",
            });
        }
        let vandermonde = Matrix::vandermonde(data + parity, data);
        let top = vandermonde.select_rows(&(0..data).collect::<Vec<_>>());
        let inv = top.inverted().expect("top Vandermonde block invertible");
        Self::new(vandermonde.mul(&inv), data, parity)
    }

    /// A Local Reconstruction Code: `groups` groups of `group_size` data
    /// shards, one XOR local parity per group, and `global_parity`
    /// Reed–Solomon-style global parities.
    ///
    /// Shard layout: `groups·group_size` data shards (group-major), then
    /// the `groups` local parities, then the global parities. Guaranteed
    /// tolerance is `global_parity + 1`; many larger patterns also decode
    /// (any pattern leaving a full-rank row set).
    ///
    /// # Errors
    ///
    /// [`ErasureError::InvalidParameters`] for zero dimensions or more
    /// than 256 total shards.
    pub fn local_reconstruction(
        groups: usize,
        group_size: usize,
        global_parity: usize,
    ) -> Result<Self, ErasureError> {
        if groups == 0 || group_size == 0 || global_parity == 0 {
            return Err(ErasureError::InvalidParameters {
                reason: "LRC needs positive groups, group size and global parity",
            });
        }
        let data = groups * group_size;
        let total = data + groups + global_parity;
        if total > 256 {
            return Err(ErasureError::InvalidParameters {
                reason: "GF(256) supports at most 256 total shards",
            });
        }
        let mut generator = Matrix::zero(total, data);
        for i in 0..data {
            generator[(i, i)] = 1;
        }
        // Local XOR parities.
        let mut local_groups = Vec::with_capacity(groups);
        for g in 0..groups {
            let row = data + g;
            let members: Vec<usize> = (g * group_size..(g + 1) * group_size).collect();
            for &m in &members {
                generator[(row, m)] = 1;
            }
            local_groups.push((members, row));
        }
        // Global parities: rows of a Vandermonde matrix evaluated at
        // points disjoint from the data indices' implicit 0..data range,
        // keeping the combined matrix generically full-rank.
        for p in 0..global_parity {
            let row = data + groups + p;
            let x = (data + 1 + p) as u8;
            for j in 0..data {
                generator[(row, j)] = gf256::pow(x, j as u32);
            }
        }
        let mut code = Self::new(generator, data, global_parity + 1)?;
        code.local_groups = local_groups;
        Ok(code)
    }

    /// The generator matrix (for inspection and tests).
    #[must_use]
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Attempts the cheap local-repair path: a single missing shard inside
    /// a group whose other members and local parity are present is the XOR
    /// of those survivors. Returns `true` if it repaired everything.
    fn try_local_repair(&self, shards: &mut [Option<Vec<u8>>], len: usize) -> bool {
        loop {
            let mut progress = false;
            for (members, parity_row) in &self.local_groups {
                let mut missing: Option<usize> = None;
                let mut ok = true;
                for &idx in members.iter().chain(std::iter::once(parity_row)) {
                    if shards[idx].is_none() && missing.replace(idx).is_some() {
                        ok = false;
                        break;
                    }
                }
                let (Some(target), true) = (missing, ok) else {
                    continue;
                };
                let mut repaired = vec![0u8; len];
                for &idx in members.iter().chain(std::iter::once(parity_row)) {
                    if idx == target {
                        continue;
                    }
                    gf256::xor_acc(&mut repaired, shards[idx].as_ref().expect("present"));
                }
                shards[target] = Some(repaired);
                progress = true;
            }
            if !progress {
                break;
            }
        }
        shards.iter().all(Option::is_some)
    }
}

impl ErasureCode for MatrixCode {
    fn data_shards(&self) -> usize {
        self.data
    }

    fn parity_shards(&self) -> usize {
        self.generator.rows() - self.data
    }

    fn tolerated_erasures(&self) -> usize {
        self.guaranteed
    }

    fn encode(&self, shards: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_shards(shards, self.total_shards(), 1)?;
        let (data, parity) = shards.split_at_mut(self.data);
        debug_assert!(data.iter().all(|d| d.len() == len));
        for (p, out) in parity.iter_mut().enumerate() {
            out.iter_mut().for_each(|b| *b = 0);
            let row = self.generator.row(self.data + p);
            gf256::mul_acc_many(out, data, row);
        }
        Ok(())
    }

    fn encode_parity(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let len = check_parity_inputs(data, parity.len(), self.data, self.parity_shards(), 1)?;
        for (p, out) in parity.iter_mut().enumerate() {
            out.clear();
            out.resize(len, 0);
            gf256::mul_acc_many(out, data, self.generator.row(self.data + p));
        }
        Ok(())
    }

    /// Reconstructs every decodable pattern: unlike the fixed-budget
    /// codes, patterns larger than the guaranteed tolerance are attempted
    /// and succeed whenever the surviving generator rows have full rank.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        if shards.len() != self.total_shards() {
            return Err(ErasureError::WrongShardCount {
                expected: self.total_shards(),
                got: shards.len(),
            });
        }
        let missing: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let Some(len) = shards.iter().flatten().map(Vec::len).next() else {
            return Err(ErasureError::TooManyErasures {
                missing: missing.len(),
                tolerated: self.guaranteed,
            });
        };
        if shards.iter().flatten().any(|s| s.len() != len) {
            return Err(ErasureError::ShardLengthMismatch);
        }
        // Cheap path: local XOR repairs.
        if self.try_local_repair(shards, len) {
            return Ok(());
        }
        // General path: find `data` linearly independent surviving rows.
        let available: Vec<usize> = (0..self.total_shards())
            .filter(|&i| shards[i].is_some())
            .collect();
        let chosen = select_independent_rows(&self.generator, &available, self.data).ok_or(
            ErasureError::TooManyErasures {
                missing: missing.len(),
                tolerated: self.guaranteed,
            },
        )?;
        let sub = self.generator.select_rows(&chosen);
        let decode = sub.inverted().expect("chosen rows are independent");
        // Recover the data shards: one tiled multi-source accumulation
        // ([`gf256::mul_acc_many`]) per target over the shared survivor
        // set, so the survivors stream through the cache once per target
        // tile instead of once per (target, survivor) pair.
        let survivors: Vec<&[u8]> = chosen
            .iter()
            .map(|&src| shards[src].as_ref().expect("survivor").as_slice())
            .collect();
        let mut data_shards: Vec<Vec<u8>> = Vec::with_capacity(self.data);
        for target in 0..self.data {
            let mut out = vec![0u8; len];
            gf256::mul_acc_many(&mut out, &survivors, decode.row(target));
            data_shards.push(out);
        }
        drop(survivors);
        // Fill in every missing shard from the recovered data.
        for target in missing {
            let mut out = vec![0u8; len];
            gf256::mul_acc_many(&mut out, &data_shards, self.generator.row(target));
            shards[target] = Some(out);
        }
        // Also restore the recovered data shards themselves (they may have
        // been among the missing and are now definitely consistent).
        for (i, d) in data_shards.into_iter().enumerate() {
            if shards[i].is_none() {
                shards[i] = Some(d);
            }
        }
        Ok(())
    }
}

/// Greedily selects `need` rows (from `candidates`, in order) whose
/// generator rows are linearly independent; `None` if the candidates do
/// not span the data space.
fn select_independent_rows(
    generator: &Matrix,
    candidates: &[usize],
    need: usize,
) -> Option<Vec<usize>> {
    let cols = generator.cols();
    let mut basis: Vec<Vec<u8>> = Vec::with_capacity(need);
    let mut pivots: Vec<usize> = Vec::with_capacity(need);
    let mut chosen = Vec::with_capacity(need);
    for &cand in candidates {
        if chosen.len() == need {
            break;
        }
        let mut row = generator.row(cand).to_vec();
        // Reduce against the current basis.
        for (b, &p) in basis.iter().zip(&pivots) {
            if row[p] != 0 {
                let factor = gf256::div(row[p], b[p]);
                for (r, &bb) in row.iter_mut().zip(b) {
                    *r ^= gf256::mul(factor, bb);
                }
            }
        }
        if let Some(p) = (0..cols).find(|&j| row[j] != 0) {
            basis.push(row);
            pivots.push(p);
            chosen.push(cand);
        }
    }
    (chosen.len() == need).then_some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reed_solomon::ReedSolomon;

    fn sample(code: &dyn ErasureCode, len: usize) -> Vec<Vec<u8>> {
        let mut shards: Vec<Vec<u8>> = (0..code.data_shards())
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 89 + j * 13 + 1) % 256) as u8)
                    .collect()
            })
            .collect();
        shards.extend(std::iter::repeat_with(|| vec![0u8; len]).take(code.parity_shards()));
        shards
    }

    fn roundtrip(code: &dyn ErasureCode, len: usize, lose: &[usize]) -> Result<(), ErasureError> {
        let mut shards = sample(code, len);
        code.encode(&mut shards).unwrap();
        let original = shards.clone();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &i in lose {
            damaged[i] = None;
        }
        code.reconstruct(&mut damaged)?;
        for (i, (got, want)) in damaged.iter().zip(&original).enumerate() {
            assert_eq!(got.as_ref().unwrap(), want, "shard {i} lose={lose:?}");
        }
        Ok(())
    }

    #[test]
    fn matrix_rs_matches_dedicated_rs() {
        let a = MatrixCode::reed_solomon(4, 2).unwrap();
        let b = ReedSolomon::new(4, 2).unwrap();
        let mut sa = sample(&a, 24);
        let mut sb = sa.clone();
        a.encode(&mut sa).unwrap();
        b.encode(&mut sb).unwrap();
        assert_eq!(sa, sb, "identical parity for the same construction");
    }

    #[test]
    fn matrix_rs_all_double_erasures() {
        let code = MatrixCode::reed_solomon(4, 2).unwrap();
        for a in 0..6 {
            for b in a + 1..6 {
                roundtrip(&code, 16, &[a, b]).unwrap();
            }
        }
    }

    #[test]
    fn lrc_geometry() {
        let lrc = MatrixCode::local_reconstruction(2, 3, 2).unwrap();
        assert_eq!(lrc.data_shards(), 6);
        assert_eq!(lrc.parity_shards(), 4); // 2 local + 2 global
        assert_eq!(lrc.total_shards(), 10);
        assert_eq!(lrc.tolerated_erasures(), 3); // global + 1
    }

    #[test]
    fn lrc_local_repair_uses_xor() {
        // A single data loss repairs from the group's XOR parity.
        let lrc = MatrixCode::local_reconstruction(2, 3, 2).unwrap();
        let mut shards = sample(&lrc, 16);
        lrc.encode(&mut shards).unwrap();
        // Verify the local parity really is the group XOR.
        let mut xor = vec![0u8; 16];
        for s in &shards[0..3] {
            for (x, b) in xor.iter_mut().zip(s) {
                *x ^= b;
            }
        }
        assert_eq!(shards[6], xor, "local parity of group 0");
        roundtrip(&lrc, 16, &[1]).unwrap();
        roundtrip(&lrc, 16, &[6]).unwrap(); // the local parity itself
    }

    #[test]
    fn lrc_guaranteed_patterns_all_decode() {
        // Every pattern of size <= global + 1 = 3 must decode.
        let lrc = MatrixCode::local_reconstruction(2, 2, 2).unwrap();
        let total = lrc.total_shards();
        let mut checked = 0u32;
        for a in 0..total {
            for b in a + 1..total {
                for c in b + 1..total {
                    roundtrip(&lrc, 8, &[a, b, c])
                        .unwrap_or_else(|e| panic!("pattern [{a},{b},{c}] failed: {e}"));
                    checked += 1;
                }
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn lrc_decodes_many_beyond_guarantee() {
        // 4 erasures exceed the guarantee (3) but most patterns still
        // decode; one per group plus both globals always does.
        let lrc = MatrixCode::local_reconstruction(2, 2, 2).unwrap();
        roundtrip(&lrc, 8, &[0, 2, 6, 7]).unwrap();
        // Whereas an entire group plus its parity plus a global is rank
        // deficient beyond help when too much is gone:
        let result = roundtrip(&lrc, 8, &[0, 1, 4, 6, 7]);
        assert!(matches!(result, Err(ErasureError::TooManyErasures { .. })));
    }

    #[test]
    fn parameter_validation() {
        assert!(MatrixCode::reed_solomon(0, 2).is_err());
        assert!(MatrixCode::reed_solomon(255, 2).is_err());
        assert!(MatrixCode::local_reconstruction(0, 3, 1).is_err());
        assert!(MatrixCode::local_reconstruction(2, 0, 1).is_err());
        assert!(MatrixCode::local_reconstruction(2, 2, 0).is_err());
        assert!(MatrixCode::local_reconstruction(100, 2, 100).is_err());
        // Non-systematic generator rejected.
        let bad = Matrix::vandermonde(4, 2);
        assert!(MatrixCode::new(bad, 2, 1).is_err());
    }
}
