//! Row-Diagonal Parity (Corbett et al., FAST 2004).
//!
//! RDP tolerates double erasures with XOR arithmetic and, unlike EVENODD,
//! without a shared adjuster: for a prime `p` it stores `p − 1` data
//! columns, one row-parity column and one diagonal-parity column, each of
//! `p − 1` symbol rows. The diagonal parity is computed over the data *and*
//! the row parity, and one diagonal (index `p − 1`) is deliberately left
//! unprotected — the "missing diagonal" that seeds the recovery chain. It
//! is reference `[3]` in the paper.
//!
//! Shards are columns; a shard of `L` bytes is treated as `p − 1` symbols
//! of `L / (p − 1)` bytes.

use crate::code::{check_optional_shards, check_parity_inputs, check_shards, ErasureCode};
use crate::error::ErasureError;
use crate::evenodd::is_prime;
use crate::gf256::xor_acc as xor_into;

/// The RDP double-erasure code with prime parameter `p`:
/// `p − 1` data shards, 2 parity shards.
///
/// # Example
///
/// ```
/// use rshare_erasure::{ErasureCode, Rdp};
///
/// let code = Rdp::new(5).unwrap(); // 4 data + 2 parity shards
/// assert_eq!(code.data_shards(), 4);
/// assert_eq!(code.total_shards(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rdp {
    p: usize,
}

impl Rdp {
    /// Creates an RDP code for prime `p ≥ 3` (so `p − 1 ≥ 2` data shards).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] if `p` is not a prime
    /// of at least 3.
    pub fn new(p: usize) -> Result<Self, ErasureError> {
        if p < 3 || !is_prime(p) {
            return Err(ErasureError::InvalidParameters {
                reason: "RDP requires a prime parameter p >= 3",
            });
        }
        Ok(Self { p })
    }

    /// The prime parameter `p`.
    #[must_use]
    pub fn prime(&self) -> usize {
        self.p
    }

    fn rows(&self) -> usize {
        self.p - 1
    }

    fn sym(row: usize, sz: usize) -> std::ops::Range<usize> {
        row * sz..(row + 1) * sz
    }
}

impl ErasureCode for Rdp {
    fn data_shards(&self) -> usize {
        self.p - 1
    }

    fn parity_shards(&self) -> usize {
        2
    }

    fn shard_multiple(&self) -> usize {
        self.rows()
    }

    #[allow(clippy::needless_range_loop)] // column index feeds the diagonal arithmetic
    fn encode(&self, shards: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let p = self.p;
        let len = check_shards(shards, p + 1, self.rows())?;
        let sz = len / self.rows();
        // Row parity (column p - 1) over the data columns.
        let mut rowpar = vec![0u8; len];
        for col in shards.iter().take(p - 1) {
            xor_into(&mut rowpar, col);
        }
        shards[p - 1] = rowpar;
        // Diagonal parity (column p) over data + row parity; diagonal of a
        // cell (i, c) is (i + c) mod p, diagonal p - 1 is unprotected.
        let mut diagpar = vec![0u8; len];
        for c in 0..p {
            let col = &shards[c];
            for i in 0..p - 1 {
                let d = (i + c) % p;
                if d == p - 1 {
                    continue;
                }
                xor_into(&mut diagpar[Self::sym(d, sz)], &col[Self::sym(i, sz)]);
            }
        }
        shards[p] = diagpar;
        Ok(())
    }

    #[allow(clippy::needless_range_loop)] // column index feeds the diagonal arithmetic
    fn encode_parity(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        let p = self.p;
        let len = check_parity_inputs(data, parity.len(), p - 1, 2, self.rows())?;
        let sz = len / self.rows();
        for out in parity.iter_mut() {
            out.clear();
            out.resize(len, 0);
        }
        let (rowpar, diagpar) = parity.split_at_mut(1);
        let (rowpar, diagpar) = (&mut rowpar[0], &mut diagpar[0]);
        // Row parity over the data columns.
        for col in data {
            xor_into(rowpar, col);
        }
        // Diagonal parity over data + row parity (column index p - 1).
        for c in 0..p {
            let col: &[u8] = if c < p - 1 { data[c] } else { rowpar };
            for i in 0..p - 1 {
                let d = (i + c) % p;
                if d == p - 1 {
                    continue;
                }
                xor_into(&mut diagpar[Self::sym(d, sz)], &col[Self::sym(i, sz)]);
            }
        }
        Ok(())
    }

    #[allow(clippy::needless_range_loop)] // column index feeds the diagonal arithmetic
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError> {
        let p = self.p;
        let (len, missing) = check_optional_shards(shards, p + 1, self.rows(), 2)?;
        if missing.is_empty() {
            return Ok(());
        }
        let sz = len / self.rows();
        // Columns 0..p participate in uniform row equations
        // (XOR over all of them is zero); column p is the diagonal parity.
        let row_covered: Vec<usize> = missing.iter().copied().filter(|&i| i < p).collect();
        match row_covered.as_slice() {
            // Only the diagonal parity is missing.
            [] => {}
            // One row-covered column missing: rebuild it by row equations.
            [x] => {
                let x = *x;
                let mut col = vec![0u8; len];
                for (j, shard) in shards.iter().take(p).enumerate() {
                    if j == x {
                        continue;
                    }
                    xor_into(&mut col, shard.as_ref().expect("present"));
                }
                shards[x] = Some(col);
            }
            // Two row-covered columns missing: syndrome peeling. The two
            // recovery chains of the RDP paper (one seeded from each
            // diagonal that misses one of the failed columns) are realised
            // uniformly: keep per-row and per-diagonal syndromes equal to
            // the XOR of the still-unknown cells they cover, and repeatedly
            // resolve any equation with exactly one unknown.
            [r, s] => {
                let (r, s) = (*r, *s);
                let diagpar = shards[p].as_ref().expect("diag parity alive").clone();
                // Row syndromes: XOR over all known columns (row equations
                // sum to zero over columns 0..p-1).
                let mut row_syn = vec![0u8; len];
                let mut row_unknown = vec![2u8; p - 1];
                for c in (0..p).filter(|&c| c != r && c != s) {
                    xor_into(&mut row_syn, shards[c].as_ref().expect("present"));
                }
                // Diagonal syndromes over diagonals 0..p-2.
                let mut diag_syn = vec![vec![0u8; sz]; p - 1];
                let mut diag_unknown = vec![0u8; p - 1];
                for (d, syn) in diag_syn.iter_mut().enumerate() {
                    syn.copy_from_slice(&diagpar[Self::sym(d, sz)]);
                    for c in 0..p {
                        let i = (d + p - c) % p;
                        if i == p - 1 {
                            continue;
                        }
                        if c == r || c == s {
                            diag_unknown[d] += 1;
                        } else {
                            let col = shards[c].as_ref().expect("present");
                            xor_into(syn, &col[Self::sym(i, sz)]);
                        }
                    }
                }
                let mut col_r = vec![0u8; len];
                let mut col_s = vec![0u8; len];
                let mut known = vec![[false; 2]; p - 1]; // per row: [r, s]
                let mut remaining = 2 * (p - 1);
                // Resolve a cell: update syndromes and counters.
                let resolve = |col_is_s: bool,
                               row: usize,
                               value: &[u8],
                               col_r: &mut Vec<u8>,
                               col_s: &mut Vec<u8>,
                               row_syn: &mut Vec<u8>,
                               diag_syn: &mut Vec<Vec<u8>>,
                               row_unknown: &mut Vec<u8>,
                               diag_unknown: &mut Vec<u8>,
                               known: &mut Vec<[bool; 2]>| {
                    let c = if col_is_s { s } else { r };
                    let target = if col_is_s { col_s } else { col_r };
                    target[Self::sym(row, sz)].copy_from_slice(value);
                    known[row][usize::from(col_is_s)] = true;
                    xor_into(&mut row_syn[Self::sym(row, sz)], value);
                    row_unknown[row] -= 1;
                    let d = (row + c) % p;
                    if d != p - 1 {
                        xor_into(&mut diag_syn[d], value);
                        diag_unknown[d] -= 1;
                    }
                };
                while remaining > 0 {
                    let mut progress = false;
                    // Diagonals with exactly one unknown cell.
                    for d in 0..p - 1 {
                        if diag_unknown[d] != 1 {
                            continue;
                        }
                        // Which failed column still has an unknown cell on d?
                        for (c, is_s) in [(r, false), (s, true)] {
                            let i = (d + p - c) % p;
                            if i == p - 1 || known[i][usize::from(is_s)] {
                                continue;
                            }
                            let value = diag_syn[d].clone();
                            resolve(
                                is_s,
                                i,
                                &value,
                                &mut col_r,
                                &mut col_s,
                                &mut row_syn,
                                &mut diag_syn,
                                &mut row_unknown,
                                &mut diag_unknown,
                                &mut known,
                            );
                            remaining -= 1;
                            progress = true;
                            break;
                        }
                    }
                    // Rows with exactly one unknown cell.
                    for i in 0..p - 1 {
                        if row_unknown[i] != 1 {
                            continue;
                        }
                        let is_s = known[i][0];
                        let value = row_syn[Self::sym(i, sz)].to_vec();
                        resolve(
                            is_s,
                            i,
                            &value,
                            &mut col_r,
                            &mut col_s,
                            &mut row_syn,
                            &mut diag_syn,
                            &mut row_unknown,
                            &mut diag_unknown,
                            &mut known,
                        );
                        remaining -= 1;
                        progress = true;
                    }
                    assert!(progress, "RDP peeling stalled — parameter invariant broken");
                }
                shards[r] = Some(col_r);
                shards[s] = Some(col_s);
            }
            _ => unreachable!("erasure budget is 2"),
        }
        // Recompute the diagonal parity if it was lost.
        if shards[p].is_none() {
            let mut full: Vec<Vec<u8>> = (0..p)
                .map(|i| shards[i].clone().expect("complete"))
                .collect();
            full.push(vec![0; len]);
            self.encode(&mut full)?;
            shards[p] = Some(full[p].clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: usize, sz: usize) -> Vec<Vec<u8>> {
        let rows = p - 1;
        let mut shards: Vec<Vec<u8>> = (0..p - 1)
            .map(|c| {
                (0..rows * sz)
                    .map(|b| ((c * 101 + b * 31 + 3) % 256) as u8)
                    .collect()
            })
            .collect();
        shards.push(vec![0; rows * sz]); // row parity
        shards.push(vec![0; rows * sz]); // diagonal parity
        shards
    }

    fn roundtrip(p: usize, sz: usize, lose: &[usize]) {
        let code = Rdp::new(p).unwrap();
        let mut shards = sample(p, sz);
        code.encode(&mut shards).unwrap();
        let original = shards.clone();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &i in lose {
            damaged[i] = None;
        }
        code.reconstruct(&mut damaged).unwrap();
        for (i, (got, want)) in damaged.iter().zip(&original).enumerate() {
            assert_eq!(got.as_ref().unwrap(), want, "p={p} lose={lose:?} shard {i}");
        }
    }

    #[test]
    fn all_double_erasures_p5() {
        let total = 6;
        for a in 0..total {
            roundtrip(5, 4, &[a]);
            for b in a + 1..total {
                roundtrip(5, 4, &[a, b]);
            }
        }
    }

    #[test]
    fn all_double_erasures_p3_p7_p11() {
        for p in [3usize, 7, 11] {
            let total = p + 1;
            for a in 0..total {
                for b in a + 1..total {
                    roundtrip(p, 2, &[a, b]);
                }
            }
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Rdp::new(2).is_err());
        assert!(Rdp::new(4).is_err());
        assert!(Rdp::new(9).is_err());
        assert!(Rdp::new(5).is_ok());
    }

    #[test]
    fn rejects_bad_shard_length() {
        let code = Rdp::new(5).unwrap();
        let mut shards: Vec<Vec<u8>> = (0..6).map(|_| vec![0u8; 5]).collect();
        assert_eq!(
            code.encode(&mut shards),
            Err(ErasureError::BadShardLength { multiple_of: 4 })
        );
    }

    #[test]
    fn triple_erasure_rejected() {
        let code = Rdp::new(5).unwrap();
        let mut shards = sample(5, 2);
        code.encode(&mut shards).unwrap();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in [0, 2, 4] {
            damaged[i] = None;
        }
        assert!(matches!(
            code.reconstruct(&mut damaged),
            Err(ErasureError::TooManyErasures { .. })
        ));
    }
}
