//! The common interface of erasure codes.

use crate::error::ErasureError;

/// An erasure code over byte shards.
///
/// A codeword consists of [`ErasureCode::data_shards`] data shards followed
/// by [`ErasureCode::parity_shards`] parity shards, all of equal length.
/// The shard at index `i` is "sub-block `i`" of a redundancy group — the
/// paper's Redundant Share strategies identify the i-th copy of a block
/// precisely so that such position-dependent sub-blocks can be mapped onto
/// storage devices.
///
/// Codes are `Send + Sync`: they are immutable codecs, and the storage
/// layer shares them across threads.
pub trait ErasureCode: Send + Sync {
    /// Number of data shards `d`.
    fn data_shards(&self) -> usize;

    /// Number of parity shards `p`.
    fn parity_shards(&self) -> usize;

    /// Total shards `d + p`.
    fn total_shards(&self) -> usize {
        self.data_shards() + self.parity_shards()
    }

    /// Maximum number of simultaneously missing shards the code can always
    /// recover from.
    fn tolerated_erasures(&self) -> usize {
        self.parity_shards()
    }

    /// Required divisor of the shard length in bytes (1 unless the code
    /// works on sub-shard symbols, like EVENODD's `p - 1` rows).
    fn shard_multiple(&self) -> usize {
        1
    }

    /// Computes the parity shards from the data shards.
    ///
    /// `shards` must hold [`ErasureCode::total_shards`] equally sized
    /// vectors; the first `d` are read, the last `p` are overwritten.
    ///
    /// # Errors
    ///
    /// [`ErasureError::WrongShardCount`], [`ErasureError::ShardLengthMismatch`]
    /// or [`ErasureError::BadShardLength`] on malformed input.
    fn encode(&self, shards: &mut [Vec<u8>]) -> Result<(), ErasureError>;

    /// Computes the parity shards from *borrowed* data shards into
    /// caller-provided parity buffers (cleared and resized in place, so a
    /// batch encoder reuses their allocations).
    ///
    /// Bit-identical to [`ErasureCode::encode`] on the assembled codeword,
    /// but the data shards never have to be materialized as owned vectors
    /// — the zero-copy half of the fused stripe write pipeline. Every
    /// in-tree code overrides the defaulted body (which round-trips
    /// through a scratch codeword) with a direct computation.
    ///
    /// # Errors
    ///
    /// [`ErasureError::WrongShardCount`] if `data` or `parity` has the
    /// wrong arity, plus the shard-shape errors of
    /// [`ErasureCode::encode`].
    fn encode_parity(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), ErasureError> {
        if parity.len() != self.parity_shards() {
            return Err(ErasureError::WrongShardCount {
                expected: self.parity_shards(),
                got: parity.len(),
            });
        }
        let len = data.first().map_or(0, |d| d.len());
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(self.total_shards());
        shards.extend(data.iter().map(|d| d.to_vec()));
        shards.extend(std::iter::repeat_with(|| vec![0u8; len]).take(self.parity_shards()));
        self.encode(&mut shards)?;
        for (out, computed) in parity.iter_mut().zip(shards.split_off(self.data_shards())) {
            *out = computed;
        }
        Ok(())
    }

    /// Recomputes every missing (`None`) shard in place.
    ///
    /// # Errors
    ///
    /// The validation errors of [`ErasureCode::encode`], plus
    /// [`ErasureError::TooManyErasures`] when more shards are missing than
    /// [`ErasureCode::tolerated_erasures`].
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), ErasureError>;
}

/// Validates the borrowed data shards and parity buffer count for
/// [`ErasureCode::encode_parity`], returning the shard length. Parity
/// buffer *lengths* are not checked: `encode_parity` resizes them.
pub(crate) fn check_parity_inputs(
    data: &[&[u8]],
    parity_count: usize,
    expected_data: usize,
    expected_parity: usize,
    multiple: usize,
) -> Result<usize, ErasureError> {
    if data.len() != expected_data {
        return Err(ErasureError::WrongShardCount {
            expected: expected_data,
            got: data.len(),
        });
    }
    if parity_count != expected_parity {
        return Err(ErasureError::WrongShardCount {
            expected: expected_parity,
            got: parity_count,
        });
    }
    let len = data.first().map_or(0, |d| d.len());
    if data.iter().any(|s| s.len() != len) {
        return Err(ErasureError::ShardLengthMismatch);
    }
    if len == 0 || !len.is_multiple_of(multiple) {
        return Err(ErasureError::BadShardLength {
            multiple_of: multiple,
        });
    }
    Ok(len)
}

/// Validates shard counts and equal lengths, returning the shard length.
pub(crate) fn check_shards(
    shards: &[Vec<u8>],
    expected: usize,
    multiple: usize,
) -> Result<usize, ErasureError> {
    if shards.len() != expected {
        return Err(ErasureError::WrongShardCount {
            expected,
            got: shards.len(),
        });
    }
    let len = shards[0].len();
    if shards.iter().any(|s| s.len() != len) {
        return Err(ErasureError::ShardLengthMismatch);
    }
    if len == 0 || !len.is_multiple_of(multiple) {
        return Err(ErasureError::BadShardLength {
            multiple_of: multiple,
        });
    }
    Ok(len)
}

/// Validates optional shards: count, equal lengths of present shards, and
/// the erasure budget. Returns `(shard_len, missing_indices)`.
pub(crate) fn check_optional_shards(
    shards: &[Option<Vec<u8>>],
    expected: usize,
    multiple: usize,
    tolerated: usize,
) -> Result<(usize, Vec<usize>), ErasureError> {
    if shards.len() != expected {
        return Err(ErasureError::WrongShardCount {
            expected,
            got: shards.len(),
        });
    }
    let missing: Vec<usize> = shards
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if missing.len() > tolerated {
        return Err(ErasureError::TooManyErasures {
            missing: missing.len(),
            tolerated,
        });
    }
    let mut len = None;
    for s in shards.iter().flatten() {
        match len {
            None => len = Some(s.len()),
            Some(l) if l != s.len() => return Err(ErasureError::ShardLengthMismatch),
            _ => {}
        }
    }
    let len = len.ok_or(ErasureError::TooManyErasures {
        missing: missing.len(),
        tolerated,
    })?;
    if len == 0 || len % multiple != 0 {
        return Err(ErasureError::BadShardLength {
            multiple_of: multiple,
        });
    }
    Ok((len, missing))
}
