//! Property-based tests: every code must round-trip arbitrary data through
//! any erasure pattern within its tolerance, and reject patterns beyond it.

use proptest::prelude::*;
use rshare_erasure::gf256::KernelTier;
use rshare_erasure::{gf256, ErasureCode, EvenOdd, MatrixCode, Rdp, ReedSolomon, XorParity};

/// All dispatchable tiers, most to least specialised. On hardware without
/// SSSE3 the `Simd` entry exercises its documented SWAR fallback — still a
/// valid equivalence case.
const TIERS: [KernelTier; 3] = [KernelTier::Simd, KernelTier::Swar, KernelTier::Table];

/// Deterministic pseudo-random buffer for kernel inputs.
fn prng_bytes(len: usize, mut state: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Runs encode → erase → reconstruct and checks equality with the original.
fn roundtrip(code: &dyn ErasureCode, data: &[Vec<u8>], lose: &[usize]) {
    let len = data[0].len();
    let mut shards: Vec<Vec<u8>> = data.to_vec();
    shards.extend(std::iter::repeat_with(|| vec![0u8; len]).take(code.parity_shards()));
    code.encode(&mut shards).expect("encode");
    let original = shards.clone();
    let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    for &i in lose {
        damaged[i] = None;
    }
    code.reconstruct(&mut damaged).expect("reconstruct");
    for (i, (got, want)) in damaged.iter().zip(&original).enumerate() {
        assert_eq!(got.as_ref().unwrap(), want, "shard {i} lose={lose:?}");
    }
}

/// Picks `count` distinct indices below `total` from a seed.
fn pick_erasures(total: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..total).collect();
    let mut state = seed | 1;
    let mut chosen = Vec::with_capacity(count);
    for _ in 0..count {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let at = (state >> 33) as usize % indices.len();
        chosen.push(indices.swap_remove(at));
    }
    chosen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reed_solomon_roundtrips(
        d in 1usize..=10,
        p in 1usize..=5,
        sz in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let code = ReedSolomon::new(d, p).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 31 + j * 7) as u8).collect())
            .collect();
        let erasures = pick_erasures(d + p, (seed as usize % (p + 1)).min(p), seed);
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn xor_parity_roundtrips(
        d in 1usize..=12,
        sz in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let code = XorParity::new(d).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize ^ (i * 131 + j)) as u8).collect())
            .collect();
        let lost = seed as usize % (d + 1);
        roundtrip(&code, &data, &[lost]);
    }

    #[test]
    fn evenodd_roundtrips(
        p_idx in 0usize..4,
        mult in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let p = [3usize, 5, 7, 11][p_idx];
        let code = EvenOdd::new(p).unwrap();
        let sz = (p - 1) * mult;
        let data: Vec<Vec<u8>> = (0..p)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 17 + j * 3) as u8).collect())
            .collect();
        let count = seed as usize % 3; // 0, 1 or 2 erasures
        let erasures = pick_erasures(p + 2, count, seed.rotate_left(17));
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn rdp_roundtrips(
        p_idx in 0usize..4,
        mult in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let p = [3usize, 5, 7, 11][p_idx];
        let code = Rdp::new(p).unwrap();
        let sz = (p - 1) * mult;
        let data: Vec<Vec<u8>> = (0..p - 1)
            .map(|i| (0..sz).map(|j| (seed as usize ^ (i * 89 + j * 5)) as u8).collect())
            .collect();
        let count = seed as usize % 3;
        let erasures = pick_erasures(p + 1, count, seed.rotate_left(29));
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn matrix_rs_roundtrips(
        d in 1usize..=8,
        p in 1usize..=4,
        sz in 1usize..=48,
        seed in any::<u64>(),
    ) {
        let code = MatrixCode::reed_solomon(d, p).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 41 + j * 11) as u8).collect())
            .collect();
        let erasures = pick_erasures(d + p, (seed as usize % (p + 1)).min(p), seed);
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn lrc_guaranteed_patterns_roundtrip(
        groups in 1usize..=3,
        group_size in 1usize..=3,
        global in 1usize..=2,
        sz in 1usize..=32,
        seed in any::<u64>(),
    ) {
        let code = MatrixCode::local_reconstruction(groups, group_size, global).unwrap();
        let data: Vec<Vec<u8>> = (0..groups * group_size)
            .map(|i| (0..sz).map(|j| (seed as usize ^ (i * 53 + j * 3)) as u8).collect())
            .collect();
        // Any pattern within the guarantee (global + 1 erasures) decodes.
        let count = seed as usize % (global + 2);
        let erasures = pick_erasures(code.total_shards(), count, seed.rotate_left(11));
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn over_budget_erasures_always_rejected(
        p_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let p = [3usize, 5, 7][p_idx];
        let code = Rdp::new(p).unwrap();
        let len = p - 1;
        let mut shards: Vec<Vec<u8>> = (0..p + 1).map(|i| vec![i as u8; len]).collect();
        code.encode(&mut shards).unwrap();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in pick_erasures(p + 1, 3, seed) {
            damaged[i] = None;
        }
        prop_assert!(code.reconstruct(&mut damaged).is_err());
    }

    // --- Kernel equivalence: the table-driven GF(256) kernels must be ---
    // --- bit-identical to the byte-at-a-time reference implementation. ---

    #[test]
    fn table_mul_acc_matches_bytewise_kernel(
        len in 1usize..=513,
        c in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let c = c as u8;
        let data: Vec<u8> = (0..len)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 24) as u8)
            .collect();
        let mut fast: Vec<u8> = (0..len).map(|i| (seed >> (i % 8)) as u8).collect();
        let mut slow = fast.clone();
        gf256::mul_acc(&mut fast, &data, c);
        gf256::mul_acc_bytewise(&mut slow, &data, c);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn table_kernel_rs_codewords_match_bytewise_encode(
        d in 1usize..=8,
        p in 1usize..=4,
        sz in 1usize..=77,
        seed in any::<u64>(),
    ) {
        // Encode through the production (table-kernel) path…
        let code = ReedSolomon::new(d, p).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 61 + j * 13) as u8).collect())
            .collect();
        let mut shards = data.clone();
        shards.extend(std::iter::repeat_with(|| vec![0u8; sz]).take(p));
        code.encode(&mut shards).unwrap();
        // …and recompute every parity with the byte-wise reference kernel
        // from the generator rows exposed by the equivalent MatrixCode.
        let matrix = MatrixCode::reed_solomon(d, p).unwrap();
        for (row_idx, got) in shards.iter().enumerate().skip(d) {
            let row = matrix.generator().row(row_idx);
            let mut want = vec![0u8; sz];
            for (j, shard) in data.iter().enumerate() {
                gf256::mul_acc_bytewise(&mut want, shard, row[j]);
            }
            prop_assert_eq!(got, &want, "parity row {}", row_idx);
        }
    }

    // --- Tier equivalence: SIMD, SWAR and table kernels must be ---------
    // --- bit-identical to the byte-wise reference on every input shape. -

    /// `mul_acc` across all tiers, at unaligned offsets into a shared
    /// buffer, lengths that are not multiples of any vector width
    /// (including 0), and c drawn from {0, 1, random}.
    #[test]
    fn all_tiers_mul_acc_match_reference(
        len in 0usize..=517,
        offset in 0usize..=31,
        c_kind in 0usize..3,
        c_raw in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let c = match c_kind {
            0 => 0u8,
            1 => 1,
            _ => (c_raw | 2) as u8, // any value; 0/1 already pinned above
        };
        let data = prng_bytes(offset + len, seed);
        let acc0 = prng_bytes(offset + len, seed.rotate_left(13));
        let mut want = acc0[offset..].to_vec();
        gf256::mul_acc_bytewise(&mut want, &data[offset..], c);
        for tier in TIERS {
            let mut got = acc0.clone();
            gf256::mul_acc_with(tier, &mut got[offset..], &data[offset..], c);
            prop_assert_eq!(&got[offset..], &want[..], "tier {:?} c {}", tier, c);
            // Bytes before the offset must be untouched.
            prop_assert_eq!(&got[..offset], &acc0[..offset], "tier {:?} prefix", tier);
        }
    }

    /// `xor_acc` across all tiers at unaligned offsets and ragged lengths.
    #[test]
    fn all_tiers_xor_acc_match_reference(
        len in 0usize..=517,
        offset in 0usize..=31,
        seed in any::<u64>(),
    ) {
        let data = prng_bytes(offset + len, seed);
        let acc0 = prng_bytes(offset + len, seed.rotate_left(29));
        let want: Vec<u8> = acc0[offset..]
            .iter()
            .zip(&data[offset..])
            .map(|(a, d)| a ^ d)
            .collect();
        for tier in TIERS {
            let mut got = acc0.clone();
            gf256::xor_acc_with(tier, &mut got[offset..], &data[offset..]);
            prop_assert_eq!(&got[offset..], &want[..], "tier {:?}", tier);
        }
    }

    /// `mul_acc_many` (the tiled multi-source accumulator) across all
    /// tiers against per-source byte-wise accumulation, with coefficient
    /// vectors mixing 0, 1 and arbitrary values.
    #[test]
    fn all_tiers_mul_acc_many_match_reference(
        len in 0usize..=300,
        nsrc in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let sources: Vec<Vec<u8>> = (0..nsrc)
            .map(|j| prng_bytes(len, seed.wrapping_add(j as u64 * 977)))
            .collect();
        // First coefficients pin the special cases, the rest are random.
        let coeffs: Vec<u8> = (0..nsrc)
            .map(|j| match j {
                0 => 0,
                1 => 1,
                _ => (seed.rotate_left(j as u32) | 2) as u8,
            })
            .collect();
        let mut want = vec![0u8; len];
        for (s, &c) in sources.iter().zip(&coeffs) {
            gf256::mul_acc_bytewise(&mut want, s, c);
        }
        for tier in TIERS {
            let mut got = vec![0u8; len];
            gf256::mul_acc_many_with(tier, &mut got, &sources, &coeffs);
            prop_assert_eq!(&got, &want, "tier {:?}", tier);
        }
    }

    /// `encode_parity` on borrowed data shards produces exactly the parity
    /// that `encode` computes on the assembled codeword, for every code,
    /// and reuses (not reallocates beyond need) the caller's buffers.
    #[test]
    fn encode_parity_matches_encode(
        which in 0usize..5,
        sz in 1usize..=48,
        seed in any::<u64>(),
    ) {
        let code: Box<dyn ErasureCode> = match which {
            0 => Box::new(ReedSolomon::new(4, 2).unwrap()),
            1 => Box::new(XorParity::new(5).unwrap()),
            2 => Box::new(EvenOdd::new(5).unwrap()),
            3 => Box::new(Rdp::new(5).unwrap()),
            _ => Box::new(MatrixCode::local_reconstruction(2, 3, 1).unwrap()),
        };
        let len = sz * code.shard_multiple();
        let data: Vec<Vec<u8>> = (0..code.data_shards())
            .map(|j| prng_bytes(len, seed.wrapping_add(j as u64 * 409)))
            .collect();
        let mut full: Vec<Vec<u8>> = data.clone();
        full.extend(std::iter::repeat_n(vec![0u8; len], code.parity_shards()));
        code.encode(&mut full).unwrap();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        // Deliberately mis-sized buffers: encode_parity must resize them.
        let mut parity: Vec<Vec<u8>> = vec![vec![0xAB; 3]; code.parity_shards()];
        code.encode_parity(&refs, &mut parity).unwrap();
        prop_assert_eq!(&parity[..], &full[code.data_shards()..]);
        // Wrong arity is rejected.
        prop_assert!(code.encode_parity(&refs[1..], &mut parity).is_err());
        let mut short = parity[..code.parity_shards() - 1].to_vec();
        prop_assert!(code.encode_parity(&refs, &mut short).is_err());
    }
}
