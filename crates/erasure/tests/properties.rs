//! Property-based tests: every code must round-trip arbitrary data through
//! any erasure pattern within its tolerance, and reject patterns beyond it.

use proptest::prelude::*;
use rshare_erasure::{gf256, ErasureCode, EvenOdd, MatrixCode, Rdp, ReedSolomon, XorParity};

/// Runs encode → erase → reconstruct and checks equality with the original.
fn roundtrip(code: &dyn ErasureCode, data: &[Vec<u8>], lose: &[usize]) {
    let len = data[0].len();
    let mut shards: Vec<Vec<u8>> = data.to_vec();
    shards.extend(std::iter::repeat_with(|| vec![0u8; len]).take(code.parity_shards()));
    code.encode(&mut shards).expect("encode");
    let original = shards.clone();
    let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    for &i in lose {
        damaged[i] = None;
    }
    code.reconstruct(&mut damaged).expect("reconstruct");
    for (i, (got, want)) in damaged.iter().zip(&original).enumerate() {
        assert_eq!(got.as_ref().unwrap(), want, "shard {i} lose={lose:?}");
    }
}

/// Picks `count` distinct indices below `total` from a seed.
fn pick_erasures(total: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..total).collect();
    let mut state = seed | 1;
    let mut chosen = Vec::with_capacity(count);
    for _ in 0..count {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let at = (state >> 33) as usize % indices.len();
        chosen.push(indices.swap_remove(at));
    }
    chosen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reed_solomon_roundtrips(
        d in 1usize..=10,
        p in 1usize..=5,
        sz in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let code = ReedSolomon::new(d, p).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 31 + j * 7) as u8).collect())
            .collect();
        let erasures = pick_erasures(d + p, (seed as usize % (p + 1)).min(p), seed);
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn xor_parity_roundtrips(
        d in 1usize..=12,
        sz in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let code = XorParity::new(d).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize ^ (i * 131 + j)) as u8).collect())
            .collect();
        let lost = seed as usize % (d + 1);
        roundtrip(&code, &data, &[lost]);
    }

    #[test]
    fn evenodd_roundtrips(
        p_idx in 0usize..4,
        mult in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let p = [3usize, 5, 7, 11][p_idx];
        let code = EvenOdd::new(p).unwrap();
        let sz = (p - 1) * mult;
        let data: Vec<Vec<u8>> = (0..p)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 17 + j * 3) as u8).collect())
            .collect();
        let count = seed as usize % 3; // 0, 1 or 2 erasures
        let erasures = pick_erasures(p + 2, count, seed.rotate_left(17));
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn rdp_roundtrips(
        p_idx in 0usize..4,
        mult in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let p = [3usize, 5, 7, 11][p_idx];
        let code = Rdp::new(p).unwrap();
        let sz = (p - 1) * mult;
        let data: Vec<Vec<u8>> = (0..p - 1)
            .map(|i| (0..sz).map(|j| (seed as usize ^ (i * 89 + j * 5)) as u8).collect())
            .collect();
        let count = seed as usize % 3;
        let erasures = pick_erasures(p + 1, count, seed.rotate_left(29));
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn matrix_rs_roundtrips(
        d in 1usize..=8,
        p in 1usize..=4,
        sz in 1usize..=48,
        seed in any::<u64>(),
    ) {
        let code = MatrixCode::reed_solomon(d, p).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 41 + j * 11) as u8).collect())
            .collect();
        let erasures = pick_erasures(d + p, (seed as usize % (p + 1)).min(p), seed);
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn lrc_guaranteed_patterns_roundtrip(
        groups in 1usize..=3,
        group_size in 1usize..=3,
        global in 1usize..=2,
        sz in 1usize..=32,
        seed in any::<u64>(),
    ) {
        let code = MatrixCode::local_reconstruction(groups, group_size, global).unwrap();
        let data: Vec<Vec<u8>> = (0..groups * group_size)
            .map(|i| (0..sz).map(|j| (seed as usize ^ (i * 53 + j * 3)) as u8).collect())
            .collect();
        // Any pattern within the guarantee (global + 1 erasures) decodes.
        let count = seed as usize % (global + 2);
        let erasures = pick_erasures(code.total_shards(), count, seed.rotate_left(11));
        roundtrip(&code, &data, &erasures);
    }

    #[test]
    fn over_budget_erasures_always_rejected(
        p_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let p = [3usize, 5, 7][p_idx];
        let code = Rdp::new(p).unwrap();
        let len = p - 1;
        let mut shards: Vec<Vec<u8>> = (0..p + 1).map(|i| vec![i as u8; len]).collect();
        code.encode(&mut shards).unwrap();
        let mut damaged: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for i in pick_erasures(p + 1, 3, seed) {
            damaged[i] = None;
        }
        prop_assert!(code.reconstruct(&mut damaged).is_err());
    }

    // --- Kernel equivalence: the table-driven GF(256) kernels must be ---
    // --- bit-identical to the byte-at-a-time reference implementation. ---

    #[test]
    fn table_mul_acc_matches_bytewise_kernel(
        len in 1usize..=513,
        c in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let c = c as u8;
        let data: Vec<u8> = (0..len)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 24) as u8)
            .collect();
        let mut fast: Vec<u8> = (0..len).map(|i| (seed >> (i % 8)) as u8).collect();
        let mut slow = fast.clone();
        gf256::mul_acc(&mut fast, &data, c);
        gf256::mul_acc_bytewise(&mut slow, &data, c);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn table_kernel_rs_codewords_match_bytewise_encode(
        d in 1usize..=8,
        p in 1usize..=4,
        sz in 1usize..=77,
        seed in any::<u64>(),
    ) {
        // Encode through the production (table-kernel) path…
        let code = ReedSolomon::new(d, p).unwrap();
        let data: Vec<Vec<u8>> = (0..d)
            .map(|i| (0..sz).map(|j| (seed as usize + i * 61 + j * 13) as u8).collect())
            .collect();
        let mut shards = data.clone();
        shards.extend(std::iter::repeat_with(|| vec![0u8; sz]).take(p));
        code.encode(&mut shards).unwrap();
        // …and recompute every parity with the byte-wise reference kernel
        // from the generator rows exposed by the equivalent MatrixCode.
        let matrix = MatrixCode::reed_solomon(d, p).unwrap();
        for (row_idx, got) in shards.iter().enumerate().skip(d) {
            let row = matrix.generator().row(row_idx);
            let mut want = vec![0u8; sz];
            for (j, shard) in data.iter().enumerate() {
                gf256::mul_acc_bytewise(&mut want, shard, row[j]);
            }
            prop_assert_eq!(got, &want, "parity row {}", row_idx);
        }
    }
}
