//! Minimal offline reimplementation of the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` crate cannot be fetched. This vendored stand-in provides the
//! same call-site API — [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! `gen`, `gen_range`, `gen_bool` — backed by a xoshiro256++ generator
//! seeded through SplitMix64, which is more than adequate for the
//! deterministic simulation workloads in this repository.
//!
//! It is **not** a cryptographic RNG and does not aim for value
//! compatibility with the real `rand` crate (seeded streams differ).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, bound)` without modulo bias worth worrying
/// about for simulation purposes (bound ≪ 2⁶⁴ in all call sites).
fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Widening-multiply rejection-free mapping (Lemire).
    let mut m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u64, u32, u16, u8, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Deterministically seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, decent equidistribution, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=4)] = true;
            let v = rng.gen_range(10u64..15);
            assert!((10..15).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let share = hits as f64 / 50_000.0;
        assert!((share - 0.25).abs() < 0.01, "share {share}");
    }
}
