//! Minimal offline reimplementation of the subset of the `proptest` API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` crate cannot be fetched. This vendored stand-in keeps the
//! same call sites compiling and running: the `proptest!` macro, the
//! `prop_assert*` / `prop_assume!` macros, [`Strategy`] with ranges,
//! tuples, [`Just`], `prop_map` / `prop_flat_map`, `any::<T>()`, and the
//! `prop::collection` / `prop::sample` helpers.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (derived from the test name) and there is **no
//! shrinking** — a failing case reports its values via the panic message
//! of the assertion that failed. For the regression-style property tests
//! in this repository that trade-off is acceptable; determinism makes CI
//! stable.

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic generator driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (usually a hash of the test name).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a string — used to derive per-test seeds from test names.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (by regeneration).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full range of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assumption (`prop_assume!`) failed; the case is skipped.
    Reject(String),
    /// A property assertion failed; the test fails.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::*;
    }
    /// Sampling helpers.
    pub mod sample {
        pub use crate::sample::*;
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.hi == self.lo {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::btree_set(element, size)`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bound the attempts so degenerate
            // element strategies cannot loop forever.
            for _ in 0..target.saturating_mul(20).max(20) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, FullRange, Strategy, TestRng};

    /// An abstract index into a collection of yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the abstract index against a concrete length.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Strategy for FullRange<Index> {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = FullRange<Index>;
        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "gave up after {} attempts ({} cases passed, the rest rejected)",
                        attempts - 1,
                        passed
                    );
                    let case = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                    let ($($pat,)+) = case;
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {}: {}", passed, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property assertion; fails the case without unwinding through user code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..=9, y in 1usize..4) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..=255, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_links_sizes(
            (n, v) in (1usize..=6).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..10, n..=n)))
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn index_resolves() {
        use crate::sample::Index;
        use crate::{any, Strategy, TestRng};
        let mut rng = TestRng::new(1);
        let idx: Index = any::<Index>().generate(&mut rng);
        assert!(idx.index(7) < 7);
    }
}
