//! Minimal offline reimplementation of the subset of the `criterion` API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` crate cannot be fetched. This vendored stand-in keeps the
//! `benches/` files compiling and genuinely *measuring*: each benchmark
//! warms up, then runs timed batches for the configured measurement
//! window and reports the median per-iteration time (plus throughput when
//! configured). There are no HTML reports, statistical regressions or
//! plots — just honest wall-clock numbers on stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let config = self.clone();
        run_one(&config, None, &id.to_string(), &mut f);
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        let label = format!("{}/{}", self.name, id);
        run_one(&config, self.throughput, &label, &mut f);
    }

    /// Benchmarks `f` with an input value, mirroring criterion's API.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration work declaration, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; only distinguishes rough scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap per-iteration inputs; batches of many iterations.
    SmallInput,
    /// Expensive per-iteration inputs; one input per measurement.
    LargeInput,
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Collected per-iteration nanosecond samples.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly and records per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, counting
        // iterations to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1.0)) as u64).clamp(1, 50_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.warm_up + self.measurement;
        for done in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            // Expensive setups can overshoot any time budget; keep at
            // least 3 samples, then respect the deadline.
            if done >= 2 && Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    throughput: Option<Throughput>,
    label: &str,
    f: &mut F,
) {
    let mut bencher = Bencher {
        warm_up: config.warm_up_time,
        measurement: config.measurement_time,
        sample_size: config.sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = samples[samples.len() / 2];
    let best = samples[0];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>9.1} MiB/s",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("  {label:<40} median {median:>12.1} ns/iter  (best {best:.1}){rate}");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
///
/// Ignores harness CLI arguments (`--bench`, filters) — every group runs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn measures_something() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            });
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &v| {
            b.iter(|| black_box(v) * 2);
        });
        group.finish();
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut c = fast_config();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        assert!(setups >= 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
