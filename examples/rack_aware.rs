//! Rack-aware placement: no two copies in the same failure domain.
//!
//! Demonstrates the CRUSH-style extension built from the paper's own
//! machinery: an outer Redundant Share instance distributes copies over
//! racks (weighted by rack capacity, Lemma 2.2-adjusted), and a fair
//! single-copy selection picks the device inside each rack. Losing an
//! entire rack therefore never costs more than one copy of any block.
//!
//! Run with: `cargo run --example rack_aware`

use redundant_share::placement::{DomainBin, DomainPlacement, PlacementStrategy};

fn main() {
    // Three racks of different generations: 4 small disks, 3 medium, 2 big.
    let mut devices = Vec::new();
    let mut next_id = 0u64;
    for (rack, count, capacity) in [(1u64, 4, 500_000u64), (2, 3, 900_000), (3, 2, 1_600_000)] {
        for _ in 0..count {
            devices.push(DomainBin::new(next_id, capacity, rack).expect("valid device"));
            next_id += 1;
        }
    }
    let strat = DomainPlacement::new(devices, 2).expect("enough racks");

    println!("== Rack-aware 2-way mirroring over 3 racks ==");
    let balls = 200_000u64;
    let mut per_device = vec![0u64; strat.bin_ids().len()];
    let mut rack_pairs = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    for ball in 0..balls {
        strat.place_into(ball, &mut out);
        let d0 = strat.domain_of(out[0]).expect("known device");
        let d1 = strat.domain_of(out[1]).expect("known device");
        assert_ne!(d0, d1, "copies must be rack-disjoint");
        *rack_pairs.entry((d0.min(d1), d0.max(d1))).or_insert(0u64) += 1;
        for id in &out {
            let pos = strat.bin_ids().iter().position(|b| b == id).unwrap();
            per_device[pos] += 1;
        }
    }

    println!("\nper-device load vs fair share:");
    let targets = strat.fair_shares();
    println!(
        "  {:>6}  {:>5}  {:>9}  {:>9}",
        "device", "rack", "share", "target"
    );
    for (i, id) in strat.bin_ids().iter().enumerate() {
        println!(
            "  {:>6}  {:>5}  {:>9.4}  {:>9.4}",
            id.raw(),
            strat.domain_of(*id).unwrap(),
            per_device[i] as f64 / balls as f64,
            targets[i]
        );
    }

    println!("\nrack pairing frequencies (which racks mirror together):");
    for ((a, b), count) in &rack_pairs {
        println!(
            "  racks {a}+{b}: {:>6.2}% of blocks",
            100.0 * *count as f64 / balls as f64
        );
    }
    println!(
        "\nevery block survives the loss of ANY single rack — the guarantee\n\
         flat device-level redundancy cannot give."
    );
}
