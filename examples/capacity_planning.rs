//! Capacity planning with the paper's Section 2 theory.
//!
//! Given a proposed pool of disks and a replication requirement, answer
//! the operator questions the capacity lemmas settle exactly: how much
//! data fits (Lemma 2.2), which disks are partially wasted, what a naive
//! `B / k` estimate would over-promise, and how much a trivial replication
//! layer would lose on top (Lemma 2.4).
//!
//! Run with: `cargo run --example capacity_planning`

use redundant_share::placement::{
    capacity, BinSet, PlacementStrategy, RedundantShare, TrivialReplication,
};

fn analyse(name: &str, capacities: &[u64], k: usize) {
    println!("\n== {name}: disks {capacities:?}, k = {k} ==");
    let mut sorted = capacities.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    let naive = total / k as u64;
    let real = capacity::max_balls(&sorted, k);
    println!("  raw capacity           : {total} blocks");
    println!("  naive estimate B/k     : {naive} blocks of data");
    println!("  actual maximum (L2.2)  : {real} blocks of data");
    if naive > real {
        println!(
            "  over-promise caught    : {} blocks ({:.1}% of the naive estimate)",
            naive - real,
            100.0 * (naive - real) as f64 / naive as f64
        );
    }
    let weights = capacity::optimal_weights(&sorted, k);
    for (raw, adj) in sorted.iter().zip(&weights) {
        if (*raw as f64 - adj).abs() > 1e-9 {
            println!(
                "  disk of {raw} blocks: only {adj:.0} usable — too large for k = {k} \
                 redundancy in this pool"
            );
        }
    }

    // How much of the achievable capacity would a trivial replication
    // layer actually reach before its most-loaded disk fills up?
    let bins = BinSet::from_capacities(sorted.iter().copied()).unwrap();
    let trivial = TrivialReplication::new(&bins, k).unwrap();
    let fair = RedundantShare::new(&bins, k).unwrap();
    let probe = 100_000u64;
    for (label, strat) in [
        ("trivial k-draws", &trivial as &dyn PlacementStrategy),
        ("redundant share", &fair as &dyn PlacementStrategy),
    ] {
        let mut counts = vec![0u64; sorted.len()];
        let mut out = Vec::new();
        for ball in 0..probe {
            strat.place_into(ball, &mut out);
            for id in &out {
                let pos = strat.bin_ids().iter().position(|b| b == id).unwrap();
                counts[pos] += 1;
            }
        }
        // Effective storable balls before the relatively fullest disk
        // overflows, as a fraction of the true maximum.
        let effective = sorted
            .iter()
            .zip(&counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&cap, &c)| cap as f64 / c as f64 * probe as f64)
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {label:<16}: reaches {:.1}% of the achievable capacity",
            100.0 * effective / real as f64
        );
    }
}

fn main() {
    println!("Capacity planning with Lemmas 2.1 / 2.2 (ICDCS 2007, Section 2)");
    // A balanced pool: everything usable.
    analyse("balanced pool", &[4_000, 3_500, 3_000, 2_500, 2_000], 2);
    // One huge disk: mirroring cannot use it fully.
    analyse("one oversized disk", &[16_000, 3_000, 2_000, 1_000], 2);
    // Paper's Figure 1 shape.
    analyse("figure 1 pool", &[2_000, 1_000, 1_000], 2);
    // Triple replication over mixed generations.
    analyse(
        "mixed generations, k = 3",
        &[8_000, 8_000, 4_000, 2_000, 1_000],
        3,
    );
}
