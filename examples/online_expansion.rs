//! Online expansion: plan, switch, migrate in the background, serve
//! throughout.
//!
//! The operator workflow the adaptivity results enable: dry-run the device
//! addition to see exactly what would move ([`MigrationPlan`]), switch the
//! placement instantly (`add_device_lazy` — both old and new mappings are
//! pure functions, so no forwarding state is needed), then drain the
//! migration in small steps while the cluster keeps serving reads from
//! wherever each block currently lives.
//!
//! Run with: `cargo run --release --example online_expansion`

use redundant_share::storage::{Redundancy, StorageCluster};

fn main() {
    let mut cluster = StorageCluster::builder()
        .block_size(64)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .device(0, 40_000)
        .device(1, 50_000)
        .device(2, 60_000)
        .device(3, 70_000)
        .build()
        .expect("valid cluster");
    let blocks = 20_000u64;
    println!("== Load {blocks} blocks over 4 devices ==");
    for lba in 0..blocks {
        let data: Vec<u8> = (0..64).map(|i| (lba as u8).wrapping_add(i)).collect();
        cluster.write_block(lba, &data).expect("space");
    }

    println!("\n== Dry-run: what would adding device 9 (80,000 blocks) move? ==");
    let plan = cluster.plan_add_device(9, 80_000).expect("plan");
    println!(
        "  {} of {} shards would move ({:.1}%)",
        plan.moves.len(),
        plan.shards_total,
        100.0 * plan.moved_fraction()
    );
    for (dev, count) in plan.inflow_per_device() {
        println!("  -> device {dev}: {count} shards inbound");
    }

    println!("\n== Switch placement instantly (lazy add) ==");
    let pending = cluster.add_device_lazy(9, 80_000).expect("lazy add");
    println!("  placement switched; {pending} blocks pending migration");
    println!("  device 9 holds {} shards (nothing moved yet)", {
        cluster.device(9).expect("present").used_blocks()
    });

    println!("\n== Drain in steps of 2,000 blocks, serving reads throughout ==");
    let mut step = 0u32;
    while cluster.pending_blocks() > 0 {
        let report = cluster.migrate_step(2_000).expect("step");
        step += 1;
        // Serve a read burst mid-migration: every block answers correctly
        // no matter which side of the migration it is on.
        for probe in (0..blocks).step_by(997) {
            let data = cluster.read_block(probe).expect("read");
            assert_eq!(data[0], probe as u8);
        }
        println!(
            "  step {step}: moved {} shards, {} blocks remaining",
            report.shards_moved,
            cluster.pending_blocks()
        );
    }

    println!("\n== Final state ==");
    for (id, used, cap) in cluster.utilization() {
        println!(
            "  device {id}: {used}/{cap} blocks ({:.1}%)",
            100.0 * used as f64 / cap as f64
        );
    }
    assert_eq!(cluster.scrub().expect("scrub"), 0);
    println!("  scrub clean — expansion completed with zero downtime");
}
