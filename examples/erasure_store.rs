//! An erasure-coded object store on the virtual disk, driven by a Zipf
//! workload.
//!
//! Exercises the copy-identity property the paper highlights: with
//! Reed–Solomon redundancy every sub-block of a redundancy group has a
//! distinct role, and Redundant Share deterministically identifies which
//! device holds the i-th sub-block. A skewed (Zipf) read workload then
//! shows that requests also spread according to capacity.
//!
//! Run with: `cargo run --example erasure_store`

use redundant_share::storage::{Redundancy, StorageCluster, VirtualDisk};
use redundant_share::workload::generator::ZipfRequests;

fn main() {
    // RS(4, 2): block of 64 bytes striped into 4 data + 2 parity shards.
    let cluster = StorageCluster::builder()
        .block_size(64)
        .redundancy(Redundancy::ReedSolomon { data: 4, parity: 2 })
        .device(0, 40_000)
        .device(1, 40_000)
        .device(2, 60_000)
        .device(3, 60_000)
        .device(4, 80_000)
        .device(5, 80_000)
        .device(6, 100_000)
        .build()
        .expect("valid cluster");
    let mut disk = VirtualDisk::new(cluster);

    println!("== Store 2,000 objects of 200 bytes each (RS 4+2) ==");
    for obj in 0..2_000u64 {
        let payload: Vec<u8> = (0..200)
            .map(|i| (obj as u8).wrapping_mul(3).wrapping_add(i))
            .collect();
        disk.write_at(obj * 256, &payload).expect("write");
    }

    println!("\n== Zipf(1.1) read workload: 30,000 requests ==");
    let mut zipf = ZipfRequests::new(2_000, 1.1, 2024);
    for _ in 0..30_000 {
        let obj = zipf.sample();
        let data = disk.read_at(obj * 256, 200).expect("read");
        assert_eq!(data[0], (obj as u8).wrapping_mul(3));
    }

    println!("  per-device read load (shard reads served):");
    let cluster = disk.cluster();
    let mut total_reads = 0u64;
    let mut rows = Vec::new();
    for id in cluster.device_ids() {
        let dev = cluster.device(id).expect("device");
        total_reads += dev.stats().reads;
        rows.push((id, dev.stats().reads, dev.capacity_blocks()));
    }
    let total_cap: u64 = rows.iter().map(|(_, _, c)| *c).sum();
    println!(
        "  {:>6}  {:>10}  {:>12}  {:>12}",
        "device", "reads", "load share", "capacity share"
    );
    for (id, reads, cap) in rows {
        println!(
            "  {:>6}  {:>10}  {:>11.2}%  {:>13.2}%",
            id,
            reads,
            100.0 * reads as f64 / total_reads as f64,
            100.0 * cap as f64 / total_cap as f64
        );
    }

    println!("\n== Survive two device losses ==");
    disk.cluster_mut().fail_device(0).expect("exists");
    disk.cluster_mut().fail_device(4).expect("exists");
    let probe = disk
        .read_at(999 * 256, 200)
        .expect("RS 4+2 tolerates 2 losses");
    assert_eq!(probe[0], (999u64 as u8).wrapping_mul(3));
    println!("  degraded read OK; installing a replacement device and rebuilding…");
    // Five survivors cannot hold six distinct shards per group, so a
    // replacement device joins before the rebuild (its arrival already
    // migrates and re-protects data; rebuild then drops the dead devices).
    disk.cluster_mut()
        .add_device(7, 100_000)
        .expect("replacement joins");
    let report = disk.cluster_mut().rebuild().expect("rebuild");
    println!(
        "  reconstructed {} shards; verifying all objects…",
        report.shards_reconstructed
    );
    for obj in (0..2_000u64).step_by(37) {
        let data = disk.read_at(obj * 256, 200).expect("read after rebuild");
        assert_eq!(data[0], (obj as u8).wrapping_mul(3));
    }
    println!("  all sampled objects intact");
}
