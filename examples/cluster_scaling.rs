//! Scale-out and scale-in of a virtualized storage cluster.
//!
//! Recreates the narrative of the paper's Figure 2 experiment on the full
//! storage stack: a mirrored cluster of heterogeneous devices is bulk
//! loaded, then grown and shrunk, and after each step the per-device
//! utilisation (flat = fair) and the migration volume (small = adaptive)
//! are printed.
//!
//! Run with: `cargo run --example cluster_scaling`

use redundant_share::storage::{Redundancy, StorageCluster};

fn print_utilization(cluster: &StorageCluster) {
    println!(
        "  {:>6}  {:>8}  {:>10}  {:>7}",
        "device", "used", "capacity", "fill"
    );
    for (id, used, cap) in cluster.utilization() {
        println!(
            "  {:>6}  {:>8}  {:>10}  {:>6.2}%",
            id,
            used,
            cap,
            100.0 * used as f64 / cap as f64
        );
    }
}

fn main() {
    // Scaled-down version of the paper's scenario: devices from 5,000 to
    // 12,000 blocks in steps of 1,000.
    let mut cluster = {
        let mut b = StorageCluster::builder()
            .block_size(16)
            .redundancy(Redundancy::Mirror { copies: 2 });
        for i in 0..8u64 {
            b = b.device(i, 5_000 + i * 1_000);
        }
        b.build().expect("valid cluster")
    };

    println!("== Bulk load: 20,000 mirrored blocks over 8 devices ==");
    let payload = vec![0xA5u8; 16];
    for lba in 0..20_000u64 {
        cluster.write_block(lba, &payload).expect("space available");
    }
    print_utilization(&cluster);

    println!("\n== Scale out: add two bigger devices (13,000 and 14,000 blocks) ==");
    for (id, cap) in [(8u64, 13_000u64), (9, 14_000)] {
        let report = cluster.add_device(id, cap).expect("add device");
        println!(
            "  added device {id}: moved {} of {} shards ({:.1}%), reconstructed {}",
            report.shards_moved,
            report.shards_total,
            100.0 * report.moved_fraction(),
            report.shards_reconstructed
        );
    }
    print_utilization(&cluster);

    println!("\n== Scale in: retire the two smallest devices ==");
    for id in [0u64, 1] {
        let report = cluster.remove_device(id).expect("drain device");
        println!(
            "  removed device {id}: moved {} of {} shards ({:.1}%)",
            report.shards_moved,
            report.shards_total,
            100.0 * report.moved_fraction()
        );
    }
    print_utilization(&cluster);

    println!("\n== Integrity check ==");
    let degraded = cluster.scrub().expect("no data loss");
    println!("  scrub complete, degraded blocks: {degraded}");
    let block = cluster.read_block(12_345).expect("still readable");
    assert_eq!(block, payload);
    println!("  spot read OK — all data survived two growths and two drains");
}
