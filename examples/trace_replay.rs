//! Replay a synthetic mixed workload against the virtualized cluster.
//!
//! Generates an OLTP-ish trace (70 % reads, sequential runs, 80/20 hot
//! skew), replays it against a mirrored cluster of mixed-capacity devices,
//! and reports per-device service load and the simulated makespan — the
//! fairness guarantees of the placement layer, observed end-to-end as
//! balanced device utilisation under a realistic stream.
//!
//! Run with: `cargo run --release --example trace_replay`

use redundant_share::storage::{DeviceProfile, Redundancy, StorageCluster, VdsError};
use redundant_share::workload::trace::{TraceConfig, TraceGenerator, TraceOp};

fn main() {
    let mut cluster = StorageCluster::builder()
        .block_size(512)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .device_with_profile(0, 40_000, DeviceProfile::SSD)
        .device_with_profile(1, 50_000, DeviceProfile::SSD)
        .device_with_profile(2, 60_000, DeviceProfile::SSD)
        .device_with_profile(3, 70_000, DeviceProfile::SSD)
        .device_with_profile(4, 80_000, DeviceProfile::SSD)
        .build()
        .expect("valid cluster");

    let config = TraceConfig {
        address_space: 30_000,
        read_fraction: 0.7,
        mean_run_length: 4,
        hot_fraction: 0.8,
        hot_set_fraction: 0.2,
    };
    let ops = 120_000u64;
    println!("== Replaying {ops} trace operations (70% read, 80/20 skew) ==");
    let mut gen = TraceGenerator::new(config, 2026);
    let (mut reads, mut writes, mut read_misses) = (0u64, 0u64, 0u64);
    let payload = vec![0xCDu8; 512];
    for _ in 0..ops {
        match gen.next_op() {
            TraceOp::Write { lba } => {
                cluster.write_block(lba, &payload).expect("write");
                writes += 1;
            }
            TraceOp::Read { lba } => match cluster.read_block(lba) {
                Ok(_) => reads += 1,
                Err(VdsError::BlockNotFound { .. }) => read_misses += 1,
                Err(e) => panic!("unexpected read failure: {e}"),
            },
        }
    }
    println!("  served reads : {reads}");
    println!("  read misses  : {read_misses} (never-written addresses)");
    println!("  writes       : {writes}");

    println!("\n== Per-device load ==");
    let makespan = cluster.makespan_us();
    println!(
        "  {:>6}  {:>9}  {:>7}  {:>7}  {:>9}  {:>11}",
        "device", "capacity", "reads", "writes", "busy ms", "of makespan"
    );
    for id in cluster.device_ids() {
        let dev = cluster.device(id).expect("device");
        println!(
            "  {:>6}  {:>9}  {:>7}  {:>7}  {:>9}  {:>10.1}%",
            id,
            dev.capacity_blocks(),
            dev.stats().reads,
            dev.stats().writes,
            dev.stats().busy_us / 1_000,
            100.0 * dev.stats().busy_us as f64 / makespan as f64
        );
    }
    println!(
        "  makespan: {} ms (simulated, devices in parallel)",
        makespan / 1_000
    );

    // Device shares should track capacity: 40k..80k => ~13% .. ~27%.
    let total_busy: u64 = cluster
        .device_ids()
        .iter()
        .map(|id| cluster.device(*id).unwrap().stats().busy_us)
        .sum();
    let biggest = cluster.device(4).unwrap();
    let share = biggest.stats().busy_us as f64 / total_busy as f64;
    println!(
        "\nbiggest device carries {:.1}% of the work for {:.1}% of the capacity",
        100.0 * share,
        100.0 * 80_000.0 / 300_000.0
    );
}
