//! Device failure, degraded reads, and rebuild.
//!
//! Demonstrates the redundancy property end-to-end: a device crash loses
//! one copy of some blocks but never two (no two copies of a block share a
//! device), so every block stays readable; `rebuild()` then re-places the
//! lost shards on the survivors and restores full redundancy.
//!
//! Run with: `cargo run --example failure_rebuild`

use redundant_share::storage::{Redundancy, StorageCluster};

fn main() {
    let mut cluster = StorageCluster::builder()
        .block_size(32)
        .redundancy(Redundancy::Mirror { copies: 2 })
        .device(0, 30_000)
        .device(1, 40_000)
        .device(2, 50_000)
        .device(3, 60_000)
        .device(4, 70_000)
        .build()
        .expect("valid cluster");

    println!("== Load 30,000 blocks (2-way mirrored) ==");
    for lba in 0..30_000u64 {
        let data: Vec<u8> = (0..32).map(|i| (lba as u8).wrapping_add(i)).collect();
        cluster.write_block(lba, &data).expect("space available");
    }
    let before = cluster.device(2).map(|d| d.used_blocks()).unwrap_or(0);
    println!("  device 2 holds {before} shards");

    println!("\n== Crash device 2 ==");
    cluster.fail_device(2).expect("device exists");
    let mut degraded_reads = 0u64;
    for lba in (0..30_000u64).step_by(97) {
        let data = cluster.read_block(lba).expect("readable degraded");
        assert_eq!(data[0], lba as u8);
        degraded_reads += 1;
    }
    println!("  sampled {degraded_reads} reads while degraded — all served");

    println!("\n== Rebuild onto the survivors ==");
    let report = cluster.rebuild().expect("redundancy sufficient");
    println!(
        "  reconstructed {} shards, moved {} of {} ({:.1}%)",
        report.shards_reconstructed,
        report.shards_moved,
        report.shards_total,
        100.0 * report.moved_fraction()
    );
    let degraded = cluster.scrub().expect("fully recovered");
    println!("  scrub: {degraded} degraded blocks remain");
    assert_eq!(degraded, 0);

    println!("\n== Double fault with RDP (p = 5: 4 data + 2 parity shards) ==");
    let mut rdp = StorageCluster::builder()
        .block_size(32)
        .redundancy(Redundancy::Rdp { p: 5 })
        .device(0, 20_000)
        .device(1, 20_000)
        .device(2, 20_000)
        .device(3, 20_000)
        .device(4, 20_000)
        .device(5, 20_000)
        .device(6, 20_000)
        .device(7, 20_000)
        .build()
        .expect("valid cluster");
    for lba in 0..5_000u64 {
        let data: Vec<u8> = (0..32).map(|i| (lba as u8) ^ i).collect();
        rdp.write_block(lba, &data).expect("space");
    }
    rdp.fail_device(1).expect("exists");
    rdp.fail_device(6).expect("exists");
    let probe = rdp.read_block(4_242).expect("survives two faults");
    assert_eq!(probe[0], 4_242u64 as u8);
    let report = rdp.rebuild().expect("rebuildable");
    println!(
        "  RDP rebuild reconstructed {} shards; cluster back to {} devices",
        report.shards_reconstructed,
        rdp.device_ids().len()
    );
    assert_eq!(rdp.scrub().expect("clean"), 0);
    println!("  double-fault recovery complete");
}
