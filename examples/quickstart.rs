//! Quickstart: fair, redundant placement over heterogeneous disks.
//!
//! Builds a small heterogeneous disk pool, asks Redundant Share for 3-fold
//! replica placements, and prints the per-disk load against the fairness
//! targets — plus what the capacity theory of the paper (Lemmas 2.1/2.2)
//! says about the pool.
//!
//! Run with: `cargo run --example quickstart`

use redundant_share::placement::{capacity, BinSet, PlacementStrategy, RedundantShare};
use redundant_share::workload::measure_fairness;

fn main() {
    // Five disks from 500 GB to 2 TB (capacities in 1 MB blocks).
    let capacities: Vec<u64> = vec![2_000_000, 1_500_000, 1_000_000, 750_000, 500_000];
    let bins = BinSet::from_capacities(capacities.iter().copied()).expect("valid bins");
    let k = 3;

    // What does the capacity theory say?
    println!("== Capacity theory (Section 2) ==");
    println!(
        "capacity-efficient {k}-replication possible: {}",
        capacity::is_capacity_efficient(&capacities, k)
    );
    println!(
        "maximum storable blocks (Lemma 2.2): {}",
        capacity::max_balls(&capacities, k)
    );

    // Build the placement strategy and place a million blocks.
    let strat = RedundantShare::new(&bins, k).expect("valid configuration");
    println!("\n== Placement of one block ==");
    let copies = strat.place(0xB10C);
    for (i, id) in copies.iter().enumerate() {
        println!("copy {i} -> {id}");
    }

    println!("\n== Fairness over 200,000 blocks ==");
    let report = measure_fairness(&strat, 200_000);
    println!(
        "{:>8}  {:>12}  {:>10}  {:>10}",
        "disk", "capacity", "share", "target"
    );
    for (i, bin) in bins.bins().iter().enumerate() {
        println!(
            "{:>8}  {:>12}  {:>10.4}  {:>10.4}",
            bin.id().raw(),
            bin.capacity(),
            report.shares[i],
            report.targets[i]
        );
    }
    println!(
        "max relative deviation: {:.4} (perfectly fair in expectation)",
        report.max_relative_deviation()
    );
}
