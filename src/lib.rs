//! # redundant-share
//!
//! Fair, redundant and adaptive data placement for heterogeneous storage —
//! a full reproduction of **Brinkmann, Effert, Meyer auf der Heide,
//! Scheideler: "Dynamic and Redundant Data Placement" (ICDCS 2007)**.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`placement`] — the paper's contribution: capacity theory
//!   (Lemmas 2.1/2.2), `LinMirror`, k-fold `RedundantShare`, the O(k)
//!   `FastRedundantShare`, and the trivial baseline.
//! * [`hashing`] — stable hashing and fair single-copy strategies
//!   (weighted rendezvous, consistent hashing, Share).
//! * [`erasure`] — XOR parity, EVENODD, RDP and Reed–Solomon codes for
//!   erasure-coded redundancy groups.
//! * [`storage`] — the block-level storage virtualization layer: clusters
//!   of simulated devices, migration, failure and rebuild, and a
//!   byte-addressed virtual disk.
//! * [`rush`] — the RUSH_P-style prior-work baseline.
//! * [`workload`] — experiment scenarios, fairness metrics and movement
//!   accounting used by the evaluation harness.
//!
//! ## Quick start
//!
//! ```
//! use redundant_share::placement::{BinSet, PlacementStrategy, RedundantShare};
//!
//! let bins = BinSet::from_capacities([500_000, 800_000, 1_200_000]).unwrap();
//! let strat = RedundantShare::new(&bins, 2).unwrap();
//! let copies = strat.place(0xB10C);
//! assert_eq!(copies.len(), 2);
//! assert_ne!(copies[0], copies[1]);
//! ```
//!
//! Or run a whole virtualized cluster:
//!
//! ```
//! use redundant_share::storage::{Redundancy, StorageCluster};
//!
//! let mut cluster = StorageCluster::builder()
//!     .block_size(64)
//!     .redundancy(Redundancy::Mirror { copies: 2 })
//!     .device(0, 1_000)
//!     .device(1, 2_000)
//!     .device(2, 2_400)
//!     .build()
//!     .unwrap();
//! cluster.write_block(7, &[1u8; 64]).unwrap();
//! assert_eq!(cluster.read_block(7).unwrap(), vec![1u8; 64]);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `rshare-bench` crate for the binaries that regenerate every figure and
//! table of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;

/// The placement strategies and capacity theory (re-export of
/// [`rshare_core`]).
pub mod placement {
    pub use rshare_core::*;
}

/// Hashing primitives and fair single-copy strategies (re-export of
/// [`rshare_hash`]).
pub mod hashing {
    pub use rshare_hash::*;
}

/// Erasure codes (re-export of [`rshare_erasure`]).
pub mod erasure {
    pub use rshare_erasure::*;
}

/// Block-level storage virtualization (re-export of [`rshare_vds`]).
pub mod storage {
    pub use rshare_vds::*;
}

/// The RUSH_P-style baseline (re-export of [`rshare_rush`]).
pub mod rush {
    pub use rshare_rush::*;
}

/// Experiment scenarios, metrics and movement accounting (re-export of
/// [`rshare_workload`]).
pub mod workload {
    pub use rshare_workload::*;
}
