//! # Paper-to-code map
//!
//! A section-by-section index from *Dynamic and Redundant Data Placement*
//! (Brinkmann, Effert, Meyer auf der Heide, Scheideler; ICDCS 2007) to this
//! repository. This module contains no code — it is the reproduction's
//! table of contents.
//!
//! ## Section 1 — Introduction
//!
//! | Paper element | Implementation |
//! |---|---|
//! | "block-level storage virtualization … single storage device" | [`crate::storage::StorageCluster`], [`crate::storage::VirtualDisk`] |
//! | "table-based methods are not scalable" | [`crate::placement::TableBased`] (the rejected design, measured in `table_compactness`) |
//! | balls-into-bins model, bins `b_i`, `c_i = b_i / Σ b_j` | [`crate::placement::Bin`], [`crate::placement::BinSet`] |
//! | criteria: capacity efficiency / time efficiency / compactness / adaptivity | `table_capacity_efficiency`, criterion benches, `memory_bytes()` accessors, `measure_movement` |
//! | "x% of the data and the requests" | data: [`crate::workload::measure_fairness`]; requests: the read-copy rotation in [`crate::storage::StorageCluster::read_block`] + `table_request_fairness` |
//!
//! ## Section 1.2 — Previous results
//!
//! | Prior work | Implementation |
//! |---|---|
//! | Consistent hashing (Karger et al. \[8\]) | [`crate::hashing::ConsistentRing`], [`crate::hashing::StatelessConsistent`] |
//! | Share and Sieve (Brinkmann et al. \[2\]) | [`crate::hashing::Share`], [`crate::hashing::Sieve`] |
//! | Linear / logarithmic methods (Schindelhauer & Schomaker \[11\]) | [`crate::hashing::LinearMethod`], [`crate::hashing::LogarithmicMethod`] |
//! | RUSH (Honicky & Miller \[5\]\[6\]) | [`crate::rush::RushP`] |
//! | RAID / EVENODD / RDP \[10\]\[1\]\[3\] | [`crate::erasure::XorParity`], [`crate::erasure::EvenOdd`], [`crate::erasure::Rdp`] |
//!
//! ## Section 2 — Limitations of existing strategies
//!
//! | Paper element | Implementation |
//! |---|---|
//! | Lemma 2.1 (capacity-efficiency condition `k·b_0 ≤ B`) | [`crate::placement::capacity::is_capacity_efficient`] |
//! | Lemma 2.1's constructive proof (k-largest-remaining packing) | [`crate::placement::capacity::greedy_pack`] |
//! | Lemma 2.2 / Algorithm 1 (`optimalWeights`, `B_max`) | [`crate::placement::capacity::optimal_weights`], [`crate::placement::capacity::max_balls`] |
//! | Definition 2.3 (trivial replication) | [`crate::placement::TrivialReplication`] |
//! | Lemma 2.4 / Figure 1 (trivial strategy wastes capacity) | `fig1_trivial_waste`, `tests/paper_claims.rs::claim_figure1_trivial_waste` |
//!
//! ## Section 3 — The Redundant Share strategy
//!
//! | Paper element | Implementation |
//! |---|---|
//! | Algorithm 2 (`LinMirror`) + Algorithm 3 (`placeOneCopy`, `b̂`) | [`crate::placement::LinMirror`]; the `b̂` of Equations 2–5 lives in `rshare-core`'s analysis module and is cross-checked against the general calibration |
//! | Lemma 3.1 (perfect fairness) | statistical tests in `rshare-core` + `claim_figure2_linmirror_fairness_across_stages` |
//! | Lemma 3.2 / Corollary 3.3 (4-competitive adaptivity) | [`crate::workload::measure_movement`], `fig3_adaptivity_linmirror`, `table_compactness` (true ratios) |
//! | Figure 2 (fairness across the 8→10→12→10→8 scenario) | [`crate::workload::scenario::paper_scenario`], `fig2_fairness_linmirror` |
//! | Algorithm 4 (k-replication) | [`crate::placement::RedundantShare`] |
//! | Lemma 3.4 (fairness for any k) | `fig4_fairness_k4`, calibration tests |
//! | Lemma 3.5 (k²-competitiveness) | `fig5_adaptivity_k4`, `claim_figure5_k4_adaptivity_shape` |
//! | copy identity ("the i-th of k copies") for erasure codes | [`crate::placement::PlacementStrategy::place`] ordering + [`crate::storage::Redundancy`] |
//! | Section 3.3 (O(k) replication) | [`crate::placement::FastRedundantShare`] |
//!
//! ## Section 4 — Conclusion
//!
//! | Paper element | Implementation |
//! |---|---|
//! | "O(k)-competitive for arbitrary insertions and removals — is this true?" | probed empirically in `table_dynamic_sequence` (cumulative ratio ≈ 1.6 for k = 2) |
//! | "can the time efficiency be significantly reduced with less memory overhead?" | the `memory_bytes()` accessors + `table_compactness` quantify today's trade-off |
//!
//! ## Beyond the paper (documented extensions)
//!
//! * [`crate::placement::SystematicPps`] — an exactly fair, poorly adaptive
//!   oracle used to validate fairness and to show why the paper's scan
//!   construction is needed.
//! * [`crate::erasure::ReedSolomon`], [`crate::erasure::MatrixCode`] (LRC)
//!   — redundancy schemes the storage layer can place thanks to copy
//!   identity.
//! * [`crate::storage::DeviceProfile`] — simulated I/O timing, used to show
//!   when capacity fairness implies completion-time fairness
//!   (`table_makespan`).
//! * [`crate::placement::DomainPlacement`] — failure-domain (rack-aware)
//!   placement composing the paper's machinery hierarchically.
//! * Lazy migration (`add_device_lazy` + `migrate_step`) and dry-run
//!   [`crate::storage::MigrationPlan`]s — operational faces of computed
//!   placement.
//! * [`crate::workload::reliability`] — Monte-Carlo durability over placed
//!   redundancy groups (`table_durability`), quantifying the paper's
//!   motivation for redundancy.
